"""The MessageBus: boots a configured topology and runs the MOM.

The bus owns the shared simulator, network and metrics, builds one
:class:`~repro.mom.server.AgentServer` per server of the topology with
routing tables computed at boot (§5), validates the domain graph's
acyclicity (§4.3's precondition) unless told otherwise, and records the
traces the causality checkers consume:

- the **app trace** (agent-level): one :class:`~repro.causality.message.Message`
  per notification, processes = agents — the trace whose causal delivery
  the theorem guarantees on acyclic topologies;
- the **hop trace** (server-level): one message per intra-domain hop,
  processes = servers — restricted per domain, it verifies that each
  domain's protocol independently respects causality.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional

from repro.causality.chains import Membership
from repro.causality.checker import (
    CausalityReport,
    check_all_domains,
    check_trace,
)
from repro.causality.message import Message
from repro.causality.trace import Trace
from repro.errors import ConfigurationError, ServerCrashedError
from repro.metrics.registry import Registry
from repro.mom.accounting import BusAccounting, install_collector
from repro.mom.agent import Agent
from repro.mom.config import BusConfig
from repro.mom.identifiers import AgentId
from repro.mom.payloads import Envelope, Notification
from repro.mom.server import AgentServer
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.network import Network
from repro.simulation.rng import RngFactory
from repro.simulation.shard import ShardContext, ShardNetwork
from repro.topology.graph import validate_topology
from repro.topology.routing import build_routing_tables

if TYPE_CHECKING:
    from repro.causality.chains import Chain
    from repro.obs.tracer import Tracer


class MessageBus:
    """The whole MOM: servers, network, clocks, traces, metrics."""

    def __init__(self, config: BusConfig, shard: Optional[ShardContext] = None):
        if config.validate:
            validate_topology(config.topology)
        self.config = config
        self.shard = shard
        self.sim = Simulator()
        self.rng = RngFactory(config.seed)
        self.metrics = MetricsRegistry()
        # Always-on cost accounting (repro.metrics): per-server/per-domain
        # causality costs, exposed via cost_snapshot(). REPRO_METRICS=0 or
        # BusConfig(accounting=False) turns it off; the hot paths then pay
        # one `is not None` check per edge, exactly like the tracer.
        self.accounting: Optional[Registry] = None
        self.acct: Optional[BusAccounting] = None
        if config.accounting and os.environ.get("REPRO_METRICS") != "0":
            self.accounting = Registry()
            self.acct = BusAccounting(self.accounting)
            install_collector(self.accounting, self)
        if shard is None:
            self.network = Network(
                sim=self.sim,
                latency=config.latency_model(),
                loss_rate=config.loss_rate,
                rng=self.rng.stream("network"),
            )
        else:
            # Sharded worker: packets whose destination is homed to another
            # worker divert to the outbox instead of scheduling locally.
            # Each shard derives the network stream under its own key, so no
            # two workers ever share an RNG stream (see docs/parallel.md;
            # eligible configs never draw from it anyway).
            self.network = ShardNetwork(
                sim=self.sim,
                latency=config.latency_model(),
                loss_rate=config.loss_rate,
                rng=self.rng.stream(f"network/shard{shard.shard_id}"),
                local=shard.local_servers,
            )
        tables = build_routing_tables(config.topology, registry=self.accounting)
        self.routing_index = tables[config.topology.servers[0]].index
        self.servers: Dict[int, AgentServer] = {}
        for server_id in config.topology.servers:
            if shard is not None and server_id not in shard.local_servers:
                continue
            self.servers[server_id] = AgentServer(
                bus=self,
                server_id=server_id,
                domains=config.topology.domains_of(server_id),
                routing=tables[server_id],
            )
        self._nids: Dict[int, int] = {}
        strict_trace = shard is None
        self.app_trace: Optional[Trace] = (
            Trace(strict=strict_trace) if config.record_app_trace else None
        )
        self.hop_trace: Optional[Trace] = (
            Trace(strict=strict_trace) if config.record_hop_trace else None
        )
        self._started = False
        # observability hook (repro.obs); None = tracing off, and the
        # only cost anywhere on the message path is this attribute check
        self._tracer: Optional["Tracer"] = None

    # ------------------------------------------------------------------
    # Deployment and lifecycle
    # ------------------------------------------------------------------

    def server(self, server_id: int) -> AgentServer:
        try:
            return self.servers[server_id]
        except KeyError:
            raise ConfigurationError(f"unknown server {server_id}") from None

    def deploy(self, agent: Agent, server_id: int) -> AgentId:
        """Install an agent on a server (before :meth:`start`)."""
        if self._started:
            raise ConfigurationError(
                "deploy after start() is not supported; deploy all agents "
                "first, then start the bus"
            )
        return self.server(server_id).engine.deploy(agent)

    def start(self) -> None:
        """Fire every agent's ``on_boot`` hook (at t=0, before any run)."""
        if self._started:
            raise ConfigurationError("bus already started")
        self._started = True
        for server in self.servers.values():
            for agent in server.engine.agents:
                server.engine.schedule_boot(agent.agent_id)

    def run(self, until: Optional[float] = None) -> int:
        """Advance the simulation (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run to quiescence — every message delivered, every agent idle."""
        return self.sim.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # Scripted events (scenarios, failure injection)
    # ------------------------------------------------------------------

    def schedule_send(
        self, at: float, sender: AgentId, target: AgentId, payload: Any
    ) -> None:
        """Script a send at absolute time ``at``, keyed to the sender's
        server so the event order is shard-layout-independent."""
        self.sim.schedule_setup(
            at, sender.server, self.dispatch, sender, target, payload
        )

    def schedule_crash(
        self, at: float, server_id: int, down_for: float
    ) -> None:
        """Script a fail-stop crash of ``server_id`` at ``at``, recovering
        ``down_for`` ms later."""
        if server_id not in self.config.topology.servers:
            raise ConfigurationError(f"unknown server {server_id}")
        self.sim.schedule_setup(at, server_id, self._crash_server, server_id)
        self.sim.schedule_setup(
            at + down_for, server_id, self._recover_server, server_id
        )

    def schedule_partition(
        self, at: float, first: int, second: int, duration: float
    ) -> None:
        """Script a network partition between two servers.

        Scheduled as one event per endpoint (idempotent on a shared
        network): in a sharded run each worker applies the copy owned by
        its local endpoint, so both sides see the cut at the same instant.
        """
        for owner in (first, second):
            self.sim.schedule_setup(
                at, owner, self.network.partition, first, second
            )
            self.sim.schedule_setup(
                at + duration, owner, self.network.heal, first, second
            )

    def _crash_server(self, server_id: int) -> None:
        server = self.server(server_id)
        if not server.is_crashed:
            server.crash()

    def _recover_server(self, server_id: int) -> None:
        server = self.server(server_id)
        if server.is_crashed:
            server.recover()

    # ------------------------------------------------------------------
    # Dispatch (engine upcall)
    # ------------------------------------------------------------------

    def _next_nid(self, server: int) -> int:
        """Notification ids are ``sender-server << 40 | per-server count``:
        unique bus-wide, and assigned identically no matter which kernel
        hosts the sender (a bus-global counter would be shard-dependent)."""
        count = self._nids.get(server, 0) + 1
        self._nids[server] = count
        return (server << 40) | count

    def dispatch(self, sender: AgentId, target: AgentId, payload: Any) -> None:
        """Route one agent-level send, local bus or channel.

        Called by the engine at reaction commit. Local notifications go
        straight to the destination engine's QueueIN ("Local Bus" in
        Figure 1); remote ones enter the channel.
        """
        notification = Notification(
            nid=self._next_nid(sender.server),
            sender=sender,
            target=target,
            payload=payload,
            sent_at=self.sim.now,
        )
        if self._tracer is not None:
            self._tracer.bus_post(notification)
        if self.acct is not None:
            self.acct.notifications.inc()
        self.record_app_send(notification)
        if target.server == sender.server:
            self.server(target.server).engine.enqueue(notification)
        else:
            self.server(sender.server).channel.post(notification)
        self.metrics.counter("bus.notifications").add()

    # ------------------------------------------------------------------
    # Trace recording
    # ------------------------------------------------------------------

    def record_app_send(self, notification: Notification) -> None:
        if self.app_trace is None or notification.sender == notification.target:
            return
        self.app_trace.record_send(
            Message(
                notification.nid,
                notification.sender,
                notification.target,
                payload=notification.payload,
            )
        )

    def record_app_receive(self, notification: Notification) -> None:
        if notification.sender != notification.target:
            # self-sends (agent timers, local ticks) are pacing artifacts,
            # not deliveries worth a latency sample
            self.metrics.samples("bus.delivery_ms").record(
                self.sim.now - notification.sent_at
            )
            if self.acct is not None and notification.sender.server != notification.target.server:
                self.acct.delivery_ms.record(self.sim.now - notification.sent_at)
        if self.app_trace is None or notification.sender == notification.target:
            return
        self.app_trace.record_receive(
            Message(
                notification.nid,
                notification.sender,
                notification.target,
                payload=notification.payload,
            )
        )

    def record_hop_send(self, envelope: Envelope) -> None:
        if self.hop_trace is None:
            return
        # the payload carries the notification id, so analysis code can
        # reassemble each application message's §4.2 chain from the trace
        self.hop_trace.record_send(
            Message(
                envelope.hop_mid(),
                envelope.src_server,
                envelope.dst_server,
                payload=envelope.notification.nid,
            )
        )

    def record_hop_receive(self, envelope: Envelope) -> None:
        if self.hop_trace is None:
            return
        self.hop_trace.record_receive(
            Message(envelope.hop_mid(), envelope.src_server, envelope.dst_server)
        )

    def hop_chains(self) -> Dict[int, "Chain"]:
        """Reassemble each notification's §4.2 message chain from the hop
        trace: the concrete realization of the paper's "virtual messages"
        (one chain of real intra-domain messages per routed notification).

        Requires ``record_hop_trace=True``. Notifications delivered over
        the local bus (same-server) have no hops and do not appear.
        """
        if self.hop_trace is None:
            raise ConfigurationError("hop trace recording is disabled")
        from repro.causality.chains import Chain

        by_nid: Dict[int, List[Message]] = {}
        for message in self.hop_trace.messages:
            by_nid.setdefault(message.payload, []).append(message)
        chains: Dict[int, Chain] = {}
        for nid, hops in by_nid.items():
            sources = {m.src for m in hops}
            dests = {m.dst for m in hops}
            start = sources - dests
            if len(start) != 1:
                raise ConfigurationError(
                    f"notification {nid}: hop set does not form a chain "
                    f"(starts: {sorted(start, key=repr)})"
                )
            by_src = {m.src: m for m in hops}
            ordered: List[Message] = []
            current = start.pop()
            while current in by_src:
                ordered.append(by_src[current])
                current = by_src[current].dst
            if len(ordered) != len(hops):
                raise ConfigurationError(
                    f"notification {nid}: hops do not form a single chain"
                )
            chains[nid] = Chain(tuple(ordered))
        return chains

    # ------------------------------------------------------------------
    # Causality verification
    # ------------------------------------------------------------------

    def check_app_causality(self) -> CausalityReport:
        """Check the agent-level trace for global causal delivery."""
        if self.app_trace is None:
            raise ConfigurationError("app trace recording is disabled")
        return check_trace(self.app_trace, scope="app")

    def check_domain_causality(self) -> Dict[Hashable, CausalityReport]:
        """Check the hop-level trace restricted to each domain."""
        if self.hop_trace is None:
            raise ConfigurationError("hop trace recording is disabled")
        membership = self.config.topology.membership()
        return check_all_domains(self.hop_trace, membership)

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------

    def export_app_trace(self, stream) -> int:
        """Write the app trace as JSONL (see :mod:`repro.causality.export`).

        Agent identities are stringified (``"A0.3"``) so the artifact is
        plain JSON; returns the number of events written.
        """
        if self.app_trace is None:
            raise ConfigurationError("app trace recording is disabled")
        from repro.causality.export import dump_trace

        originals = self.app_trace
        mapped = {
            message.mid: Message(
                message.mid, repr(message.src), repr(message.dst),
                payload=message.payload,
            )
            for message in originals.messages
        }
        histories = {
            repr(process): [
                (event.kind, mapped[event.message.mid])
                for event in originals.events_of(process)
            ]
            for process in originals.processes
        }
        return dump_trace(Trace.from_histories(histories), stream)

    def protocol_snapshot(self) -> Dict[str, Any]:
        """The bus's observable protocol state as plain JSON types.

        Per server: crash flag and epoch, the channel's hop counter and
        in-flight sets (unacked QueueOUT entries, held-back hop ids per
        domain, charged-but-unfired commits), the engine's QueueIN nids,
        every domain clock matrix — and, when ``record_delivered_log`` is
        on, the committed-delivery prefix.

        This is the replay identity oracle's live side: at any sim-time
        ``T`` reached with ``run(until=T)``,
        ``json.dumps(bus.protocol_snapshot(), sort_keys=True)`` is
        byte-identical to :meth:`repro.obs.replay.Replayer.snapshot_json`
        over a dump of the same run. Sim-time itself is deliberately
        excluded (the dump's clock keeps running past ``T``).
        """
        servers: Dict[str, Any] = {}
        for server_id in sorted(self.servers):
            server = self.servers[server_id]
            channel = server.channel
            entry: Dict[str, Any] = {
                "crashed": server.is_crashed,
                "epoch": server.epoch,
                "hop_seq": channel.hop_seq,
                "unacked": channel.unacked_hop_seqs(),
                "holdback": channel.heldback_mids(),
                "pending": channel.pending_mids(),
                "queued": server.engine.queued_nids(),
                "clocks": {
                    domain_id: [
                        [item.clock.cell(row, col)
                         for col in range(item.clock.size)]
                        for row in range(item.clock.size)
                    ]
                    for domain_id, item in sorted(
                        channel.domain_items.items()
                    )
                },
            }
            delivered = server.engine.delivered_log
            if delivered is not None:
                entry["delivered"] = list(delivered)
            servers[str(server_id)] = entry
        return {"servers": servers}

    def snapshot_at(self, t: float) -> Dict[str, Any]:
        """Run to sim-time ``t`` (inclusive of events scheduled at ``t``)
        and return :meth:`protocol_snapshot` — the mid-run snapshot hook
        the replay identity oracle compares against."""
        if t < self.sim.now:
            raise ConfigurationError(
                f"cannot snapshot at t={t}: the simulation is already at "
                f"{self.sim.now}"
            )
        self.run(until=t)
        return self.protocol_snapshot()

    def stats_table(self) -> str:
        """A per-server operational summary (queues, clocks, disk, CPU)."""
        header = (
            f"{'server':>6}  {'state':>7}  {'domains':>7}  {'unacked':>7}  "
            f"{'heldback':>8}  {'queued':>6}  {'disk cells':>10}  "
            f"{'cpu ms':>8}"
        )
        lines = [header, "-" * len(header)]
        for server_id in sorted(self.servers):
            server = self.servers[server_id]
            state = "crashed" if server.is_crashed else "up"
            lines.append(
                f"{server_id:>6}  {state:>7}  "
                f"{len(server.channel.domain_items):>7}  "
                f"{server.channel.unacked_count:>7}  "
                f"{server.channel.heldback_count:>8}  "
                f"{server.engine.queued:>6}  "
                f"{server.store.cells_written:>10}  "
                f"{server.processor.busy_total:>8.1f}"
            )
        lines.append(
            f"t={self.sim.now:.1f}ms  "
            f"packets={self.network.packets_sent}  "
            f"wire_cells={self.network.cells_transmitted}"
        )
        return "\n".join(lines)

    def cost_snapshot(self) -> Optional[Dict[str, Any]]:
        """One deterministic snapshot of the cost-accounting registry.

        Returns ``None`` when accounting is disabled. The snapshot embeds
        the run's identity (server count, domains, seed, clock mode) so
        two snapshots diff meaningfully; feed it to
        :func:`repro.metrics.write_json`, :func:`~repro.metrics.to_prometheus`
        or :func:`~repro.metrics.render_dashboard`.
        """
        if self.accounting is None:
            return None
        return self.accounting.snapshot(
            now=self.sim.now,
            meta={
                "servers": len(self.servers),
                "domains": sorted(self.config.topology.domain_ids),
                "seed": self.config.seed,
                "clock": self.config.clock_algorithm,
            },
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total_persisted_cells(self) -> int:
        """Disk traffic in clock cells, summed over servers (§3's second
        scalability problem)."""
        return sum(s.store.cells_written for s in self.servers.values())

    def total_clock_state_cells(self) -> int:
        """Resident matrix-clock state, in cells, summed over servers —
        Σ over (server, domain) of s_d². The flat MOM holds n·n² cells
        total; the decomposed MOM holds Σ s²·(members) ≈ linear in n."""
        total = 0
        for server in self.servers.values():
            for item in server.channel.domain_items.values():
                total += item.clock.size * item.clock.size
        return total

    def __repr__(self) -> str:
        return (
            f"MessageBus(servers={len(self.servers)}, "
            f"domains={len(self.config.topology.domains)}, "
            f"t={self.sim.now:.1f}ms)"
        )
