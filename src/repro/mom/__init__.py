"""The AAA MOM (§3, §5), rebuilt on the simulation substrate.

An agent server is an Engine (agent execution: persistent agents, atomic
event/reaction) plus a Channel (reliable transmission, causal order,
routing). Servers are grouped into domains of causality; each server holds
one ``DomainItem`` — domain-local identity plus matrix clock — per domain
it belongs to, and a static routing table (§5).

Public surface:

- :class:`~repro.mom.config.BusConfig` — everything an experiment
  configures (topology, clock algorithm, cost model, network, seed);
- :class:`~repro.mom.bus.MessageBus` — boots servers from a config, deploys
  agents, runs the simulation, exposes traces and metrics;
- :class:`~repro.mom.agent.Agent` / :class:`~repro.mom.agent.ReactionContext`
  — the programming model (event/reaction, §3);
- :class:`~repro.mom.failures.FailureInjector` — crash/recovery and
  partition scheduling for the fault-tolerance tests.
"""

from repro.mom.identifiers import AgentId
from repro.mom.payloads import Notification, Envelope
from repro.mom.persistence import PersistentStore
from repro.mom.domain_item import DomainItem
from repro.mom.agent import Agent, ReactionContext, FunctionAgent, EchoAgent
from repro.mom.config import BusConfig
from repro.mom.server import AgentServer
from repro.mom.bus import MessageBus
from repro.mom.failures import FailureInjector
from repro.mom.workloads import (
    BroadcastDriver,
    OpenLoopDriver,
    PingPongDriver,
    SinkAgent,
)
from repro.mom.scenario import ScenarioResult, run_scenario

__all__ = [
    "AgentId",
    "Notification",
    "Envelope",
    "PersistentStore",
    "DomainItem",
    "Agent",
    "ReactionContext",
    "FunctionAgent",
    "EchoAgent",
    "BusConfig",
    "AgentServer",
    "MessageBus",
    "FailureInjector",
    "ScenarioResult",
    "run_scenario",
]
