"""The agent server: Engine + Channel + persistence + transport (§3, Figure 1).

The server object wires one of everything together and owns the crash /
recovery state machine. An *epoch* counter invalidates in-flight processor
completions on crash: any work that was "executing" when the server died
simply never commits, which is exactly the atomicity §3 promises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import ServerCrashedError
from repro.mom.accounting import ServerAccounting
from repro.mom.channel import Channel
from repro.mom.config import BusConfig
from repro.mom.engine import Engine
from repro.mom.persistence import PersistentStore
from repro.protocol.core import CausalCore
from repro.simulation.kernel import Processor
from repro.simulation.transport import ReliableTransport
from repro.topology.domains import Domain
from repro.topology.routing import RoutingTable

if TYPE_CHECKING:
    from repro.mom.bus import MessageBus
    from repro.obs.tracer import Tracer


class AgentServer:
    """One MOM server. Constructed by :class:`~repro.mom.bus.MessageBus`."""

    def __init__(
        self,
        bus: MessageBus,
        server_id: int,
        domains: List[Domain],
        routing: RoutingTable,
    ):
        self.bus = bus
        self.server_id = server_id
        self.domains = list(domains)
        self.routing = routing
        self.config: BusConfig = bus.config
        self.sim = bus.sim
        self.metrics = bus.metrics
        self.topology = bus.config.topology

        self.epoch = 0
        self._crashed = False
        # observability hook (repro.obs); None = tracing off
        self._tracer: Optional["Tracer"] = None
        # cost-accounting handle bundle (repro.metrics); None = accounting off
        self.acct: Optional[ServerAccounting] = (
            bus.acct.server(server_id) if bus.acct is not None else None
        )
        self.store = PersistentStore(server_id)
        self.processor = Processor(self.sim, owner=server_id)
        # the causal-delivery core, resolved once per server: the Channel
        # and its DomainItems route every protocol decision through it
        self.core: CausalCore = self.config.core
        self.channel = Channel(self)
        self.engine = Engine(self)
        self.transport = ReliableTransport(
            sim=self.sim,
            network=bus.network,
            endpoint=server_id,
            on_message=self.channel.on_packet,
            retransmit_ms=bus.config.retransmit_ms,
            max_attempts=bus.config.max_transport_attempts,
        )

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    @property
    def is_crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Fail-stop: volatile state is lost, persistent state survives.

        In-flight processor completions are invalidated by bumping the
        epoch; the network drops packets addressed to the detached
        transport while the server is down.
        """
        if self._crashed:
            raise ServerCrashedError(
                f"server {self.server_id} is already crashed"
            )
        self._crashed = True
        self.epoch += 1
        self.processor.halt()
        self.transport.stop()
        self.channel.on_crash()
        self.engine.on_crash()
        self.metrics.counter("server.crashes").add()
        if self._tracer is not None:
            self._tracer.server_crash(self.server_id)

    def recover(self) -> None:
        """Reload persistent state and resume: clocks and unacked sends
        come back from disk, unacked envelopes are retransmitted, queued
        reactions re-run."""
        if not self._crashed:
            raise ServerCrashedError(
                f"server {self.server_id} is not crashed"
            )
        self._crashed = False
        self.processor.resume()
        self.transport.restart(self.channel.on_packet)
        self.channel.on_recover()
        self.engine.on_recover()
        self.metrics.counter("server.recoveries").add()
        if self._tracer is not None:
            self._tracer.server_recover(self.server_id)

    def __repr__(self) -> str:
        state = "crashed" if self._crashed else "up"
        return (
            f"AgentServer(id={self.server_id}, {state}, "
            f"domains={[d.domain_id for d in self.domains]})"
        )
