"""Identifiers: global server ids, domain-local server ids, agent ids.

§5: "An agent server now has two identifiers: the global identifier,
unique for the whole system, and a domain identifier. The global
identifier is implicitly used by the application-level agents (which are
unaware of domains), and the domain server identifier is used by the
system."

Global server ids are plain ints (``0..n-1``); domain-local ids live in
:class:`~repro.mom.domain_item.DomainItem`. Agents get a structured id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class AgentId:
    """Globally unique agent identity: home server plus per-server index.

    Application code addresses agents by :class:`AgentId` only — which
    domain(s) the home server belongs to is invisible, exactly as §5
    requires ("agent names must remain unchanged at the application
    level").
    """

    server: int
    local: int

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigurationError(f"negative server id: {self.server}")
        if self.local < 0:
            raise ConfigurationError(f"negative local agent id: {self.local}")

    def __repr__(self) -> str:
        return f"A{self.server}.{self.local}"
