"""The Engine: agent execution with atomic, persistent reactions (§3).

"The Engine guarantees the Agents' properties": each notification in the
persistent QueueIN triggers one *reaction*; the reaction's sends are
buffered and committed atomically with the removal of the notification and
the persistence of the agent's state. A crash in the middle of a reaction
therefore rolls back to "never happened" — the notification is still in
QueueIN after recovery and the reaction replays.

The engine runs at most one reaction at a time on the server's processor
(one JVM thread), charging ``agent_reaction_ms`` each.

The engine sits strictly *above* the causal-delivery boundary: by the time
a notification reaches QueueIN, the channel's
:class:`~repro.protocol.core.CausalCore` has already decided deliverability
and merged the domain clock, so reactions never see (or touch) protocol
state — rule R018 (:mod:`repro.analysis.contract`) proves that isolation
statically.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

from repro.errors import AgentError
from repro.mom.agent import Agent, ReactionContext
from repro.mom.identifiers import AgentId
from repro.mom.payloads import Notification

if TYPE_CHECKING:
    from repro.mom.server import AgentServer
    from repro.obs.tracer import Tracer

_BOOT = "__boot__"


class Engine:
    """One server's agent engine. Created by :class:`~repro.mom.server.AgentServer`."""

    def __init__(self, server: AgentServer) -> None:
        self._server = server
        self._agents: Dict[int, Agent] = {}
        self._queue_in: Deque[Any] = deque()
        self._reacting = False
        # observability hook (repro.obs); None = tracing off
        self._tracer: Optional["Tracer"] = None
        # committed-delivery prefix (ordered nids), observer state: it is
        # not volatile protocol state, so crashes do not wipe it
        self._delivered_log: Optional[List[int]] = (
            [] if server.config.record_delivered_log else None
        )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(self, agent: Agent) -> AgentId:
        """Install an agent; returns its bus-wide identity. Deployment is
        a boot-time operation (before the simulation starts)."""
        local = len(self._agents)
        agent_id = AgentId(self._server.server_id, local)
        agent._deployed(agent_id)
        self._agents[local] = agent
        self._persist_agent(local)
        return agent_id

    def agent(self, agent_id: AgentId) -> Agent:
        if agent_id.server != self._server.server_id:
            raise AgentError(
                f"{agent_id!r} does not live on server {self._server.server_id}"
            )
        try:
            return self._agents[agent_id.local]
        except KeyError:
            raise AgentError(f"no agent {agent_id!r} deployed") from None

    @property
    def agents(self) -> List[Agent]:
        return [self._agents[k] for k in sorted(self._agents)]

    # ------------------------------------------------------------------
    # QueueIN
    # ------------------------------------------------------------------

    def enqueue(self, notification: Notification) -> None:
        """Append to the persistent QueueIN and schedule processing."""
        self._queue_in.append(notification)
        if self._tracer is not None:
            self._tracer.engine_enqueue(
                self._server.server_id, notification
            )
        self._persist_queue()
        self._schedule_next()

    def schedule_boot(self, agent_id: AgentId) -> None:
        """Queue the one-shot ``on_boot`` pseudo-reaction of an agent."""
        self._queue_in.append((_BOOT, agent_id.local))
        self._persist_queue()
        self._schedule_next()

    @property
    def queued(self) -> int:
        return len(self._queue_in)

    def queued_nids(self) -> List[int]:
        """The notification ids in QueueIN, FIFO order (boot markers carry
        no nid and are excluded)."""
        return [
            entry.nid
            for entry in self._queue_in
            if isinstance(entry, Notification)
        ]

    @property
    def delivered_log(self) -> Optional[List[int]]:
        """Ordered nids of every committed non-boot reaction, or ``None``
        when ``record_delivered_log`` is off."""
        return self._delivered_log

    def _schedule_next(self) -> None:
        if self._reacting or not self._queue_in or self._server.is_crashed:
            return
        self._reacting = True
        epoch = self._server.epoch
        self._server.processor.submit(
            self._server.config.cost_model.agent_reaction_ms,
            self._run_reaction,
            epoch,
        )

    # ------------------------------------------------------------------
    # Reactions
    # ------------------------------------------------------------------

    def _run_reaction(self, epoch: int) -> None:
        """Completion callback: execute and atomically commit one reaction.

        Everything in here happens at a single instant of simulated time —
        the instant the charged reaction duration elapses — which models
        §3's atomic reaction: either all of it (agent state change, sends,
        QueueIN removal) is persisted, or none.
        """
        if epoch != self._server.epoch:
            return  # the server crashed while this reaction was "running"
        self._reacting = False
        if not self._queue_in:
            return
        head = self._queue_in[0]

        if isinstance(head, tuple) and head[0] == _BOOT:
            local = head[1]
            agent = self._agents[local]
            receive_of: Optional[Notification] = None
        else:
            notification = head
            agent = self.agent(notification.target)
            local = notification.target.local
            receive_of = notification

        tracer = self._tracer
        if tracer is not None:
            tracer.engine_reaction_start(self._server.server_id, receive_of)
        ctx = ReactionContext(agent.agent_id, self._server.sim.now)
        if receive_of is None:
            agent.on_boot(ctx)
        else:
            agent.react(ctx, receive_of.sender, receive_of.payload)

        # ---- atomic commit ----
        if receive_of is not None:
            self._server.bus.record_app_receive(receive_of)
        for target, payload in ctx.outbox:
            self._server.bus.dispatch(agent.agent_id, target, payload)
        for delay, target, payload in ctx.timers:
            self._arm_timer(agent.agent_id, delay, target, payload)
        self._queue_in.popleft()
        self._persist_queue()
        self._persist_agent(local)
        if receive_of is not None and self._delivered_log is not None:
            self._delivered_log.append(receive_of.nid)
        # ---- end commit ----

        if tracer is not None:
            tracer.engine_reaction_commit(self._server.server_id, receive_of)
        self._server.metrics.counter("engine.reactions").add()
        sacct = self._server.acct
        if sacct is not None:
            sacct.reactions.inc()
            sacct.reaction_rate.mark(self._server.sim.now)
        self._schedule_next()

    # ------------------------------------------------------------------
    # Timers (volatile delayed sends, see ReactionContext.send_after)
    # ------------------------------------------------------------------

    def _arm_timer(
        self, sender: AgentId, delay: float, target: AgentId, payload: Any
    ) -> None:
        epoch = self._server.epoch
        self._server.sim.schedule_local(
            self._server.server_id,
            delay, self._fire_timer, sender, target, payload, epoch,
        )

    def _fire_timer(
        self, sender: AgentId, target: AgentId, payload: Any, epoch: int
    ) -> None:
        if epoch != self._server.epoch or self._server.is_crashed:
            return  # timers are volatile: crashes drop them
        self._server.bus.dispatch(sender, target, payload)

    # ------------------------------------------------------------------
    # Persistence / recovery
    # ------------------------------------------------------------------

    def _persist_queue(self) -> None:
        # Queue entries (Notifications, boot markers) are immutable; the
        # fresh list shell is a faithful snapshot.
        self._server.store.save(
            "engine.queue_in", list(self._queue_in), owned=True
        )

    def _persist_agent(self, local: int) -> None:
        # Agent.snapshot() hands over a private deep copy already.
        self._server.store.save(
            f"engine.agent.{local}", self._agents[local].snapshot(), owned=True
        )

    def on_crash(self) -> None:
        """Drop volatile execution state (queued reactions stay on disk)."""
        self._reacting = False
        self._queue_in.clear()

    def on_recover(self) -> None:
        """Reload QueueIN and every agent's durable state, then resume."""
        saved = self._server.store.load("engine.queue_in", default=[])
        self._queue_in = deque(saved)
        for local, agent in self._agents.items():
            snapshot = self._server.store.load(f"engine.agent.{local}")
            if snapshot is not None:
                agent.restore(snapshot)
        self._schedule_next()

    def __repr__(self) -> str:
        return (
            f"Engine(server={self._server.server_id}, "
            f"agents={len(self._agents)}, queued={len(self._queue_in)})"
        )
