"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while the
specific subclasses keep diagnostics precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A bus, topology or experiment configuration is invalid."""


class TopologyError(ConfigurationError):
    """The domain/server topology is malformed (empty domain, unknown server,
    disconnected graph, ...)."""


class CyclicDomainGraphError(TopologyError):
    """The domain interconnection graph contains a cycle.

    Per the paper's main theorem this voids the global causality guarantee,
    so :class:`~repro.mom.bus.MessageBus` refuses to boot such a topology
    unless explicitly asked to (which the theorem tests do, on purpose).

    Attributes:
        cycle: the offending sequence of domain identifiers, as reported by
            the cycle finder; the first and last entries close the loop.
    """

    def __init__(self, cycle):
        self.cycle = list(cycle)
        pretty = " -> ".join(str(d) for d in self.cycle)
        super().__init__(f"domain interconnection graph has a cycle: {pretty}")


class RoutingError(ReproError):
    """No route exists between two servers, or a routing table is stale."""


class ClockError(ReproError):
    """A logical-clock operation was used incorrectly (size mismatch,
    unknown process index, merging clocks of different shapes, ...)."""


class ProtocolError(ReproError):
    """A causal-delivery core was misused: unknown core name, conflicting
    registration, an unsupported hook (wire codec, domain resize), or a
    malformed wire payload."""


class CausalityViolationError(ReproError):
    """A trace checker found messages delivered against causal order.

    Attributes:
        witness: a human-readable description of the violating pair.
    """

    def __init__(self, witness: str):
        self.witness = witness
        super().__init__(f"causal delivery violated: {witness}")


class TraceError(ReproError):
    """A trace (or virtual trace) is structurally invalid: unknown process,
    receive without a matching send, chains that cross over, ..."""


class SimulationError(ReproError):
    """The discrete-event kernel was driven incorrectly (event scheduled in
    the past, run() re-entered, ...)."""


class TransportError(SimulationError):
    """The reliable transport gave up on a message (retry budget exhausted)."""


class ServerCrashedError(ReproError):
    """An operation was attempted on a crashed agent server."""


class PersistenceError(ReproError):
    """The simulated persistent store rejected an operation."""


class AgentError(ReproError):
    """An agent reaction failed, or an unknown agent was addressed."""
