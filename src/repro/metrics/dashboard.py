"""The terminal dashboard: a ``top``-style per-domain cost table.

Renders a :meth:`~repro.metrics.registry.Registry.snapshot` dict as the
causality-cost ledger the paper's §6 argues about, one row per domain of
causality: stamp bytes serialized, merge work, commit counts, hold-back
pressure and resident clock state. Domains are ranked by stamp bytes —
the most expensive domain first, like ``top`` ranks by CPU.

Pure function of the snapshot: no colors, no wall clock, no terminal
queries, so the output is diffable and usable in tests and CI logs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.exposition import label_values, select, total


def _fmt_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return (
                f"{int(value)}{unit}"
                if unit == "B"
                else f"{value:.1f}{unit}"
            )
        value /= 1024.0
    return f"{value:.1f}GiB"


def _one(rows: List[dict], key: str, default: float = 0.0) -> float:
    return float(rows[0].get(key, default)) if rows else default


def render(snapshot: dict, servers: bool = False) -> str:
    """The per-domain table (plus a per-server table with ``servers``)."""
    meta = snapshot.get("meta", {})
    out: List[str] = []
    out.append(
        f"repro.metrics — t={snapshot.get('sim_now_ms', 0.0):.1f}ms  "
        f"servers={meta.get('servers', '?')}  "
        f"notifications={int(total(snapshot, 'bus_notifications_total'))}"
    )
    delivery = select(snapshot, "bus_delivery_ms")
    if delivery and delivery[0].get("count"):
        row = delivery[0]
        out.append(
            f"delivery e2e: n={int(row['count'])}  "
            f"p50={row['p50']:.2f}ms  p95={row['p95']:.2f}ms  "
            f"p99={row['p99']:.2f}ms"
        )
    out.append("")

    header = (
        f"{'domain':<10} {'srv':>4} {'stamp bytes':>12} {'B/commit':>9} "
        f"{'merge cells':>11} {'commits':>8} {'held':>6} "
        f"{'dwell p95':>10} {'depth max':>9} {'clock cells':>11}"
    )
    out.append(header)
    out.append("-" * len(header))

    domains = label_values(snapshot, "domain")
    rows: List[Dict[str, float]] = []
    for domain in domains:
        commits = total(snapshot, "channel_commits_total", domain=domain)
        stamp = total(snapshot, "channel_stamp_bytes_total", domain=domain)
        depth_rows = select(
            snapshot, "channel_holdback_depth", domain=domain
        )
        dwell = select(
            snapshot, "channel_holdback_dwell_ms", domain=domain
        )
        rows.append(
            {
                "domain": domain,
                "servers": len(
                    {
                        r["labels"].get("server", "")
                        for r in select(
                            snapshot, "clock_state_cells", domain=domain
                        )
                    }
                ),
                "stamp": stamp,
                "merge": total(
                    snapshot, "channel_merge_cells_total", domain=domain
                ),
                "commits": commits,
                "held": total(
                    snapshot, "channel_holdback_enters_total", domain=domain
                ),
                "dwell_p95": _one(dwell, "p95"),
                "depth_max": max(
                    (float(r.get("max", 0.0)) for r in depth_rows),
                    default=0.0,
                ),
                "clock_cells": total(
                    snapshot, "clock_state_cells", domain=domain
                ),
            }
        )
    rows.sort(key=lambda r: (-r["stamp"], r["domain"]))
    for r in rows:
        per_commit = r["stamp"] / r["commits"] if r["commits"] else 0.0
        out.append(
            f"{r['domain']:<10} {int(r['servers']):>4} "
            f"{_fmt_bytes(r['stamp']):>12} {per_commit:>9.1f} "
            f"{int(r['merge']):>11} {int(r['commits']):>8} "
            f"{int(r['held']):>6} {r['dwell_p95']:>8.2f}ms "
            f"{int(r['depth_max']):>9} {int(r['clock_cells']):>11}"
        )
    if rows:
        out.append("-" * len(header))
        out.append(
            f"{'TOTAL':<10} {'':>4} "
            f"{_fmt_bytes(sum(r['stamp'] for r in rows)):>12} {'':>9} "
            f"{int(sum(r['merge'] for r in rows)):>11} "
            f"{int(sum(r['commits'] for r in rows)):>8} "
            f"{int(sum(r['held'] for r in rows)):>6} {'':>10} {'':>9} "
            f"{int(sum(r['clock_cells'] for r in rows)):>11}"
        )

    if servers:
        out.append("")
        sheader = (
            f"{'server':>6} {'reactions':>10} {'rate/s':>8} "
            f"{'forwards':>9} {'ack retries':>11} {'unacked':>8} "
            f"{'queued':>7}"
        )
        out.append(sheader)
        out.append("-" * len(sheader))
        for server in sorted(
            label_values(snapshot, "server"), key=lambda s: int(s)
        ):
            reactions = total(
                snapshot, "engine_reactions_total", server=server
            )
            rate_rows = select(
                snapshot, "engine_reaction_rate", server=server
            )
            out.append(
                f"{server:>6} {int(reactions):>10} "
                f"{_one(rate_rows, 'value'):>8.2f} "
                f"{int(total(snapshot, 'channel_forwards_total', server=server)):>9} "
                f"{int(total(snapshot, 'channel_ack_retries_total', server=server)):>11} "
                f"{int(total(snapshot, 'channel_unacked_depth', server=server)):>8} "
                f"{int(total(snapshot, 'engine_queue_depth', server=server)):>7}"
            )
    return "\n".join(out)
