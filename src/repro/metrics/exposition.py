"""Exposition formats: Prometheus text and JSON, plus snapshot queries.

Both formats render the same :meth:`~repro.metrics.registry.Registry.snapshot`
dict, so a snapshot written to disk by ``--metrics-out`` converts to
Prometheus text offline (``python -m repro.metrics prom out.json``) —
no live process required, and everything stays byte-deterministic.

Prometheus conventions used:

- every family is prefixed ``repro_`` and sample lines carry the sorted
  label set, e.g.
  ``repro_channel_stamp_bytes_total{domain="D0",server="3"} 1800``;
- counters keep their ``_total`` suffix; gauges and EWMA rates expose as
  ``gauge`` (a rate is *not* a Prometheus counter — it is already a
  derivative); gauge high-water marks get a ``_peak`` companion family;
- histograms expose the classic ``_bucket{le=...}`` cumulative series
  (upper bounds are the log-scale bucket edges actually hit, plus
  ``+Inf``), ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional

from repro.errors import ConfigurationError

#: Family-name prefix on every exposed Prometheus metric.
PROM_PREFIX = "repro_"


def _fmt_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: Dict[str, str], extra: Optional[str] = None) -> str:
    parts = [
        f'{key}="{_escape(str(val))}"' for key, val in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _check_snapshot(snapshot: dict) -> List[dict]:
    fmt = snapshot.get("format")
    if fmt != "repro.metrics/v1":
        raise ConfigurationError(
            f"not a repro.metrics snapshot (format={fmt!r})"
        )
    instruments = snapshot.get("instruments")
    if not isinstance(instruments, list):
        raise ConfigurationError("snapshot has no instruments list")
    return instruments


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot dict as Prometheus text exposition format."""
    instruments = _check_snapshot(snapshot)
    lines: List[str] = []
    seen_header = set()

    def header(family: str, kind: str, help_text: str) -> None:
        if family in seen_header:
            return
        seen_header.add(family)
        if help_text:
            lines.append(f"# HELP {family} {_escape(help_text)}")
        lines.append(f"# TYPE {family} {kind}")

    for row in instruments:
        family = PROM_PREFIX + row["name"]
        labels = row.get("labels", {})
        help_text = row.get("help", "")
        kind = row["type"]
        if kind == "counter":
            header(family, "counter", help_text)
            lines.append(
                f"{family}{_label_str(labels)} {_fmt_value(row['value'])}"
            )
        elif kind in ("gauge", "rate"):
            header(family, "gauge", help_text)
            lines.append(
                f"{family}{_label_str(labels)} {_fmt_value(row['value'])}"
            )
            if kind == "gauge" and "max" in row:
                peak = family + "_peak"
                header(peak, "gauge", f"high-water mark of {family}")
                lines.append(
                    f"{peak}{_label_str(labels)} {_fmt_value(row['max'])}"
                )
        elif kind == "histogram":
            header(family, "histogram", help_text)
            cumulative = 0
            for _lo, hi, count in row.get("buckets", []):
                cumulative += count
                le = 'le="' + _fmt_value(hi) + '"'
                lines.append(
                    f"{family}_bucket{_label_str(labels, le)} {cumulative}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{family}_bucket{_label_str(labels, inf)} {row['count']}"
            )
            lines.append(
                f"{family}_sum{_label_str(labels)} {_fmt_value(row['sum'])}"
            )
            lines.append(
                f"{family}_count{_label_str(labels)} {row['count']}"
            )
        else:
            raise ConfigurationError(f"unknown instrument type {kind!r}")
    return "\n".join(lines) + "\n"


def write_json(snapshot: dict, stream: IO[str]) -> None:
    """Write a snapshot as deterministic, strict (NaN-free) JSON."""
    json.dump(snapshot, stream, sort_keys=True, indent=1, allow_nan=False)
    stream.write("\n")


def read_json(stream: IO[str]) -> dict:
    """Load and validate a snapshot written by :func:`write_json`."""
    snapshot = json.load(stream)
    _check_snapshot(snapshot)
    return snapshot


# ----------------------------------------------------------------------
# Snapshot queries (used by the dashboard, the bench exporter, tests)
# ----------------------------------------------------------------------


def select(
    snapshot: dict, name: str, **labels: str
) -> List[dict]:
    """Instrument rows matching ``name`` and every given label (exact)."""
    rows = []
    for row in _check_snapshot(snapshot):
        if row["name"] != name:
            continue
        row_labels = row.get("labels", {})
        if all(row_labels.get(k) == str(v) for k, v in labels.items()):
            rows.append(row)
    return rows


def total(snapshot: dict, name: str, **labels: str) -> float:
    """Sum of ``value`` over matching counter/gauge rows (0.0 if none)."""
    return float(
        sum(row.get("value", 0.0) for row in select(snapshot, name, **labels))
    )


def label_values(snapshot: dict, label: str) -> List[str]:
    """Every distinct value the given label takes, sorted."""
    values = {
        row["labels"][label]
        for row in _check_snapshot(snapshot)
        if label in row.get("labels", {})
    }
    return sorted(values)
