"""Typed metric instruments: Counter, Gauge, sim-time EWMA Rate.

These are the always-on hot-path primitives of :mod:`repro.metrics`: each
instrument is a plain ``__slots__`` object whose update methods touch only
its own attributes — no registry lookup, no allocation, no wall clock.
The instrumented layers resolve one handle per (component, instrument) at
boot and the per-event cost is a single bound-method call.

Everything is deterministic in simulated time: :class:`EwmaRate` decays
against the sim-time ``now`` its caller passes in, never against
``time.time()``, so two identical runs report byte-identical values.

(The fourth instrument, the bounded-memory
:class:`~repro.metrics.histogram.LogHistogram`, lives in its own module;
the :class:`~repro.metrics.registry.Registry` hands all four out.)
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing count (Prometheus ``counter``)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter cannot decrease (inc {amount})"
            )
        self.value += amount

    def dump_state(self) -> int:
        return self.value

    def merge_state(self, state: int) -> None:
        self.inc(int(state))

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A value that goes up and down, with a high-water mark.

    ``max_value`` tracks the largest value ever set — the peak pressure a
    queue-depth gauge saw, even if the queue is empty at snapshot time.
    """

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        value = self.value + amount
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def dump_state(self) -> "tuple":
        return (self.value, self.max_value)

    def merge_state(self, state: "tuple") -> None:
        """Adopt a shard's reading. Every gauge carries a ``server`` or
        ``domain`` label that pins it to exactly one shard, so at most one
        merged state is ever non-default; the high-water mark still folds
        commutatively for safety."""
        value, max_value = state
        self.value = value
        if max_value > self.max_value:
            self.max_value = max_value

    def __repr__(self) -> str:
        return f"Gauge({self.value}, max={self.max_value})"


class EwmaRate:
    """An exponentially-weighted event rate over a sim-time window.

    ``mark(now)`` records events at simulated instant ``now`` (ms);
    ``per_second(now)`` reads the decayed rate. The window ``tau_ms`` is
    the e-folding time: events older than a few tau contribute almost
    nothing. The decay uses only the caller-supplied sim-time, so the
    instrument is deterministic and costs one ``math.exp`` per mark.
    """

    __slots__ = ("tau_ms", "_rate", "_last_ms")

    def __init__(self, tau_ms: float = 1000.0) -> None:
        if tau_ms <= 0:
            raise ConfigurationError(
                f"EWMA window must be positive, got {tau_ms}"
            )
        self.tau_ms = tau_ms
        self._rate = 0.0  # events per ms
        self._last_ms = 0.0

    def mark(self, now: float, count: float = 1.0) -> None:
        """Record ``count`` events at sim-time ``now`` (ms)."""
        dt = now - self._last_ms
        if dt > 0:
            self._rate *= math.exp(-dt / self.tau_ms)
            self._last_ms = now
        self._rate += count / self.tau_ms

    def per_second(self, now: float) -> float:
        """The rate at sim-time ``now``, in events per second."""
        dt = now - self._last_ms
        rate = self._rate
        if dt > 0:
            rate *= math.exp(-dt / self.tau_ms)
        return rate * 1000.0

    def dump_state(self) -> "tuple":
        return (self.tau_ms, self._rate, self._last_ms)

    def merge_state(self, state: "tuple") -> None:
        """Adopt a shard's decay state. Rates are per-server labeled, so
        exactly one merged state is ever non-zero; a zero-rate state folds
        in as the bitwise no-op ``rate += 0.0``, keeping the surviving
        state identical to the sequential instrument's."""
        tau_ms, rate, last_ms = state
        if tau_ms != self.tau_ms:
            raise ConfigurationError(
                f"cannot merge EWMA windows {tau_ms} into {self.tau_ms}"
            )
        if last_ms > self._last_ms:
            dt = last_ms - self._last_ms
            self._rate *= math.exp(-dt / self.tau_ms)
            self._last_ms = last_ms
        elif last_ms < self._last_ms:
            rate *= math.exp(-(self._last_ms - last_ms) / self.tau_ms)
        self._rate += rate

    def __repr__(self) -> str:
        return f"EwmaRate(tau={self.tau_ms}ms, rate/ms={self._rate:.6g})"
