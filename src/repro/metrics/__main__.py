"""``python -m repro.metrics`` — cost-accounting snapshots from the CLI.

Subcommands:

- ``demo``  run a small routed workload with accounting on and show the
  per-domain dashboard (optionally dumping JSON / Prometheus text) — the
  quickest way to *see* the Θ(n²)→Θ(n) decomposition;
- ``top``   render the per-domain dashboard from a snapshot JSON file
  (written by ``demo``, ``python -m repro.mom ... --metrics-out``, or
  :func:`repro.metrics.write_json`);
- ``prom``  convert a snapshot JSON file to Prometheus text exposition;
- ``json``  re-emit a snapshot normalized (sorted keys, strict JSON) —
  handy for diffing two runs.

Everything operates on files or one-shot runs: snapshots are
deterministic artifacts, not a live scrape endpoint, so they diff
cleanly and gate in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.metrics.dashboard import render
from repro.metrics.exposition import read_json, to_prometheus, write_json


def _load(path: str) -> dict:
    try:
        with open(path) as stream:
            return read_json(stream)
    except FileNotFoundError:
        raise ConfigurationError(f"no snapshot at {path!r}") from None
    except ValueError as exc:
        raise ConfigurationError(
            f"{path!r} is not a metrics snapshot: {exc}"
        ) from None


def cmd_top(args: argparse.Namespace) -> int:
    print(render(_load(args.snapshot), servers=args.servers))
    return 0


def cmd_prom(args: argparse.Namespace) -> int:
    text = to_prometheus(_load(args.snapshot))
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(text)
        print(f"wrote Prometheus text to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_json(args: argparse.Namespace) -> int:
    snapshot = _load(args.snapshot)
    if args.output:
        with open(args.output, "w") as stream:
            write_json(snapshot, stream)
        print(f"wrote normalized snapshot to {args.output}")
    else:
        write_json(snapshot, sys.stdout)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    # The CLI is an application boundary: it drives the MOM the way a
    # user script would, so (exactly like the bench and obs CLIs driving
    # lower layers from above) it may import the mom layer here.
    from repro.mom.agent import EchoAgent  # noqa: R006
    from repro.mom.bus import MessageBus  # noqa: R006
    from repro.mom.config import BusConfig  # noqa: R006
    from repro.mom.workloads import PingPongDriver  # noqa: R006
    from repro.topology import builders  # noqa: R006

    topology = builders.bus(args.servers, args.domain_size)
    bus = MessageBus(
        BusConfig(topology=topology, seed=args.seed, record_app_trace=True)
    )
    if bus.accounting is None:
        raise ConfigurationError(
            "accounting is disabled (REPRO_METRICS=0); demo needs it on"
        )
    echo_id = bus.deploy(EchoAgent(), topology.server_count - 1)
    driver = PingPongDriver(args.rounds)
    driver.bind(echo_id)
    bus.deploy(driver, 0)
    bus.start()
    bus.run_until_idle()

    snapshot = bus.cost_snapshot()
    assert snapshot is not None
    print(render(snapshot, servers=args.servers_table))
    if args.json:
        with open(args.json, "w") as stream:
            write_json(snapshot, stream)
        print(f"\nsnapshot: {args.json}")
    if args.prom:
        with open(args.prom, "w") as stream:
            stream.write(to_prometheus(snapshot))
        print(f"prometheus text: {args.prom}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="causality-cost accounting snapshots",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("top", help="per-domain dashboard of a snapshot")
    p.add_argument("snapshot", help="snapshot JSON file")
    p.add_argument(
        "--servers", action="store_true", help="add the per-server table"
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("prom", help="snapshot -> Prometheus text format")
    p.add_argument("snapshot", help="snapshot JSON file")
    p.add_argument("-o", "--output", default=None, help="output path")
    p.set_defaults(fn=cmd_prom)

    p = sub.add_parser("json", help="re-emit a snapshot normalized")
    p.add_argument("snapshot", help="snapshot JSON file")
    p.add_argument("-o", "--output", default=None, help="output path")
    p.set_defaults(fn=cmd_json)

    p = sub.add_parser("demo", help="run a routed demo workload, show costs")
    p.add_argument("--servers", type=int, default=12)
    p.add_argument("--domain-size", type=int, default=4)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--servers-table",
        action="store_true",
        help="also print the per-server table",
    )
    p.add_argument("--json", default=None, help="dump snapshot JSON here")
    p.add_argument("--prom", default=None, help="dump Prometheus text here")
    p.set_defaults(fn=cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        result: int = args.fn(args)
        return result
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved Unix filter.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
