"""Fixed-bucket, log-scaled latency histograms with exact-rank percentiles.

The experiment-level :class:`~repro.simulation.metrics.Samples` keeps every
observation (needed for the bit-exact numpy-compatible stats the figures
fingerprint); the always-on accounting and tracing layers instead want
bounded memory at any event rate, so they use :class:`LogHistogram`:
geometric buckets covering ``[low, high)`` at ``per_decade`` buckets per
decade, plus an underflow and an overflow bucket.

Percentiles are *exact in rank*: ``percentile(q)`` finds the bucket that
contains the ⌈q/100·count⌉-th smallest sample — not an interpolation — and
returns that bucket's upper bound (clamped to the observed maximum), so
the true order statistic provably lies within the bucket's bounds
(``percentile_bounds``). With the default 32 buckets per decade the
relative bucket width is ``10^(1/32) − 1 ≈ 7.5 %``.

Everything is deterministic: bucket edges are precomputed floats, lookup
is a ``bisect``, and recording order never affects any reported value.
The running sum is kept as an *integer* number of ``2**-20`` quanta
(``_SUM_SCALE``), so it is associative and commutative exactly — shard
registries merged in any order reproduce the sequential histogram bit for
bit (docs/parallel.md); the ~1e-6 relative quantization is far below the
7.5 % bucket resolution everything else reports at.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError

#: Quanta per unit for the exact integer running sum (2**20).
_SUM_SCALE = 1 << 20


class LogHistogram:
    """A bounded-memory latency histogram with log-spaced buckets."""

    __slots__ = (
        "name",
        "low",
        "high",
        "per_decade",
        "_bounds",
        "_counts",
        "_count",
        "_sum_q",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str,
        low: float = 1e-3,
        high: float = 1e7,
        per_decade: int = 32,
    ) -> None:
        if not 0 < low < high:
            raise ConfigurationError(
                f"invalid histogram range [{low}, {high})"
            )
        if per_decade < 1:
            raise ConfigurationError(
                f"per_decade must be >= 1, got {per_decade}"
            )
        self.name = name
        self.low = low
        self.high = high
        self.per_decade = per_decade
        n = int(math.ceil(math.log10(high / low) * per_decade))
        self._bounds: List[float] = [
            low * 10.0 ** (i / per_decade) for i in range(n + 1)
        ]
        # counts[0] = underflow (v < low, including 0), counts[i] covers
        # [bounds[i-1], bounds[i]), counts[n+1] = overflow (v >= bounds[n])
        self._counts: List[int] = [0] * (n + 2)
        self._count = 0
        self._sum_q = 0  # integer 2**-20 quanta: exact, merge-order-free
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, value: float) -> None:
        """Record one observation (non-finite values are rejected)."""
        v = float(value)
        if not math.isfinite(v):
            raise ConfigurationError(
                f"histogram {self.name!r} cannot record {value!r}"
            )
        self._counts[bisect_right(self._bounds, v)] += 1
        self._count += 1
        self._sum_q += round(v * _SUM_SCALE)
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self.total / self._count if self._count else math.nan

    @property
    def total(self) -> float:
        """Sum of all recorded values (Prometheus ``_sum``), rounded to
        the nearest ``2**-20`` quantum per observation."""
        return self._sum_q / _SUM_SCALE

    @property
    def minimum(self) -> float:
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._count else math.nan

    def _bucket_at_rank(self, rank: int) -> int:
        cumulative = 0
        for idx, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return idx
        return len(self._counts) - 1

    def percentile_bounds(self, q: float) -> Tuple[float, float]:
        """The ``(lo, hi)`` bucket bounds that bracket the q-th percentile.

        The true ⌈q/100·count⌉-th smallest recorded value lies in
        ``[lo, hi]`` — this is what the oracle tests pin.
        """
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile out of range: {q}")
        if not self._count:
            return (math.nan, math.nan)
        rank = min(self._count, max(1, math.ceil(q / 100.0 * self._count)))
        idx = self._bucket_at_rank(rank)
        if idx == 0:
            return (min(0.0, self._min), self.low)
        if idx == len(self._counts) - 1:
            return (self._bounds[-1], self._max)
        return (self._bounds[idx - 1], self._bounds[idx])

    def percentile(self, q: float) -> float:
        """Exact-rank percentile: the containing bucket's upper bound,
        clamped to the observed extrema."""
        lo, hi = self.percentile_bounds(q)
        if math.isnan(hi):
            return math.nan
        return max(min(hi, self._max), self._min)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def buckets(self) -> Iterator[Tuple[float, float, int]]:
        """Non-empty buckets as ``(lo, hi, count)``, ascending."""
        last = len(self._counts) - 1
        for idx, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            if idx == 0:
                yield (min(0.0, self._min), self.low, bucket_count)
            elif idx == last:
                yield (self._bounds[-1], self._max, bucket_count)
            else:
                yield (self._bounds[idx - 1], self._bounds[idx], bucket_count)

    def dump_state(self) -> Dict[str, object]:
        """Picklable contents (plus bucket geometry, so a merge target can
        verify compatibility) for cross-process shard merging."""
        return {
            "low": self.low,
            "high": self.high,
            "per_decade": self.per_decade,
            "counts": list(self._counts),
            "count": self._count,
            "sum_q": self._sum_q,
            "min": self._min,
            "max": self._max,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold one shard's :meth:`dump_state` in. Every statistic is a
        commutative reduction (integer adds, min, max), so merging shard
        histograms in any order equals recording the union sequentially."""
        if (
            state["low"] != self.low
            or state["high"] != self.high
            or state["per_decade"] != self.per_decade
        ):
            raise ConfigurationError(
                f"histogram {self.name!r}: merging incompatible geometry"
            )
        counts = state["counts"]
        for i, bucket_count in enumerate(counts):  # type: ignore[arg-type]
            self._counts[i] += bucket_count
        self._count += state["count"]  # type: ignore[operator]
        self._sum_q += state["sum_q"]  # type: ignore[operator]
        if state["min"] < self._min:  # type: ignore[operator]
            self._min = state["min"]  # type: ignore[assignment]
        if state["max"] > self._max:  # type: ignore[operator]
            self._max = state["max"]  # type: ignore[assignment]

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics, JSON-ready."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return (
            f"LogHistogram({self.name}: n={self._count}, "
            f"p50={self.percentile(50):.3g}, p99={self.percentile(99):.3g})"
        )
