"""The instrument registry: named, labeled, snapshot-able.

A :class:`Registry` owns every instrument of one accounting surface (one
:class:`~repro.mom.bus.MessageBus` in practice). Instruments are created
on first request — ``registry.counter(name, labels)`` — and the returned
handle is the bare instrument object, so hot paths pay **zero** registry
cost per event: resolve the handle once at boot, call ``inc``/``mark``
forever after (the same discipline as the tracer's single
``_tracer is not None`` check).

Labels are ``{key: value}`` string pairs; the registry interns each
``(name, sorted labels)`` combination to exactly one instrument. The
paper's two label axes are ``server`` (global server id) and ``domain``
(causality-domain id) — the decomposition §4 argues about is literally
the ``domain`` label here.

*Collectors* are zero-argument callables run at snapshot time; the
instrumented layers register them to pull state that would be wasteful to
push per event (queue depths, resident clock-state cells, clock
merge-mode counts). Collection order is registration order and every
collector reads sim-state deterministically, so two identical runs
produce byte-identical snapshots (pinned by the determinism tests).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.histogram import LogHistogram
from repro.metrics.instruments import Counter, EwmaRate, Gauge

#: Snapshot schema identifier (bumped on incompatible changes).
SNAPSHOT_FORMAT = "repro.metrics/v1"

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Entry:
    """One registered instrument plus its exposition metadata."""

    __slots__ = ("kind", "name", "labels", "help", "instrument")

    def __init__(
        self, kind: str, name: str, labels: Labels, help: str, instrument
    ) -> None:
        self.kind = kind
        self.name = name
        self.labels = labels
        self.help = help
        self.instrument = instrument


def _finite(value: float) -> float:
    """NaN/inf-free float for strict-JSON snapshots (empty -> 0.0)."""
    return value if math.isfinite(value) else 0.0


class Registry:
    """Named, labeled instruments plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, Labels], _Entry] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Instrument factories (idempotent per (name, labels))
    # ------------------------------------------------------------------

    def _get(
        self,
        kind: str,
        name: str,
        labels: Optional[Mapping[str, str]],
        help: str,
        factory: Callable[[], object],
    ):
        key = (name, _labels_key(labels))
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry(kind, name, key[1], help, factory())
            self._entries[key] = entry
        elif entry.kind != kind:
            raise ConfigurationError(
                f"instrument {name!r}{dict(key[1])} already registered "
                f"as {entry.kind}, requested as {kind}"
            )
        return entry.instrument

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Counter:
        return self._get("counter", name, labels, help, Counter)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get("gauge", name, labels, help, Gauge)

    def rate(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        tau_ms: float = 1000.0,
    ) -> EwmaRate:
        return self._get(
            "rate", name, labels, help, lambda: EwmaRate(tau_ms)
        )

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        low: float = 1e-3,
        high: float = 1e7,
        per_decade: int = 32,
    ) -> LogHistogram:
        return self._get(
            "histogram",
            name,
            labels,
            help,
            lambda: LogHistogram(name, low=low, high=high,
                                 per_decade=per_decade),
        )

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a pull hook run (in order) at every snapshot."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector()

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> List[str]:
        return sorted({entry.name for entry in self._entries.values()})

    def snapshot(
        self, now: float = 0.0, meta: Optional[dict] = None
    ) -> dict:
        """JSON-ready snapshot: run collectors, then serialize everything.

        Deterministic: instruments sorted by (name, labels), every float
        finite, no wall-clock anywhere — two identical sim runs dump
        byte-identical JSON.
        """
        self.collect()
        instruments = []
        for (name, labels), entry in sorted(self._entries.items()):
            row: dict = {
                "name": name,
                "type": entry.kind,
                "labels": dict(labels),
            }
            if entry.help:
                row["help"] = entry.help
            obj = entry.instrument
            if entry.kind == "counter":
                row["value"] = obj.value
            elif entry.kind == "gauge":
                row["value"] = _finite(obj.value)
                row["max"] = _finite(obj.max_value)
            elif entry.kind == "rate":
                row["value"] = _finite(obj.per_second(now))
                row["tau_ms"] = obj.tau_ms
            else:  # histogram
                row["count"] = obj.count
                row["sum"] = _finite(obj.total)
                row["min"] = _finite(obj.minimum)
                row["max"] = _finite(obj.maximum)
                for q in (50, 90, 95, 99):
                    row[f"p{q}"] = _finite(obj.percentile(q))
                row["buckets"] = [
                    [lo, hi, count] for lo, hi, count in obj.buckets()
                ]
            instruments.append(row)
        return {
            "format": SNAPSHOT_FORMAT,
            "meta": dict(meta or {}),
            "sim_now_ms": now,
            "instruments": instruments,
        }

    # ------------------------------------------------------------------
    # Cross-process shard merging (repro.mom.parallel)
    # ------------------------------------------------------------------

    def dump_state(self) -> List[dict]:
        """Picklable registry contents: collectors run first (so pulled
        gauges are current), then every entry ships its kind, identity,
        help text and instrument state."""
        self.collect()
        rows = []
        for (name, labels), entry in sorted(self._entries.items()):
            rows.append({
                "kind": entry.kind,
                "name": name,
                "labels": list(labels),
                "help": entry.help,
                "state": entry.instrument.dump_state(),
            })
        return rows

    def merge_state(self, rows: List[dict]) -> None:
        """Fold one shard registry's :meth:`dump_state` into this one.

        Instruments are created on demand (with the shipped help text and
        construction parameters) and each delegates to its own
        ``merge_state`` — counters and histogram statistics are
        commutative reductions, gauges and rates are pinned to one shard
        by their label discipline, so merge order never matters."""
        for row in rows:
            kind = row["kind"]
            name = row["name"]
            labels = dict(row["labels"])
            state = row["state"]
            if kind == "counter":
                instrument = self.counter(name, labels, help=row["help"])
            elif kind == "gauge":
                instrument = self.gauge(name, labels, help=row["help"])
            elif kind == "rate":
                instrument = self.rate(
                    name, labels, help=row["help"], tau_ms=state[0]
                )
            elif kind == "histogram":
                instrument = self.histogram(
                    name,
                    labels,
                    help=row["help"],
                    low=state["low"],
                    high=state["high"],
                    per_decade=state["per_decade"],
                )
            else:
                raise ConfigurationError(
                    f"cannot merge unknown instrument kind {kind!r}"
                )
            instrument.merge_state(state)

    def __repr__(self) -> str:
        return (
            f"Registry(instruments={len(self._entries)}, "
            f"collectors={len(self._collectors)})"
        )
