"""repro.metrics — always-on causality-cost accounting.

The paper's central claim is quantitative: domains of causality cut the
per-message causality cost from Θ(n²) to Θ(n) (§6). This package makes
that cost a continuously observable quantity instead of an after-the-fact
benchmark result: a :class:`Registry` of typed instruments
(:class:`Counter`, :class:`Gauge`, sim-time-windowed :class:`EwmaRate`,
bounded-memory :class:`LogHistogram`) that the MOM's hot paths update
through preallocated handles — no dict lookup, no allocation, no wall
clock per event — labeled per ``server`` and per ``domain``.

The package sits at the very bottom of the layer stack (only ``errors``
below it) so every layer — clocks, topology, mom — may account its own
costs. It never *reads* the simulation: callers pass sim-time in, and a
metrics-enabled run is bit-identical to a disabled one (accounting is
observation-only, like the tracer).

Exposition: :func:`to_prometheus` (Prometheus text format),
:func:`write_json` (deterministic JSON snapshots), and a ``top``-style
per-domain terminal dashboard (:func:`render_dashboard`), all available
offline over dumped snapshots via ``python -m repro.metrics``.

Disable switch: ``REPRO_METRICS=0`` in the environment (or
``BusConfig(accounting=False)``) turns the whole surface off; the hot
paths then pay one ``is not None`` check per edge, exactly like the
tracer's off mode.
"""

from repro.metrics.dashboard import render as render_dashboard
from repro.metrics.exposition import (
    PROM_PREFIX,
    label_values,
    read_json,
    select,
    to_prometheus,
    total,
    write_json,
)
from repro.metrics.histogram import LogHistogram
from repro.metrics.instruments import Counter, EwmaRate, Gauge
from repro.metrics.registry import SNAPSHOT_FORMAT, Registry

__all__ = [
    "Counter",
    "EwmaRate",
    "Gauge",
    "LogHistogram",
    "PROM_PREFIX",
    "Registry",
    "SNAPSHOT_FORMAT",
    "label_values",
    "read_json",
    "render_dashboard",
    "select",
    "to_prometheus",
    "total",
    "write_json",
]
