"""The causality formalism of §4.2–§4.3, executable.

This package turns the paper's definitions into checkable objects:

- :mod:`repro.causality.message` — messages with a source and destination
  process;
- :mod:`repro.causality.trace` — global histories (traces) as per-process
  event sequences, with the local orders ``<p``;
- :mod:`repro.causality.order` — the causal-precedence relation ``≺`` on
  messages (the three rules of §4.2), trace correctness (``≺`` is a partial
  order), and the causal-delivery predicate;
- :mod:`repro.causality.chains` — process paths (direct, minimal, cycles)
  and message chains, including the Lemma-1 reduction of an arbitrary chain
  to a direct chain;
- :mod:`repro.causality.virtual` — virtual traces: sets of non-crossing
  minimal chains collapsed into virtual messages (§4.2, Figure 3);
- :mod:`repro.causality.checker` — one-call checkers producing structured
  violation reports, globally and per domain;
- :mod:`repro.causality.counterexample` — the Figure-4(a) construction: for
  any cyclic domain graph, a trace that respects causality in every domain
  yet violates it globally (the ``P1 ⇒ P2`` half of the main theorem).

The MOM (:mod:`repro.mom`) records its deliveries into these traces, so the
theorem's other half (``P2 ⇒ P1``) is validated end-to-end by running real
workloads on acyclic topologies and checking the recorded trace.
"""

from repro.causality.message import Message
from repro.causality.trace import Event, EventKind, Trace
from repro.causality.order import CausalOrder
from repro.causality.chains import (
    Membership,
    Chain,
    is_path,
    is_direct_path,
    is_minimal_path,
    is_cycle,
    reduce_to_direct_chain,
)
from repro.causality.virtual import VirtualTrace, chains_cross_over
from repro.causality.checker import (
    Violation,
    CausalityReport,
    check_trace,
    check_domain,
    check_all_domains,
)
from repro.causality.counterexample import (
    find_cycle_path,
    build_violation_trace,
)
from repro.causality.diagram import render_space_time, render_timeline
from repro.causality.export import dump_trace, load_trace
from repro.causality.exhaustive import Send, ExplorationResult, explore
from repro.causality.dot import trace_to_dot

__all__ = [
    "Message",
    "Event",
    "EventKind",
    "Trace",
    "CausalOrder",
    "Membership",
    "Chain",
    "is_path",
    "is_direct_path",
    "is_minimal_path",
    "is_cycle",
    "reduce_to_direct_chain",
    "VirtualTrace",
    "chains_cross_over",
    "Violation",
    "CausalityReport",
    "check_trace",
    "check_domain",
    "check_all_domains",
    "find_cycle_path",
    "build_violation_trace",
    "render_space_time",
    "render_timeline",
    "dump_trace",
    "load_trace",
    "Send",
    "ExplorationResult",
    "explore",
    "trace_to_dot",
]
