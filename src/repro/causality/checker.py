"""One-call causality checkers with structured violation reports.

These wrap :class:`~repro.causality.order.CausalOrder` into the two
predicates the paper reasons about — "respects causality" globally and
"respects causality in domain d" — and are the oracles behind the
end-to-end theorem tests: every MOM run records a trace, and these checkers
pass judgment on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.causality.chains import Membership
from repro.causality.message import Message
from repro.causality.order import CausalOrder
from repro.causality.trace import Trace
from repro.errors import CausalityViolationError


@dataclass(frozen=True)
class Violation:
    """One causal-delivery violation: ``earlier ≺ later`` but ``process``
    received ``later`` first."""

    process: Hashable
    earlier: Message
    later: Message

    def describe(self) -> str:
        return (
            f"at process {self.process!r}: {self.earlier!r} causally "
            f"precedes {self.later!r} but was received after it"
        )


@dataclass
class CausalityReport:
    """Outcome of checking one trace (or one domain's restriction).

    Attributes:
        scope: ``"global"`` or the domain identifier the check was
            restricted to.
        correct: whether ``≺`` is a partial order on the checked trace.
        violations: all delivery violations found (empty iff the trace
            respects causality — provided it is correct).
    """

    scope: Hashable
    correct: bool
    violations: List[Violation] = field(default_factory=list)

    @property
    def respects_causality(self) -> bool:
        return self.correct and not self.violations

    def raise_on_violation(self) -> None:
        """Raise :class:`CausalityViolationError` describing the first
        violation, if any."""
        if not self.correct:
            raise CausalityViolationError(
                f"trace (scope {self.scope!r}) is not correct: "
                "the causal precedence relation has a cycle"
            )
        if self.violations:
            raise CausalityViolationError(self.violations[0].describe())

    def summary(self) -> str:
        status = "OK" if self.respects_causality else "VIOLATED"
        return (
            f"[{self.scope!r}] causal delivery {status} "
            f"({len(self.violations)} violation(s), "
            f"correct={self.correct})"
        )


def check_trace(trace: Trace, scope: Hashable = "global") -> CausalityReport:
    """Check that a trace respects causality (§4.2's global predicate)."""
    order = CausalOrder(trace)
    correct = order.is_correct()
    violations = [
        Violation(process, earlier, later)
        for process, earlier, later in order.delivery_violations()
    ]
    return CausalityReport(scope=scope, correct=correct, violations=violations)


def check_domain(
    trace: Trace, membership: Membership, domain: Hashable
) -> CausalityReport:
    """Check "respects causality in domain d": restrict the trace to the
    messages with source and destination in ``d``, then check."""
    restricted = trace.restrict(membership.domain_messages(trace, domain))
    return check_trace(restricted, scope=domain)


def check_all_domains(
    trace: Trace, membership: Membership
) -> Dict[Hashable, CausalityReport]:
    """Per-domain reports for every domain of the membership."""
    return {
        domain: check_domain(trace, membership, domain)
        for domain in membership.domains
    }
