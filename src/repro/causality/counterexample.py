"""The Figure-4(a) construction: cycles break causality.

Part 1 of the theorem's proof (§4.3) is constructive: given any cycle in the
domain structure, there is a correct trace that respects causality in every
domain yet violates it globally. This module finds such a cycle in an
arbitrary membership and materializes the violating trace, so tests (and the
``theorem_demo`` example) can exhibit the break both formally and — by
replaying the same schedule through the MOM with validation disabled — in
the running system.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.causality.chains import Chain, Membership, is_cycle
from repro.causality.message import Message
from repro.causality.trace import EventKind, Trace
from repro.errors import TopologyError


def _domain_graph(membership: Membership) -> nx.Graph:
    """The §4.2 domain interconnection graph: domains are vertices, and two
    domains are adjacent iff some process belongs to both."""
    graph = nx.Graph()
    graph.add_nodes_from(membership.domains)
    domains = membership.domains
    for i, first in enumerate(domains):
        for second in domains[i + 1 :]:
            shared = membership.members(first) & membership.members(second)
            if shared:
                graph.add_edge(first, second, shared=sorted(shared, key=repr))
    return graph


def find_cycle_path(membership: Membership) -> Optional[Tuple[Hashable, ...]]:
    """Find a §4.2 cycle: a direct process path whose endpoints share a
    domain while no single domain contains every process on it.

    The search walks simple cycles of the domain graph and greedily picks a
    distinct router process for each consecutive domain pair. Returns
    ``None`` when the membership admits no such path (e.g. the domain graph
    is acyclic, or its only cycles collapse onto a single ubiquitous
    process).
    """
    graph = _domain_graph(membership)
    for domain_cycle in nx.cycle_basis(graph):
        if len(domain_cycle) < 3:
            continue
        path = _pick_routers(domain_cycle, membership)
        if path is not None and is_cycle(path, membership):
            return path
    return None


def _pick_routers(
    domain_cycle: Sequence[Hashable], membership: Membership
) -> Optional[Tuple[Hashable, ...]]:
    """Choose one distinct process per consecutive domain pair of the cycle.

    For the domain cycle ``(d0, ..., dk-1)`` (closing ``dk-1 — d0``), the
    returned process path ``(r0, ..., rk-1)`` has ``ri`` in
    ``d_i ∩ d_{i+1 mod k}``; consecutive processes then share ``d_{i+1}``
    and the endpoints share ``d0``.
    """
    count = len(domain_cycle)
    chosen: List[Hashable] = []
    taken: set = set()
    for i in range(count):
        here = domain_cycle[i]
        there = domain_cycle[(i + 1) % count]
        shared = membership.members(here) & membership.members(there)
        candidates = [process for process in shared if process not in taken]
        if not candidates:
            return None
        router = sorted(candidates, key=repr)[0]
        chosen.append(router)
        taken.add(router)
    return tuple(chosen)


def build_violation_trace(
    path: Sequence[Hashable], membership: Membership
) -> Tuple[Trace, Message, Chain]:
    """Materialize the Figure-4(a) trace over a cycle path.

    With ``path = (p, p1, ..., pi, ..., q)``:

    - ``p`` first sends the direct message ``n`` to ``q`` (they share a
      domain, since the path is a cycle), then starts the relay chain
      ``m1: p→p1``, ``m2: p1→p2``, ..., ``mc: pi→q``;
    - ``q`` receives the end of the chain *before* ``n``.

    ``n ≺ m1 ≺ ... ≺ mc`` (rules 1 and 2 of §4.2), so receiving ``mc``
    before ``n`` violates causality globally; yet no single domain sees both
    ``n`` and the entire chain, so every per-domain restriction is clean.

    Returns:
        ``(trace, n, chain)`` — the full trace, the violated direct message,
        and the relay chain, ready for the checkers.

    Raises:
        TopologyError: if ``path`` is not a §4.2 cycle in ``membership``.
    """
    if not is_cycle(path, membership):
        raise TopologyError(
            f"{path!r} is not a cycle of the given membership; "
            "build_violation_trace needs a genuine §4.2 cycle"
        )
    source, target = path[0], path[-1]
    direct = Message(("violation", "n"), source, target)
    relay_messages = tuple(
        Message(("violation", "m", index), path[index], path[index + 1])
        for index in range(len(path) - 1)
    )
    chain = Chain(relay_messages)

    histories: Dict[Hashable, List[Tuple[EventKind, Message]]] = {
        process: [] for process in path
    }
    histories[source].append((EventKind.SEND, direct))
    histories[source].append((EventKind.SEND, relay_messages[0]))
    for index in range(1, len(relay_messages)):
        relay = path[index]
        histories[relay].append((EventKind.RECEIVE, relay_messages[index - 1]))
        histories[relay].append((EventKind.SEND, relay_messages[index]))
    histories[target].append((EventKind.RECEIVE, relay_messages[-1]))
    histories[target].append((EventKind.RECEIVE, direct))

    trace = Trace.from_histories(histories)
    return trace, direct, chain
