"""Process paths and message chains (§4.2).

Paths live on the *membership* structure (which process is in which domain);
chains live on a *trace*. The two meet through ``Chain.path()``: the path
associated with a chain, which is what the minimality / directness / cycle
definitions apply to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.causality.message import Message
from repro.causality.trace import Trace
from repro.errors import TraceError, TopologyError


class Membership:
    """The ``R ⊆ P × D`` distribution of processes among domains (§4.2).

    A process may belong to several domains — such processes are the causal
    router-servers of §4.1.
    """

    def __init__(self, domains: Dict[Hashable, Iterable[Hashable]]):
        """``domains`` maps each domain identifier to its member processes."""
        self._domains: Dict[Hashable, FrozenSet[Hashable]] = {}
        self._of_process: Dict[Hashable, Set[Hashable]] = {}
        for domain, members in domains.items():
            member_set = frozenset(members)
            if not member_set:
                raise TopologyError(f"domain {domain!r} has no members")
            self._domains[domain] = member_set
            for process in member_set:
                self._of_process.setdefault(process, set()).add(domain)

    @property
    def domains(self) -> List[Hashable]:
        return list(self._domains)

    @property
    def processes(self) -> List[Hashable]:
        return list(self._of_process)

    def members(self, domain: Hashable) -> FrozenSet[Hashable]:
        try:
            return self._domains[domain]
        except KeyError:
            raise TopologyError(f"unknown domain {domain!r}") from None

    def domains_of(self, process: Hashable) -> FrozenSet[Hashable]:
        return frozenset(self._of_process.get(process, ()))

    def common_domains(
        self, first: Hashable, second: Hashable
    ) -> FrozenSet[Hashable]:
        """Domains containing both processes (non-empty iff they can exchange
        messages directly, since messages are intra-domain)."""
        return self.domains_of(first) & self.domains_of(second)

    def share_domain(self, first: Hashable, second: Hashable) -> bool:
        return bool(self.common_domains(first, second))

    def routers(self) -> List[Hashable]:
        """Processes belonging to two or more domains (§4.1's causal
        router-servers)."""
        return [
            process
            for process, domains in self._of_process.items()
            if len(domains) >= 2
        ]

    def domain_messages(self, trace: Trace, domain: Hashable) -> List[Message]:
        """The messages of ``trace`` with source and destination in ``domain``
        — the restriction set used by "respects causality in d"."""
        members = self.members(domain)
        return [
            message
            for message in trace.messages
            if message.src in members and message.dst in members
        ]

    def __repr__(self) -> str:
        return (
            f"Membership(domains={len(self._domains)}, "
            f"processes={len(self._of_process)})"
        )


# ----------------------------------------------------------------------
# Paths (§4.2)
# ----------------------------------------------------------------------


def is_path(processes: Sequence[Hashable], membership: Membership) -> bool:
    """A nonempty sequence is a path iff consecutive processes share a domain."""
    if not processes:
        return False
    return all(
        membership.share_domain(processes[i], processes[i + 1])
        for i in range(len(processes) - 1)
    )


def is_direct_path(processes: Sequence[Hashable], membership: Membership) -> bool:
    """Direct path: a path in which all processes are different (no loops)."""
    return is_path(processes, membership) and len(set(processes)) == len(processes)


def is_minimal_path(processes: Sequence[Hashable], membership: Membership) -> bool:
    """Minimal path: direct, and never "lingers" in a domain —
    non-consecutive processes share no domain (``i+1 < j ⇒ no common d``)."""
    if not is_direct_path(processes, membership):
        return False
    count = len(processes)
    return all(
        not membership.share_domain(processes[i], processes[j])
        for i in range(count)
        for j in range(i + 2, count)
    )


def is_cycle(processes: Sequence[Hashable], membership: Membership) -> bool:
    """§4.2 cycle: a direct path whose source and destination share a domain,
    while no single domain includes every process of the path."""
    if len(processes) < 2:
        return False
    if not is_direct_path(processes, membership):
        return False
    if not membership.share_domain(processes[0], processes[-1]):
        return False
    all_processes = set(processes)
    return not any(
        all_processes <= membership.members(domain)
        for domain in membership.domains
    )


# ----------------------------------------------------------------------
# Chains (§4.2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Chain:
    """A message chain: each message (after the first) is sent by the
    receiver of the previous one, after receiving it.

    Chains are the paper's model of *indirect* communication across domains:
    a virtual message from ``src(m1)`` to ``dst(mk)``.
    """

    messages: Tuple[Message, ...]

    def __post_init__(self):
        if not self.messages:
            raise TraceError("a chain must contain at least one message")
        for first, second in zip(self.messages, self.messages[1:]):
            if first.dst != second.src:
                raise TraceError(
                    f"not a chain: {first!r} is received by {first.dst!r} "
                    f"but {second!r} is sent by {second.src!r}"
                )

    @classmethod
    def of(cls, *messages: Message) -> "Chain":
        return cls(tuple(messages))

    @property
    def source(self) -> Hashable:
        return self.messages[0].src

    @property
    def destination(self) -> Hashable:
        return self.messages[-1].dst

    def __len__(self) -> int:
        return len(self.messages)

    def path(self) -> Tuple[Hashable, ...]:
        """The associated process path ``(src(m1), ..., src(mk), dst(mk))``."""
        return tuple(m.src for m in self.messages) + (self.destination,)

    def is_valid_in(self, trace: Trace) -> bool:
        """Check the local-order side condition ``mi <p mi+1`` at each relay."""
        return all(
            trace.locally_before(first.dst, first, second)
            for first, second in zip(self.messages, self.messages[1:])
        )

    def is_direct(self, membership: Membership) -> bool:
        return is_direct_path(self.path(), membership)

    def is_minimal(self, membership: Membership) -> bool:
        return is_minimal_path(self.path(), membership)

    def __repr__(self) -> str:
        route = " -> ".join(repr(p) for p in self.path())
        return f"Chain({route}; {len(self.messages)} messages)"


def reduce_to_direct_chain(chain: Chain, trace: Trace) -> Chain:
    """Lemma 1's construction: from any chain with ``source ≠ destination``,
    obtain a *direct* chain with the same endpoints whose first message is
    sent no earlier than the original's and whose last is received no later.

    The construction mirrors the proof: while the associated path repeats a
    process (``p_i = p_j``, ``i < j``), splice the chain around the repeat
    and recurse.
    """
    if chain.source == chain.destination:
        raise TraceError("Lemma 1 requires distinct source and destination")
    messages = list(chain.messages)
    while True:
        path = [m.src for m in messages] + [messages[-1].dst]
        seen: Dict[Hashable, int] = {}
        repeat: Tuple[int, int] = ()
        for index, process in enumerate(path):
            if process in seen:
                repeat = (seen[process], index)
                break
            seen[process] = index
        if not repeat:
            reduced = Chain(tuple(messages))
            if not reduced.is_valid_in(trace):
                raise TraceError(
                    "Lemma 1 reduction produced an invalid chain; "
                    "the input trace is not correct"
                )
            return reduced
        i, j = repeat
        if i == 0 and j == len(path) - 1:
            # p = q, excluded by the precondition; unreachable on valid input.
            raise TraceError("chain source equals destination after reduction")
        if i == 0:
            messages = messages[j:]
        elif j == len(path) - 1:
            messages = messages[:i]
        else:
            messages = messages[:i] + messages[j:]
