"""Messages as §4.2 defines them.

A computation is a set of messages ``M = {m1, ..., mq}``; each message has a
sender ``src(m)`` and a *different* receiver ``dst(m)``. Identity matters
(the same (src, dst) pair exchanges many messages), so every message carries
a unique ``mid``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import TraceError

_mid_counter = itertools.count()


def fresh_mid() -> int:
    """Allocate a process-wide unique message identifier.

    Only convenience constructors use this; traces replayed from the MOM
    carry the MOM's own identifiers.
    """
    return next(_mid_counter)


@dataclass(frozen=True)
class Message:
    """An application-level message from ``src`` to ``dst``.

    Attributes:
        mid: unique identifier (unique within one trace).
        src: sending process.
        dst: receiving process; must differ from ``src`` (§4.2).
        payload: opaque application data, ignored by all causality machinery
            but handy when a trace doubles as a debugging artifact.
    """

    mid: Hashable
    src: Hashable
    dst: Hashable
    payload: Any = field(default=None, compare=False)

    def __post_init__(self):
        if self.src == self.dst:
            raise TraceError(
                f"message {self.mid!r}: src and dst must differ "
                f"(both {self.src!r}); §4.2 requires distinct endpoints"
            )

    @classmethod
    def between(cls, src: Hashable, dst: Hashable, payload: Any = None) -> "Message":
        """Create a message with a fresh auto-allocated ``mid``."""
        return cls(fresh_mid(), src, dst, payload)

    def __repr__(self) -> str:
        return f"Message({self.mid!r}: {self.src!r}->{self.dst!r})"
