"""Virtual traces (§4.2, Figure 3).

A virtual trace collapses selected minimal chains of a real trace into
single *virtual messages* between processes of different domains. The
selected chains must not "cross over": if ``mi`` and ``mi+1`` are
consecutive in a chain, the relaying process must not send a message of
another selected chain between receiving ``mi`` and sending ``mi+1``.

The theorem (§4.3) is stated over virtual traces: any virtual trace
associated with a correct trace that respects causality per-domain respects
causality globally — iff the domain graph is acyclic.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.causality.chains import Chain, Membership
from repro.causality.message import Message
from repro.causality.trace import Event, EventKind, Trace
from repro.errors import TraceError


def chains_cross_over(first: Chain, second: Chain, trace: Trace) -> bool:
    """Does ``second`` violate the no-crossover condition against ``first``?

    True iff some message of ``second`` is sent by a relay of ``first``
    strictly between that relay's receive of ``m_i`` and send of ``m_{i+1}``
    (Figure 3(a)). The test is asymmetric; the virtual-trace validator
    checks both directions.
    """
    for early, late in zip(first.messages, first.messages[1:]):
        relay = early.dst
        low = trace.local_index(relay, early)
        high = trace.local_index(relay, late)
        for message in second.messages:
            if message.src != relay:
                continue
            position = trace.local_index(relay, message)
            if low < position < high:
                return True
    return False


class VirtualTrace:
    """A real trace plus a set of non-crossing minimal chains, each viewed
    as one virtual message.

    The derived trace (:meth:`derive`) replaces each chain by a direct
    message from the chain's source to its destination — placed, in the
    local orders, where the chain's first send and last receive sat — and
    drops the chain's interior events. Standard checkers then apply to the
    derived trace; in particular "respects causality globally" for the
    virtual trace means :meth:`derive` followed by the usual check.
    """

    def __init__(
        self,
        trace: Trace,
        chains: Sequence[Chain],
        membership: Optional[Membership] = None,
    ):
        """Validate and freeze a virtual trace.

        Args:
            trace: the underlying real trace.
            chains: the chain set ``C``; every real message may appear in at
                most one chain, each chain must be locally valid in
                ``trace``, and no two chains may cross over.
            membership: when provided, each chain is additionally required
                to be *minimal* (§4.2's definition needs the domain
                structure; omit for purely structural uses).

        Raises:
            TraceError: on any validation failure.
        """
        self._trace = trace
        self._chains = tuple(chains)
        used: Set[Hashable] = set()
        for chain in self._chains:
            if not chain.is_valid_in(trace):
                raise TraceError(f"{chain!r} is not a chain of the given trace")
            if membership is not None and not chain.is_minimal(membership):
                raise TraceError(f"{chain!r} is not minimal in the given domains")
            for message in chain.messages:
                if message.mid in used:
                    raise TraceError(
                        f"message {message.mid!r} appears in two chains"
                    )
                used.add(message.mid)
        for first, second in itertools.permutations(self._chains, 2):
            if chains_cross_over(first, second, trace):
                raise TraceError(
                    f"chains cross over (Figure 3a): {first!r} / {second!r}"
                )
        self._chain_mids = used

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def chains(self) -> Tuple[Chain, ...]:
        return self._chains

    def derive(self) -> Trace:
        """The derived trace in which each chain is one virtual message.

        Virtual messages get identifiers ``("virtual", k)`` for the k-th
        chain; untouched real messages keep theirs.
        """
        starts: Dict[Tuple[Hashable, Hashable], Message] = {}
        ends: Dict[Tuple[Hashable, Hashable], Message] = {}
        for index, chain in enumerate(self._chains):
            virtual = Message(
                ("virtual", index),
                chain.source,
                chain.destination,
                payload=chain,
            )
            first, last = chain.messages[0], chain.messages[-1]
            starts[(first.src, first.mid)] = virtual
            ends[(last.dst, last.mid)] = virtual

        histories: Dict[Hashable, List[Tuple[EventKind, Message]]] = {}
        for process in self._trace.processes:
            local: List[Tuple[EventKind, Message]] = []
            for event in self._trace.events_of(process):
                mid = event.message.mid
                key = (process, mid)
                if event.kind is EventKind.SEND and key in starts:
                    local.append((EventKind.SEND, starts[key]))
                elif event.kind is EventKind.RECEIVE and key in ends:
                    local.append((EventKind.RECEIVE, ends[key]))
                elif mid in self._chain_mids:
                    continue
                else:
                    local.append((event.kind, event.message))
            histories[process] = local
        return Trace.from_histories(histories)

    def __repr__(self) -> str:
        return f"VirtualTrace(chains={len(self._chains)}, over {self._trace!r})"
