"""The causal-precedence relation ``≺`` on messages (§4.2).

``m ≺ m'`` iff one of:

1. both sent by the same process ``p`` and ``m <p m'``;
2. ``m`` received by ``p``, which later sends ``m'`` (``m <p m'``);
3. transitivity through some message ``n``.

A trace is *correct* iff ``≺`` is a partial order (no two distinct messages
precede each other), and a correct trace *respects causality* iff every
process receives messages in an order that agrees with ``≺``.

The relation is materialized as a sparse DAG over messages: per process,
each send is linked to the next send (rule 1 via transitivity) and each
receive to the next send (rule 2 via transitivity). Reachability queries
then implement ``≺`` exactly, with memoized descendant sets.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.causality.message import Message
from repro.causality.trace import EventKind, Trace


class CausalOrder:
    """The ``≺`` relation derived from one trace, with query memoization."""

    def __init__(self, trace: Trace):
        self._trace = trace
        self._succ: Dict[Hashable, Set[Hashable]] = {}
        self._descendants: Dict[Hashable, Set[Hashable]] = {}
        self._cycle_witness: Optional[Tuple[Hashable, ...]] = None
        self._correct: Optional[bool] = None
        self._build()

    def _build(self) -> None:
        for process in self._trace.processes:
            history = self._trace.events_of(process)
            # Link every event's message to the next *send* at this process:
            # - send -> next send encodes rule 1 (chained, transitively full);
            # - receive -> next send encodes rule 2 (ditto).
            next_send_after: List[Optional[Hashable]] = [None] * len(history)
            upcoming: Optional[Hashable] = None
            for index in range(len(history) - 1, -1, -1):
                next_send_after[index] = upcoming
                if history[index].kind is EventKind.SEND:
                    upcoming = history[index].message.mid
            for index, event in enumerate(history):
                target = next_send_after[index]
                mid = event.message.mid
                self._succ.setdefault(mid, set())
                if target is not None:
                    self._succ[mid].add(target)

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def _descendants_of(self, mid: Hashable) -> Set[Hashable]:
        """All messages strictly causally after ``mid`` (memoized DFS).

        Safe on cyclic graphs (incorrect traces): a message on a ≺-cycle
        ends up in its own descendant set, which :meth:`is_correct` uses as
        the cycle detector.
        """
        cached = self._descendants.get(mid)
        if cached is not None:
            return cached
        seen: Set[Hashable] = set()
        stack = list(self._succ.get(mid, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            done = self._descendants.get(current)
            if done is not None:
                seen |= done
                continue
            stack.extend(self._succ.get(current, ()))
        self._descendants[mid] = seen
        return seen

    def precedes(self, first: Message, second: Message) -> bool:
        """The paper's ``first ≺ second``."""
        if first.mid == second.mid:
            return False
        return second.mid in self._descendants_of(first.mid)

    def concurrent(self, first: Message, second: Message) -> bool:
        """Neither message causally precedes the other."""
        return not self.precedes(first, second) and not self.precedes(second, first)

    # ------------------------------------------------------------------
    # Trace predicates
    # ------------------------------------------------------------------

    def is_correct(self) -> bool:
        """§4.2 correctness: ``≺`` is a partial order (antisymmetric).

        Equivalent to acyclicity of the precedence graph.
        """
        if self._correct is None:
            self._correct = all(
                message.mid not in self._descendants_of(message.mid)
                for message in self._trace.messages
            )
        return self._correct

    def delivery_violations(self) -> List[Tuple[Hashable, Message, Message]]:
        """All causal-delivery violations in the trace.

        Returns triples ``(process, earlier, later)`` where ``earlier ≺
        later`` yet ``process`` received ``later`` first. Empty iff the
        trace respects causality.
        """
        violations: List[Tuple[Hashable, Message, Message]] = []
        for process in self._trace.processes:
            received = self._trace.received_in_order(process)
            for i, first_received in enumerate(received):
                for later_received in received[i + 1 :]:
                    if self.precedes(later_received, first_received):
                        violations.append(
                            (process, later_received, first_received)
                        )
        return violations

    def respects_causality(self) -> bool:
        """§4.2: every process's receive order agrees with ``≺``."""
        return not self.delivery_violations()

    def __repr__(self) -> str:
        return f"CausalOrder(over {self._trace!r})"
