"""Graphviz (DOT) export of a trace's causal message graph.

``dot -Tsvg`` renders it into the picture papers put in figures: the
message-level DAG of ``≺`` (sends/receives as ports on process timelines
would need LaTeX; the message graph is what DOT does well). The domain
interconnection graph is exported by
:func:`repro.topology.dot.topology_to_dot` — it needs only the static
topology, which sits below this layer.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.causality.order import CausalOrder
from repro.causality.trace import Trace


def _quote(value: Hashable) -> str:
    text = str(value)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def trace_to_dot(trace: Trace, direct_only: bool = True) -> str:
    """The causal DAG of a trace's messages.

    Nodes are messages (labelled ``mid src→dst``); edges are causal
    precedence. With ``direct_only`` (default) only the covering relation
    is drawn — transitive edges clutter; without it the full ≺ is emitted.
    """
    order = CausalOrder(trace)
    messages = trace.messages
    lines: List[str] = [
        "digraph causality {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    for message in messages:
        label = f"{message.mid}\\n{message.src} -> {message.dst}"
        lines.append(f"  {_quote(message.mid)} [label={_quote(label)}];")
    pairs = [
        (a, b)
        for a in messages
        for b in messages
        if a.mid != b.mid and order.precedes(a, b)
    ]
    if direct_only:
        direct = []
        for a, b in pairs:
            if not any(
                order.precedes(a, c) and order.precedes(c, b)
                for c in messages
                if c.mid not in (a.mid, b.mid)
            ):
                direct.append((a, b))
        pairs = direct
    for a, b in pairs:
        lines.append(f"  {_quote(a.mid)} -> {_quote(b.mid)};")
    lines.append("}")
    return "\n".join(lines)
