"""Graphviz (DOT) exports: message graphs and domain graphs.

``dot -Tsvg`` renders these into the pictures papers put in figures:
the causal message graph of a trace (sends/receives as ports on process
timelines would need LaTeX; the message-level DAG is what DOT does well)
and the domain interconnection graph with router annotations.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.causality.order import CausalOrder
from repro.causality.trace import Trace
from repro.topology.domains import Topology
from repro.topology.graph import domain_graph


def _quote(value: Hashable) -> str:
    text = str(value)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def trace_to_dot(trace: Trace, direct_only: bool = True) -> str:
    """The causal DAG of a trace's messages.

    Nodes are messages (labelled ``mid src→dst``); edges are causal
    precedence. With ``direct_only`` (default) only the covering relation
    is drawn — transitive edges clutter; without it the full ≺ is emitted.
    """
    order = CausalOrder(trace)
    messages = trace.messages
    lines: List[str] = [
        "digraph causality {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    for message in messages:
        label = f"{message.mid}\\n{message.src} -> {message.dst}"
        lines.append(f"  {_quote(message.mid)} [label={_quote(label)}];")
    pairs = [
        (a, b)
        for a in messages
        for b in messages
        if a.mid != b.mid and order.precedes(a, b)
    ]
    if direct_only:
        direct = []
        for a, b in pairs:
            if not any(
                order.precedes(a, c) and order.precedes(c, b)
                for c in messages
                if c.mid not in (a.mid, b.mid)
            ):
                direct.append((a, b))
        pairs = direct
    for a, b in pairs:
        lines.append(f"  {_quote(a.mid)} -> {_quote(b.mid)};")
    lines.append("}")
    return "\n".join(lines)


def topology_to_dot(topology: Topology) -> str:
    """The §4.2 domain interconnection graph, with shared routers on the
    edges and member lists in the nodes."""
    graph = domain_graph(topology)
    lines: List[str] = [
        "graph domains {",
        "  layout=neato;",
        '  node [shape=ellipse, fontsize=11, fontname="sans-serif"];',
    ]
    for domain in topology.domains:
        members = ", ".join(
            f"S{s}{'*' if topology.is_router(s) else ''}"
            for s in domain.servers
        )
        label = f"{domain.domain_id}\\n{members}"
        lines.append(
            f"  {_quote(domain.domain_id)} [label={_quote(label)}];"
        )
    for first, second, data in sorted(graph.edges(data=True)):
        shared = ", ".join(f"S{s}" for s in data["shared"])
        lines.append(
            f"  {_quote(first)} -- {_quote(second)} "
            f"[label={_quote(shared)}, fontsize=9];"
        )
    lines.append("}")
    return "\n".join(lines)
