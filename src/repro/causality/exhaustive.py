"""Exhaustive interleaving exploration: small-scale model checking.

The randomized system tests sample network schedules; this module
*enumerates* them. Given a set of servers running the matrix-clock
protocol and a scripted workload (initial sends plus react-rules), it
explores every admissible order in which the network can present messages
to receivers — the hold-back queue decides delivery — and checks causal
delivery in every reachable execution.

State spaces explode fast, so this is for protocol-kernel validation at
3–5 servers and a handful of messages: exactly the regime where subtle
clock bugs (off-by-one in the RST condition, merge-before-check races)
live. The MOM's channel shares the clock implementation with this checker,
so exhaustive coverage here transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.causality.message import Message
from repro.causality.order import CausalOrder
from repro.causality.trace import Trace
from repro.clocks.base import CausalClock
from repro.clocks.matrix import MatrixClock
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Send:
    """A scripted send: ``src`` sends ``tag`` to ``dst``."""

    src: int
    dst: int
    tag: str


@dataclass
class ExplorationResult:
    """Outcome of an exhaustive run.

    Attributes:
        executions: completed executions (every message delivered).
        violations: executions whose trace broke causal delivery.
        deadlocks: executions that got stuck — undeliverable messages left
            in flight (a liveness bug: a correct clock never deadlocks on
            a loss-free network).
        witness: a violating (or, failing that, deadlocked) trace.
    """

    executions: int
    violations: int
    deadlocks: int
    witness: Optional[Trace]

    @property
    def all_causal(self) -> bool:
        return self.violations == 0 and self.deadlocks == 0


class _State:
    """One node of the execution tree (mutable; cloned on branching)."""

    def __init__(self, size: int, clock_cls: Type[CausalClock]):
        self.clocks = [clock_cls(size, i) for i in range(size)]
        self.in_flight: List[Tuple[int, object, Message]] = []
        self.events: List[Tuple[str, Message]] = []
        self.pending_sends: List[Send] = []

    def clone(self) -> "_State":
        other = _State.__new__(_State)
        other.clocks = [
            _restore_clock(type(clock), clock) for clock in self.clocks
        ]
        other.in_flight = list(self.in_flight)
        other.events = list(self.events)
        other.pending_sends = list(self.pending_sends)
        return other


def _restore_clock(clock_cls, clock) -> CausalClock:
    fresh = clock_cls(clock.size, clock.owner)
    fresh.restore(clock.snapshot())
    return fresh


def explore(
    size: int,
    initial_sends: Sequence[Send],
    react: Optional[Callable[[int, str], List[Send]]] = None,
    clock_cls: Type[CausalClock] = MatrixClock,
    max_executions: int = 200_000,
) -> ExplorationResult:
    """Enumerate every admissible delivery interleaving.

    Args:
        size: number of servers (keep small: 3–5).
        initial_sends: sends performed up front, in order, grouped by
            sender (a sender's sends happen in list order).
        react: optional ``(receiver, tag) -> [Send, ...]`` rule fired on
            each delivery, for relay scenarios; returned sends happen
            immediately at the receiver.
        clock_cls: which protocol to check (matrix or updates).
        max_executions: explosion guard.

    Returns:
        An :class:`ExplorationResult`; ``witness`` is a violating trace if
        any execution broke causal order.

    Raises:
        ConfigurationError: when the state space exceeds the guard.
    """
    state = _State(size, clock_cls)
    counter = {"mid": 0, "executions": 0, "violations": 0, "deadlocks": 0}
    witness: List[Optional[Trace]] = [None]

    def do_send(state: _State, send: Send) -> None:
        counter["mid"] += 1
        message = Message(counter["mid"], send.src, send.dst, payload=send.tag)
        stamp = state.clocks[send.src].prepare_send(send.dst)
        state.in_flight.append((send.dst, stamp, message))
        state.events.append(("send", message))

    for send in initial_sends:
        do_send(state, send)

    def finish(state: _State, deadlocked: bool) -> None:
        counter["executions"] += 1
        if counter["executions"] > max_executions:
            raise ConfigurationError(
                f"state space exceeds {max_executions} executions; "
                "shrink the scenario"
            )
        trace = _to_trace(state.events)
        order = CausalOrder(trace)
        violated = not order.respects_causality()
        if deadlocked:
            counter["deadlocks"] += 1
        if violated:
            counter["violations"] += 1
        if (violated or deadlocked) and witness[0] is None:
            witness[0] = trace

    def step(state: _State) -> None:
        deliverable = [
            index
            for index, (dst, stamp, message) in enumerate(state.in_flight)
            if state.clocks[dst].can_deliver(stamp)
        ]
        if not deliverable:
            finish(state, deadlocked=bool(state.in_flight))
            return
        for index in deliverable:
            branch = state.clone()
            dst, stamp, message = branch.in_flight.pop(index)
            branch.clocks[dst].deliver(stamp)
            branch.events.append(("receive", message))
            if react is not None:
                for send in react(dst, message.payload):
                    do_send_branch(branch, send)
            step(branch)

    def do_send_branch(branch: _State, send: Send) -> None:
        counter["mid"] += 1
        message = Message(counter["mid"], send.src, send.dst, payload=send.tag)
        stamp = branch.clocks[send.src].prepare_send(send.dst)
        branch.in_flight.append((send.dst, stamp, message))
        branch.events.append(("send", message))

    step(state)
    return ExplorationResult(
        executions=counter["executions"],
        violations=counter["violations"],
        deadlocks=counter["deadlocks"],
        witness=witness[0],
    )


def _to_trace(events: List[Tuple[str, Message]]) -> Trace:
    trace = Trace()
    for kind, message in events:
        if kind == "send":
            trace.record_send(message)
        else:
            trace.record_receive(message)
    return trace
