"""Traces: the global history of a computation (§4.2).

A trace is the set of send and receive events of a computation, organized as
one totally ordered event sequence per process — the local orders ``<p``.
Because ``src(m) ≠ dst(m)``, a given message touches a given process at most
once, so the local order on *events* induces a local order on *messages*
(the ``m <p m'`` of the paper) directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.causality.message import Message
from repro.errors import TraceError


class EventKind(enum.Enum):
    """The two event kinds of the model: message send and message receive."""

    SEND = "send"
    RECEIVE = "receive"


@dataclass(frozen=True)
class Event:
    """One event in a process's local history."""

    kind: EventKind
    process: Hashable
    message: Message

    def __repr__(self) -> str:
        return f"Event({self.kind.value} {self.message!r} @ {self.process!r})"


class Trace:
    """A mutable trace builder plus the read API used by the checkers.

    Events are recorded in per-process order via :meth:`record_send` and
    :meth:`record_receive`; the recording order *within each process* is the
    local order ``<p``. There is deliberately no global ordering — causal
    analysis only ever consults local orders and the message graph.
    """

    def __init__(self, strict: bool = True):
        self._strict = strict
        self._events: Dict[Hashable, List[Event]] = {}
        self._local_index: Dict[Tuple[Hashable, Hashable], int] = {}
        self._sent: Dict[Hashable, Message] = {}
        self._received: Set[Hashable] = set()
        self._messages: Dict[Hashable, Message] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_histories(
        cls,
        histories: Dict[Hashable, Iterable[Tuple[EventKind, Message]]],
    ) -> "Trace":
        """Build a trace from explicit per-process local histories.

        Unlike the incremental recorder, this constructor does not require
        sends to be presented before receives (there is no global order
        among processes to honour); consistency is validated afterwards.

        Args:
            histories: per process, its local sequence of
                ``(EventKind, Message)`` pairs, in local order.

        Raises:
            TraceError: if a message is sent twice, received twice,
                received without being sent, or recorded at the wrong
                process.
        """
        trace = cls()
        for process, local in histories.items():
            for kind, message in local:
                expected = message.src if kind is EventKind.SEND else message.dst
                if expected != process:
                    raise TraceError(
                        f"{kind.value} of {message!r} recorded at "
                        f"{process!r}, expected {expected!r}"
                    )
                if kind is EventKind.SEND:
                    if message.mid in trace._sent:
                        raise TraceError(f"message {message.mid!r} sent twice")
                    trace._sent[message.mid] = message
                    trace._messages[message.mid] = message
                else:
                    if message.mid in trace._received:
                        raise TraceError(
                            f"message {message.mid!r} received twice"
                        )
                    trace._received.add(message.mid)
                trace._append(process, Event(kind, process, message))
        missing = trace._received - set(trace._sent)
        if missing:
            raise TraceError(
                f"messages received but never sent: {sorted(missing, key=repr)!r}"
            )
        return trace

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_send(self, message: Message) -> Event:
        """Append the send event of ``message`` to ``src(message)``'s history."""
        if message.mid in self._sent:
            raise TraceError(f"message {message.mid!r} sent twice")
        event = Event(EventKind.SEND, message.src, message)
        self._append(message.src, event)
        self._sent[message.mid] = message
        self._messages[message.mid] = message
        return event

    def record_receive(self, message: Message) -> Event:
        """Append the receive event of ``message`` to ``dst(message)``'s history.

        The matching send must already have been recorded — the MOM records
        sends when the channel transmits, which (in any single run) is
        observed before the receive. A trace built with ``strict=False``
        (one shard's slice of a distributed run) skips that requirement:
        the send of a cross-shard message lives in *another* shard's trace,
        and the merged trace re-validates via :meth:`from_histories`.
        """
        if message.mid not in self._sent:
            if self._strict:
                raise TraceError(
                    f"message {message.mid!r} received but never sent in "
                    "this trace"
                )
            self._messages.setdefault(message.mid, message)
        else:
            known = self._sent[message.mid]
            if known != message:
                raise TraceError(
                    f"message {message.mid!r} received with different "
                    f"endpoints than sent ({known!r} vs {message!r})"
                )
        if message.mid in self._received:
            raise TraceError(f"message {message.mid!r} received twice")
        event = Event(EventKind.RECEIVE, message.dst, message)
        self._append(message.dst, event)
        self._received.add(message.mid)
        return event

    def _append(self, process: Hashable, event: Event) -> None:
        history = self._events.setdefault(process, [])
        key = (process, event.message.mid)
        if key in self._local_index:
            raise TraceError(
                f"message {event.message.mid!r} already has an event at "
                f"process {process!r}; a message touches a process at most once"
            )
        self._local_index[key] = len(history)
        history.append(event)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def processes(self) -> List[Hashable]:
        """Processes with at least one event, in first-appearance order."""
        return list(self._events)

    @property
    def messages(self) -> List[Message]:
        """Every message with at least a send event, in send-recording order."""
        return list(self._messages.values())

    def message(self, mid: Hashable) -> Message:
        """Look a message up by identifier."""
        try:
            return self._messages[mid]
        except KeyError:
            raise TraceError(f"unknown message id {mid!r}") from None

    def events_of(self, process: Hashable) -> List[Event]:
        """The local history of ``process`` (empty if it has no events)."""
        return list(self._events.get(process, []))

    def was_received(self, message: Message) -> bool:
        """True iff the receive event of ``message`` was recorded."""
        return message.mid in self._received

    def local_index(self, process: Hashable, message: Message) -> int:
        """Position of ``message``'s (unique) event in ``process``'s history.

        Raises :class:`TraceError` if the message has no event at that
        process.
        """
        try:
            return self._local_index[(process, message.mid)]
        except KeyError:
            raise TraceError(
                f"message {message.mid!r} has no event at process {process!r}"
            ) from None

    def locally_before(
        self, process: Hashable, first: Message, second: Message
    ) -> bool:
        """The paper's ``first <p second``: does ``process`` see ``first``
        (send or receive) strictly before ``second``?"""
        return self.local_index(process, first) < self.local_index(process, second)

    def received_in_order(self, process: Hashable) -> List[Message]:
        """Messages received by ``process``, in local receive order."""
        return [
            event.message
            for event in self._events.get(process, [])
            if event.kind is EventKind.RECEIVE
        ]

    def sent_in_order(self, process: Hashable) -> List[Message]:
        """Messages sent by ``process``, in local send order."""
        return [
            event.message
            for event in self._events.get(process, [])
            if event.kind is EventKind.SEND
        ]

    def __len__(self) -> int:
        """Total number of recorded events."""
        return sum(len(history) for history in self._events.values())

    # ------------------------------------------------------------------
    # Derived traces
    # ------------------------------------------------------------------

    def restrict(self, keep: Iterable[Message]) -> "Trace":
        """The restriction of the trace to a message subset (§4.2).

        Used to evaluate "respects causality *in domain d*": restrict to the
        messages with source and destination in ``d``, preserving each
        process's relative event order, then check the restricted trace.
        """
        kept_ids = {m.mid for m in keep}
        unknown = kept_ids - set(self._messages)
        if unknown:
            raise TraceError(f"cannot restrict to unknown messages: {unknown!r}")
        restricted = Trace()
        for process, history in self._events.items():
            for event in history:
                if event.message.mid in kept_ids:
                    restricted._append(process, event)
        restricted._messages = {
            mid: msg for mid, msg in self._messages.items() if mid in kept_ids
        }
        restricted._sent = {
            mid: msg for mid, msg in self._sent.items() if mid in kept_ids
        }
        restricted._received = self._received & kept_ids
        return restricted

    def __repr__(self) -> str:
        return (
            f"Trace(processes={len(self._events)}, "
            f"messages={len(self._messages)}, events={len(self)})"
        )
