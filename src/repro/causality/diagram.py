"""ASCII space-time diagrams and timelines for traces.

Causality bugs are miserable to read out of logs; a Lamport-style
space-time diagram makes them obvious. :func:`render_space_time` draws one
lane per process with every event in its own column, ordered by a
deterministic linearization that respects each local order and every
send→receive edge; :func:`render_timeline` prints the same linearization
as a numbered list. Both work on any :class:`~repro.causality.trace.Trace`
— including the app/hop traces a MessageBus records — and power the
``describe()`` of violation reports in examples and test failures.

Example output for the Figure-4 violation (ring of three domains)::

    r0: [n>r2]--[m0>r1]-----------------
    r1: --------[>m0]--[m1>r2]----------
    r2: -----------------[>m1]--[>n]----

The receive of ``n`` after the receive of ``m1`` on r2's lane *is* the
causality break.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.causality.trace import Event, EventKind, Trace
from repro.errors import TraceError


def _linearize(trace: Trace) -> List[Event]:
    """A deterministic topological order of all events.

    Constraints: each process's local order, and send-before-receive for
    every message. Kahn's algorithm with FIFO tie-breaking on insertion
    order keeps the result stable across runs.
    """
    events: List[Event] = []
    for process in trace.processes:
        events.extend(trace.events_of(process))

    indegree: Dict[int, int] = {}
    successors: Dict[int, List[int]] = {i: [] for i in range(len(events))}
    index_of: Dict[Tuple[Hashable, Hashable, EventKind], int] = {}
    for i, event in enumerate(events):
        indegree[i] = 0
        index_of[(event.process, event.message.mid, event.kind)] = i

    def add_edge(earlier: int, later: int) -> None:
        successors[earlier].append(later)
        indegree[later] += 1

    position = 0
    for process in trace.processes:
        history = trace.events_of(process)
        for first, second in zip(history, history[1:]):
            add_edge(
                index_of[(process, first.message.mid, first.kind)],
                index_of[(process, second.message.mid, second.kind)],
            )
    for i, event in enumerate(events):
        if event.kind is EventKind.RECEIVE:
            send_key = (event.message.src, event.message.mid, EventKind.SEND)
            send_index = index_of.get(send_key)
            if send_index is not None:
                add_edge(send_index, i)

    queue = deque(i for i in range(len(events)) if indegree[i] == 0)
    order: List[Event] = []
    while queue:
        i = queue.popleft()
        order.append(events[i])
        for successor in successors[i]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                queue.append(successor)
    if len(order) != len(events):
        raise TraceError(
            "trace has cyclic event dependencies and cannot be linearized "
            "(a receive precedes its own send through local orders)"
        )
    return order


def _default_label(event: Event) -> str:
    mid = event.message.mid
    text = mid if isinstance(mid, str) else repr(mid)
    if isinstance(mid, tuple):
        text = "/".join(str(part) for part in mid)
    if event.kind is EventKind.SEND:
        return f"[{text}>{event.message.dst}]"
    return f"[>{text}]"


def render_space_time(
    trace: Trace,
    label: Optional[Callable[[Event], str]] = None,
) -> str:
    """One lane per process, one column per event, dashes as idle time.

    Args:
        trace: any trace (must be linearizable, i.e. structurally sane).
        label: event → marker text; the default shows ``[mid>dst]`` for
            sends and ``[>mid]`` for receives.
    """
    label = label or _default_label
    order = _linearize(trace)
    processes = trace.processes
    name_width = max((len(str(p)) for p in processes), default=0)

    columns: List[Tuple[Event, str]] = [(event, label(event)) for event in order]
    lanes: Dict[Hashable, List[str]] = {p: [] for p in processes}
    for event, marker in columns:
        width = len(marker)
        for process in processes:
            if process == event.process:
                lanes[process].append(marker)
            else:
                lanes[process].append("-" * width)
    lines = []
    for process in processes:
        body = "--".join(lanes[process]) if lanes[process] else ""
        lines.append(f"{str(process).rjust(name_width)}: {body}")
    return "\n".join(lines)


def render_timeline(trace: Trace) -> str:
    """The linearization as a numbered, human-readable event list."""
    order = _linearize(trace)
    lines = []
    for number, event in enumerate(order, start=1):
        message = event.message
        if event.kind is EventKind.SEND:
            action = f"{message.src!r} sends {message.mid!r} to {message.dst!r}"
        else:
            action = f"{message.dst!r} receives {message.mid!r} from {message.src!r}"
        lines.append(f"{number:4d}. {action}")
    return "\n".join(lines)
