"""Trace export/import: JSON-lines artifacts for offline analysis.

Experiments worth keeping produce traces worth keeping. The JSONL format
is one event per line, in a linearization that respects all local orders
and send→receive edges, so a file replays cleanly through
:func:`load_trace` (and is halfway readable in a pager). Message ids,
process ids and payloads survive as long as they are JSON-representable;
tuples round-trip as tagged lists.

Format, one of::

    {"kind": "send",    "mid": ..., "src": ..., "dst": ..., "payload": ...}
    {"kind": "receive", "mid": ..., "src": ..., "dst": ...}
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable, List, Union

from repro.causality.diagram import _linearize
from repro.causality.message import Message
from repro.causality.trace import EventKind, Trace
from repro.errors import TraceError

_TUPLE_TAG = "__tuple__"


def _encode(value: Any) -> Any:
    """JSON-encode with tuple tagging (mids are often tuples)."""
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode(item) for item in value]}
    if isinstance(value, list):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode(item) for item in value[_TUPLE_TAG])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def dump_trace(trace: Trace, stream: IO[str]) -> int:
    """Write ``trace`` to ``stream`` as JSONL; returns the line count.

    Events are emitted in a valid linearization, so the file can be read
    back with the incremental recorder (sends always precede receives).
    """
    count = 0
    for event in _linearize(trace):
        message = event.message
        record = {
            "kind": event.kind.value,
            "mid": _encode(message.mid),
            "src": _encode(message.src),
            "dst": _encode(message.dst),
        }
        if event.kind is EventKind.SEND:
            record["payload"] = _encode(message.payload)
        try:
            line = json.dumps(record)
        except TypeError:
            # non-JSON payloads degrade to their repr; ids must serialize
            record["payload"] = repr(record.get("payload"))
            try:
                line = json.dumps(record)
            except TypeError as error:
                raise TraceError(
                    f"message {message.mid!r} has non-JSON identifiers: {error}"
                ) from None
        stream.write(line + "\n")
        count += 1
    return count


def load_trace(stream: Union[IO[str], Iterable[str]]) -> Trace:
    """Rebuild a trace from JSONL produced by :func:`dump_trace`."""
    trace = Trace()
    messages = {}
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceError(
                f"line {line_number}: not valid JSON ({error})"
            ) from None
        try:
            kind = record["kind"]
            mid = _decode(record["mid"])
            src = _decode(record["src"])
            dst = _decode(record["dst"])
        except KeyError as missing:
            raise TraceError(
                f"line {line_number}: missing field {missing}"
            ) from None
        key = _freeze(mid)
        if kind == EventKind.SEND.value:
            message = Message(mid, src, dst, payload=_decode(record.get("payload")))
            messages[key] = message
            trace.record_send(message)
        elif kind == EventKind.RECEIVE.value:
            message = messages.get(key)
            if message is None:
                raise TraceError(
                    f"line {line_number}: receive of unknown message {mid!r}"
                )
            trace.record_receive(message)
        else:
            raise TraceError(f"line {line_number}: unknown kind {kind!r}")
    return trace


def _freeze(value: Any) -> Any:
    """A hashable key for possibly-nested mids."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value
