"""repro — a reproduction of *Preserving Causality in a Scalable
Message-Oriented Middleware* (Laumay, Bruneton, Bellissard, Krakowiak;
Middleware 2001).

The package rebuilds the paper's whole stack:

- :mod:`repro.clocks` — Lamport / vector / matrix clocks and the
  Appendix-A "Updates" delta algorithm;
- :mod:`repro.causality` — the §4.2 formalism (traces, chains, virtual
  traces) with executable checkers and the Figure-4 counterexample;
- :mod:`repro.topology` — domains of causality, acyclicity validation,
  routing, the Figure-9 organizations, the §6.2 cost model and the §7
  partitioning heuristics;
- :mod:`repro.simulation` — the deterministic discrete-event substrate
  standing in for the paper's testbed;
- :mod:`repro.mom` — the AAA MOM: agent servers (Engine + Channel),
  persistent agents, atomic reactions, causal router-servers, crash
  recovery;
- :mod:`repro.pubsub` — topic/queue destinations on top of the agent API;
- :mod:`repro.bench` — the harness regenerating every figure of §6.

Quickstart::

    from repro import BusConfig, MessageBus, EchoAgent, bus_topology

    topo = bus_topology(16)               # 16 servers, ~4 domains + backbone
    mom = MessageBus(BusConfig(topology=topo))
    echo = mom.deploy(EchoAgent(), server_id=14)
    ...                                   # deploy your agents, start, run
    mom.start(); mom.run_until_idle()
    assert mom.check_app_causality().respects_causality
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    TopologyError,
    CyclicDomainGraphError,
    RoutingError,
    ClockError,
    CausalityViolationError,
    TraceError,
    SimulationError,
    TransportError,
    ServerCrashedError,
    PersistenceError,
    AgentError,
)
from repro.clocks import (
    LamportClock,
    VectorClock,
    CausalBroadcastClock,
    MatrixClock,
    UpdatesClock,
)
from repro.causality import (
    Message,
    Trace,
    Membership,
    Chain,
    CausalOrder,
    check_trace,
    check_all_domains,
    find_cycle_path,
    build_violation_trace,
)
from repro.topology import (
    Domain,
    Topology,
    single_domain,
    daisy,
    tree,
    ring,
    from_domain_map,
    validate_topology,
    build_routing_tables,
)
from repro.topology import bus as bus_topology
from repro.simulation import CostModel, Simulator
from repro.mom import (
    Agent,
    ReactionContext,
    FunctionAgent,
    EchoAgent,
    AgentId,
    BusConfig,
    MessageBus,
    FailureInjector,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "CyclicDomainGraphError",
    "RoutingError",
    "ClockError",
    "CausalityViolationError",
    "TraceError",
    "SimulationError",
    "TransportError",
    "ServerCrashedError",
    "PersistenceError",
    "AgentError",
    "LamportClock",
    "VectorClock",
    "CausalBroadcastClock",
    "MatrixClock",
    "UpdatesClock",
    "Message",
    "Trace",
    "Membership",
    "Chain",
    "CausalOrder",
    "check_trace",
    "check_all_domains",
    "find_cycle_path",
    "build_violation_trace",
    "Domain",
    "Topology",
    "single_domain",
    "bus_topology",
    "daisy",
    "tree",
    "ring",
    "from_domain_map",
    "validate_topology",
    "build_routing_tables",
    "CostModel",
    "Simulator",
    "Agent",
    "ReactionContext",
    "FunctionAgent",
    "EchoAgent",
    "AgentId",
    "BusConfig",
    "MessageBus",
    "FailureInjector",
    "__version__",
]
