"""Unit tests for domains, topologies and the §4 validity conditions."""

import pytest

from repro.errors import CyclicDomainGraphError, TopologyError
from repro.topology import (
    Domain,
    Topology,
    domain_graph,
    find_domain_cycle,
    from_domain_map,
    validate_topology,
)


class TestDomain:
    def test_local_and_global_ids_roundtrip(self):
        domain = Domain("D", (5, 2, 9))
        assert domain.local_id(2) == 1
        assert domain.global_id(1) == 2
        assert domain.size == 3

    def test_membership(self):
        domain = Domain("D", (1, 2))
        assert 1 in domain
        assert 3 not in domain

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Domain("D", ())

    def test_duplicate_member_rejected(self):
        with pytest.raises(TopologyError):
            Domain("D", (1, 1))

    def test_unknown_local_id_rejected(self):
        domain = Domain("D", (1, 2))
        with pytest.raises(TopologyError):
            domain.local_id(7)
        with pytest.raises(TopologyError):
            domain.global_id(5)


class TestTopology:
    def test_figure2_structure(self, figure2_topology):
        topo = figure2_topology
        assert topo.server_count == 8
        assert sorted(topo.routers) == [2, 4, 6]
        assert topo.is_router(2)
        assert not topo.is_router(0)

    def test_domains_of(self, figure2_topology):
        ids = [d.domain_id for d in figure2_topology.domains_of(2)]
        assert sorted(ids) == ["A", "D"]

    def test_shared_domain(self, figure2_topology):
        assert figure2_topology.shared_domain(0, 2).domain_id == "A"
        with pytest.raises(TopologyError):
            figure2_topology.shared_domain(0, 7)

    def test_server_ids_must_be_dense(self):
        with pytest.raises(TopologyError):
            Topology([Domain("D", (0, 2))])

    def test_duplicate_domain_id_rejected(self):
        with pytest.raises(TopologyError):
            Topology([Domain("D", (0, 1)), Domain("D", (1, 2))])

    def test_membership_projection(self, figure2_topology):
        membership = figure2_topology.membership()
        assert membership.share_domain(0, 2)
        assert sorted(membership.routers()) == [2, 4, 6]

    def test_describe_marks_routers(self, figure2_topology):
        text = figure2_topology.describe()
        assert "S2*" in text
        assert "S0," in text or "S0\n" in text or "S0 " in text or ": S0" in text


class TestValidation:
    def test_figure2_is_valid(self, figure2_topology):
        validate_topology(figure2_topology)

    def test_cycle_detected(self):
        cyclic = from_domain_map(
            {"d0": [0, 1], "d1": [1, 2], "d2": [2, 0]}
        )
        with pytest.raises(CyclicDomainGraphError) as info:
            validate_topology(cyclic)
        assert len(info.value.cycle) >= 3

    def test_two_domains_sharing_two_servers_rejected(self):
        """A multigraph 2-cycle: formally invisible to the simple domain
        graph but equally fatal (see graph.py's docstring)."""
        topology = from_domain_map({"d0": [0, 1, 2], "d1": [1, 2, 3]})
        cycle = find_domain_cycle(topology)
        assert cycle == ["d0", "d1"]
        with pytest.raises(CyclicDomainGraphError):
            validate_topology(topology)

    def test_nested_domain_rejected(self):
        topology = from_domain_map({"outer": [0, 1, 2], "inner": [0, 1]})
        with pytest.raises(TopologyError, match="nested"):
            validate_topology(topology)

    def test_disconnected_rejected(self):
        topology = from_domain_map({"d0": [0, 1], "d1": [2, 3]})
        with pytest.raises(TopologyError, match="disconnected"):
            validate_topology(topology)

    def test_acyclic_graph_reports_no_cycle(self, figure2_topology):
        assert find_domain_cycle(figure2_topology) is None

    def test_domain_graph_edges_carry_shared_servers(self, figure2_topology):
        graph = domain_graph(figure2_topology)
        assert graph.has_edge("A", "D")
        assert graph.edges["A", "D"]["shared"] == [2]
        assert not graph.has_edge("A", "B")
