"""The main theorem (§4.3), validated from both directions.

P1 ⇒ P2 (contrapositive, constructive): for cyclic domain structures, the
Figure-4(a) construction yields a correct trace that respects causality in
every domain yet violates it globally — both as a formal trace and end to
end through the MOM with validation disabled.

P2 ⇒ P1 (statistical): random workloads over random *acyclic* topologies,
under adversarial network jitter, always produce causally consistent app
traces. (Exhaustive proof is the paper's; these tests would catch any
implementation deviation.)
"""

import random

import pytest

from repro.causality import (
    build_violation_trace,
    check_all_domains,
    check_trace,
    find_cycle_path,
    Membership,
)
from repro.errors import CausalityViolationError, CyclicDomainGraphError
from repro.mom.agent import Agent, EchoAgent, FunctionAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.simulation.network import UniformLatency
from repro.topology.builders import bus as bus_topology
from repro.topology.builders import daisy, ring, tree, from_domain_map
from repro.topology.graph import validate_topology


class TestCounterexampleFormal:
    """P1 ⇒ P2 at the trace level."""

    @pytest.mark.parametrize("domain_count", [3, 4, 6])
    def test_ring_admits_violation(self, domain_count):
        routers = [f"r{i}" for i in range(domain_count)]
        domains = {}
        for i in range(domain_count):
            domains[f"d{i}"] = {routers[i], routers[(i + 1) % domain_count]}
        membership = Membership(domains)

        path = find_cycle_path(membership)
        assert path is not None, "ring must contain a §4.2 cycle"

        trace, direct, chain = build_violation_trace(path, membership)
        global_report = check_trace(trace)
        assert global_report.correct
        assert not global_report.respects_causality, (
            "the Figure-4(a) trace must violate global causality"
        )
        domain_reports = check_all_domains(trace, membership)
        assert all(r.respects_causality for r in domain_reports.values()), (
            "every per-domain restriction must be clean"
        )

    def test_acyclic_membership_has_no_cycle_path(self):
        membership = Membership(
            {
                "A": {"S1", "S2", "S3"},
                "B": {"S4", "S5"},
                "C": {"S7", "S8"},
                "D": {"S3", "S5", "S6", "S7"},
            }
        )
        assert find_cycle_path(membership) is None

    def test_violation_report_raises_with_witness(self):
        membership = Membership(
            {"d0": {"a", "c"}, "d1": {"a", "b"}, "d2": {"b", "c"}}
        )
        path = find_cycle_path(membership)
        trace, _, _ = build_violation_trace(path, membership)
        report = check_trace(trace)
        with pytest.raises(CausalityViolationError):
            report.raise_on_violation()


class _RelayAgent(Agent):
    """Forwards any received payload to a fixed next agent."""

    def __init__(self):
        super().__init__()
        self.next_hop = None

    def react(self, ctx, sender, payload):
        if self.next_hop is not None:
            ctx.send(self.next_hop, payload)


class TestCounterexampleEndToEnd:
    """P1 ⇒ P2 in the running MOM: boot a ring topology (validation off),
    race a relayed chain against a delayed direct message, and watch the
    checker catch the real violation."""

    def test_mom_on_cyclic_topology_violates_causality(self):
        # ring of 3 domains over 3 router servers:
        #   d0={0,1}, d1={1,2}, d2={2,0}
        topology = from_domain_map(
            {"d0": [0, 1], "d1": [1, 2], "d2": [2, 0]}
        )
        with pytest.raises(CyclicDomainGraphError):
            validate_topology(topology)

        config = BusConfig(topology=topology, validate=False, seed=4)
        mom = MessageBus(config)

        sink_order = []
        sink = FunctionAgent(lambda ctx, s, p: sink_order.append(p))
        sink_id = mom.deploy(sink, 2)          # q = server 2

        relay = _RelayAgent()
        relay_id = mom.deploy(relay, 1)        # intermediate server 1
        relay.next_hop = sink_id

        starter = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(sink_id, "n-direct")      # via d2 (0-2 share d2)
            ctx.send(relay_id, "m-chain")      # via d0, relayed over d1

        starter.on_boot = boot
        mom.deploy(starter, 0)

        # Delay the direct route so the chain wins the race.
        mom.network.partition(0, 2)
        mom.sim.schedule_at(500.0, mom.network.heal, 0, 2)

        mom.start()
        mom.run_until_idle()

        assert sink_order == ["m-chain", "n-direct"], (
            "the relayed message must arrive first for the anomaly"
        )
        report = mom.check_app_causality()
        assert not report.respects_causality, (
            "cyclic domain graph must let the MOM violate global causality"
        )

    def test_same_schedule_on_acyclic_topology_is_safe(self):
        """Identical race, but server 0 and 2 share a domain *with* 1 in a
        tree-shaped structure: the direct message routes through the same
        domains, and causal order holds despite the partition delay."""
        topology = from_domain_map({"d0": [0, 1], "d1": [1, 2]})
        validate_topology(topology)
        config = BusConfig(topology=topology, seed=4)
        mom = MessageBus(config)

        sink_order = []
        sink = FunctionAgent(lambda ctx, s, p: sink_order.append(p))
        sink_id = mom.deploy(sink, 2)
        relay = _RelayAgent()
        relay_id = mom.deploy(relay, 1)
        relay.next_hop = sink_id
        starter = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(sink_id, "n-direct")
            ctx.send(relay_id, "m-chain")

        starter.on_boot = boot
        mom.deploy(starter, 0)
        # The 1→2 hop is the only way into d1; delaying it cannot reorder
        # causally-related messages, but try anyway:
        mom.network.partition(1, 2)
        mom.sim.schedule_at(300.0, mom.network.heal, 1, 2)
        mom.start()
        mom.run_until_idle()

        report = mom.check_app_causality()
        assert report.respects_causality
        assert sink_order[0] == "n-direct"


class _RandomTalker(Agent):
    """Sends `count` messages to random peers, each reaction forwarding a
    decremented hop counter — generates rich causal structure."""

    def __init__(self, peers, count, seed):
        super().__init__()
        self.peers = peers
        self.count = count
        self.seed = seed

    def on_boot(self, ctx):
        rng = random.Random(self.seed)
        for _ in range(self.count):
            target = rng.choice(self.peers)
            if target != ctx.my_id:
                ctx.send(target, 3)

    def react(self, ctx, sender, payload):
        if payload > 0:
            rng = random.Random(self.seed * 7919 + payload * 131 + sender.server)
            target = rng.choice(self.peers)
            if target != ctx.my_id:
                ctx.send(target, payload - 1)


def _run_random_workload(topology, seed):
    config = BusConfig(
        topology=topology,
        seed=seed,
        latency=UniformLatency(0.1, 25.0),  # aggressive reordering
        clock_algorithm="updates" if seed % 2 else "matrix",
    )
    mom = MessageBus(config)
    agent_ids = []
    talkers = []
    for server in topology.servers:
        talker = _RandomTalker([], count=3, seed=seed * 101 + server)
        agent_ids.append(mom.deploy(talker, server))
        talkers.append(talker)
    for talker in talkers:
        talker.peers = agent_ids
    mom.start()
    mom.run_until_idle()
    return mom


class TestP2ImpliesP1EndToEnd:
    """P2 ⇒ P1: random workloads on acyclic topologies never violate."""

    @pytest.mark.parametrize("seed", range(6))
    def test_bus_topology_random_workloads(self, seed):
        mom = _run_random_workload(bus_topology(12, 4), seed)
        assert mom.check_app_causality().respects_causality

    @pytest.mark.parametrize("seed", range(4))
    def test_daisy_topology_random_workloads(self, seed):
        mom = _run_random_workload(daisy(10, 4), seed)
        assert mom.check_app_causality().respects_causality

    @pytest.mark.parametrize("seed", range(4))
    def test_tree_topology_random_workloads(self, seed):
        mom = _run_random_workload(tree(13, fanout=2, domain_size=4), seed)
        assert mom.check_app_causality().respects_causality

    def test_figure2_topology_random_workload(self, figure2_topology):
        mom = _run_random_workload(figure2_topology, 42)
        assert mom.check_app_causality().respects_causality

    def test_per_domain_causality_holds_too(self):
        topology = bus_topology(12, 4)
        config = BusConfig(
            topology=topology,
            seed=7,
            latency=UniformLatency(0.1, 25.0),
            record_hop_trace=True,
        )
        mom = MessageBus(config)
        ids = []
        talkers = []
        for server in topology.servers:
            talker = _RandomTalker([], count=3, seed=900 + server)
            ids.append(mom.deploy(talker, server))
            talkers.append(talker)
        for talker in talkers:
            talker.peers = ids
        mom.start()
        mom.run_until_idle()
        for report in mom.check_domain_causality().values():
            assert report.respects_causality, report.summary()
