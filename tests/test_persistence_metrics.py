"""Unit tests for the persistent store and the metrics registry."""

import math

import pytest

from repro.errors import ConfigurationError, PersistenceError
from repro.mom.persistence import PersistentStore
from repro.simulation.metrics import Counter, MetricsRegistry, Samples


class TestPersistentStore:
    def test_save_load_roundtrip(self):
        store = PersistentStore(0)
        store.save("k", {"a": [1, 2]})
        assert store.load("k") == {"a": [1, 2]}

    def test_default_save_isolates_from_mutation(self):
        store = PersistentStore(0)
        value = [1, 2]
        store.save("k", value)
        value.append(3)
        assert store.load("k") == [1, 2]

    def test_load_returns_private_copy(self):
        store = PersistentStore(0)
        store.save("k", [1, 2])
        first = store.load("k")
        first.append(99)
        assert store.load("k") == [1, 2]

    def test_missing_key_yields_default(self):
        store = PersistentStore(0)
        assert store.load("nope") is None
        assert store.load("nope", default=7) == 7

    def test_empty_key_rejected(self):
        store = PersistentStore(0)
        with pytest.raises(PersistenceError):
            store.save("", 1)

    def test_write_and_cell_accounting(self):
        store = PersistentStore(0)
        store.save("a", 1, cells=100)
        store.save("b", 2, cells=50)
        assert store.writes == 2
        assert store.cells_written == 150

    def test_delete_and_keys(self):
        store = PersistentStore(0)
        store.save("a", 1)
        store.save("b", 2)
        store.delete("a")
        assert store.keys() == ["b"]
        assert not store.has("a")

    def test_owned_save_skips_copy(self):
        store = PersistentStore(0)
        value = (1, 2, 3)  # immutable, as the contract requires
        store.save("k", value, owned=True)
        assert store.load("k") == (1, 2, 3)


class TestCounter:
    def test_add(self):
        counter = Counter("c")
        counter.add()
        counter.add(5)
        assert counter.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("c").add(-1)


class TestSamples:
    def test_statistics(self):
        samples = Samples("s")
        for v in (1.0, 2.0, 3.0, 4.0):
            samples.record(v)
        assert samples.count == 4
        assert samples.mean == pytest.approx(2.5)
        assert samples.minimum == 1.0
        assert samples.maximum == 4.0
        assert samples.percentile(50) == pytest.approx(2.5)

    def test_empty_statistics_are_nan(self):
        samples = Samples("s")
        assert math.isnan(samples.mean)
        assert math.isnan(samples.percentile(99))

    def test_std_needs_two_points(self):
        samples = Samples("s")
        samples.record(5.0)
        assert samples.std == 0.0
        samples.record(7.0)
        assert samples.std > 0


class TestRegistry:
    def test_counters_are_created_once(self):
        registry = MetricsRegistry()
        registry.counter("x").add(3)
        registry.counter("x").add(4)
        assert registry.counter("x").value == 7

    def test_snapshot_flattens(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.samples("s").record(10.0)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["s.count"] == 1
        assert snap["s.mean"] == 10.0
