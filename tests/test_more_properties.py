"""Additional property-based coverage: counterexample generation on random
memberships, metrics conservation laws, pub/sub under failures."""

import random as pyrandom

import pytest

from hypothesis import assume, given, settings, strategies as st

from repro.causality import (
    Membership,
    build_violation_trace,
    check_all_domains,
    check_trace,
    find_cycle_path,
)
from repro.mom import BusConfig, FailureInjector, FunctionAgent, MessageBus
from repro.pubsub import Delivery, Publish, Subscribe, TopicAgent
from repro.simulation.network import UniformLatency
from repro.topology import bus as bus_topology


class TestCounterexampleProperties:
    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=60, deadline=None)
    def test_found_cycles_always_yield_formal_violations(self, seed):
        """For random memberships: whenever the finder reports a cycle,
        the Figure-4 construction must produce a trace that is correct,
        clean per domain, and globally violated — the full P1 ⇒ P2
        package, on arbitrary structures."""
        rng = pyrandom.Random(seed)
        domain_count = rng.randint(2, 6)
        process_count = rng.randint(3, 10)
        processes = [f"p{i}" for i in range(process_count)]
        mapping = {}
        for d in range(domain_count):
            size = rng.randint(2, max(2, process_count // 2))
            mapping[f"d{d}"] = set(rng.sample(processes, k=min(size, process_count)))
        membership = Membership(mapping)
        path = find_cycle_path(membership)
        assume(path is not None)

        trace, direct, chain = build_violation_trace(path, membership)
        global_report = check_trace(trace)
        assert global_report.correct
        assert not global_report.respects_causality
        for report in check_all_domains(trace, membership).values():
            assert report.respects_causality, report.summary()


class TestMetricsConservation:
    def run_workload(self, seed=0, with_crash=False):
        topology = bus_topology(12, 4)
        mom = MessageBus(
            BusConfig(
                topology=topology,
                seed=seed,
                latency=UniformLatency(0.2, 10.0),
                record_hop_trace=True,
            )
        )
        sinks = []
        ids = []
        for server in topology.servers:
            sink = FunctionAgent(lambda ctx, s, p: None)
            ids.append(mom.deploy(sink, server))
        starter = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            rng = pyrandom.Random(seed)
            for _ in range(20):
                target = rng.choice(ids)
                if target.server != 0:
                    ctx.send(target, "x")

        starter.on_boot = boot
        mom.deploy(starter, 0)
        if with_crash:
            FailureInjector(mom).crash_at(40.0, 7, down_for=120.0)
        mom.start()
        mom.run_until_idle()
        return mom

    def test_every_hop_sent_is_delivered_exactly_once(self):
        mom = self.run_workload()
        snap = mom.metrics.snapshot()
        assert snap["channel.hops_sent"] == snap["channel.hops_delivered"]

    def test_hop_trace_matches_counters(self):
        mom = self.run_workload(seed=3)
        snap = mom.metrics.snapshot()
        assert len(mom.hop_trace.messages) == snap["channel.hops_sent"]
        received = sum(
            1 for m in mom.hop_trace.messages if mom.hop_trace.was_received(m)
        )
        assert received == snap["channel.hops_delivered"]

    def test_crash_conserves_delivery_despite_duplicates(self):
        mom = self.run_workload(seed=5, with_crash=True)
        snap = mom.metrics.snapshot()
        # retransmissions may inflate packet counts, but each unique hop is
        # delivered exactly once
        assert snap["channel.hops_delivered"] == len(
            [m for m in mom.hop_trace.messages if mom.hop_trace.was_received(m)]
        )
        assert mom.check_app_causality().respects_causality

    def test_forwarded_plus_terminal_equals_delivered(self):
        mom = self.run_workload(seed=7)
        snap = mom.metrics.snapshot()
        terminal = snap["bus.delivery_ms.count"]
        forwarded = snap["channel.forwarded"]
        # every delivered hop either reached its final server (terminal app
        # delivery) or was forwarded onward; local-bus deliveries add to
        # terminal without any hop
        local = snap["bus.notifications"] - len(
            {m.payload for m in mom.hop_trace.messages}
        )
        assert snap["channel.hops_delivered"] == forwarded + (terminal - local)


class TestPubSubUnderFailures:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_topic_fanout_survives_broker_crash(self, seed):
        topology = bus_topology(9, 3)
        mom = MessageBus(BusConfig(topology=topology, seed=seed))
        topic = TopicAgent()
        topic_server = 4
        topic_id = mom.deploy(topic, topic_server)
        got = {}
        ids = []
        for server in (0, 1, 8):
            got[server] = []
            sub = FunctionAgent(
                lambda ctx, s, p, log=got[server]: log.append(p.body)
            )
            ids.append(mom.deploy(sub, server))
        publisher = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            for agent_id in ids:
                ctx.send(topic_id, Subscribe(agent_id))
            for i in range(6):
                ctx.send(topic_id, Publish(i))

        publisher.on_boot = boot
        mom.deploy(publisher, 0)
        FailureInjector(mom).crash_at(60.0, topic_server, down_for=200.0)
        mom.start()
        mom.run_until_idle()
        for server, log in got.items():
            assert log == [0, 1, 2, 3, 4, 5], (
                f"subscriber on S{server} got {log}"
            )
        assert mom.check_app_causality().respects_causality
