"""Fault-tolerance tests: crashes, recoveries, partitions, loss.

§3: agents are persistent and reactions atomic, "allowing recovery in
case of node failure"; the channel keeps a persistent image of the matrix
clock "in order to recover communication in case of failure". These tests
crash every role — sender, router, receiver — and verify exactly-once,
causally-ordered delivery end to end.
"""

import pytest

from repro.errors import ServerCrashedError
from repro.mom import (
    BusConfig,
    EchoAgent,
    FailureInjector,
    FunctionAgent,
    MessageBus,
)
from repro.mom.agent import Agent
from repro.simulation.network import UniformLatency
from repro.topology import bus as bus_topology
from repro.topology import from_domain_map, single_domain


class Counter(Agent):
    def __init__(self):
        super().__init__()
        self.seen = []

    def react(self, ctx, sender, payload):
        self.seen.append(payload)


class Streamer(Agent):
    """Sends `count` sequenced messages to a target, one per reaction,
    self-clocked so crashes interleave with the stream."""

    def __init__(self, target, count):
        super().__init__()
        self.target = target
        self.count = count
        self.next = 0

    def on_boot(self, ctx):
        self._step(ctx)

    def react(self, ctx, sender, payload):
        self._step(ctx)

    def _step(self, ctx):
        if self.next < self.count:
            ctx.send(self.target, self.next)
            self.next += 1
            ctx.send(ctx.my_id, "tick")


def build_stream(topology, target_server, count=20, **config_kwargs):
    config = BusConfig(topology=topology, **config_kwargs)
    mom = MessageBus(config)
    sink = Counter()
    sink_id = mom.deploy(sink, target_server)
    streamer = Streamer(sink_id, count)
    mom.deploy(streamer, 0)
    return mom, sink


class TestCrashStateMachine:
    def test_double_crash_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        mom.server(0).crash()
        with pytest.raises(ServerCrashedError):
            mom.server(0).crash()

    def test_recover_without_crash_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        with pytest.raises(ServerCrashedError):
            mom.server(0).recover()

    def test_crash_halts_engine_work(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        sink = Counter()
        sink_id = mom.deploy(sink, 0)
        sender = FunctionAgent(lambda ctx, s, p: None)
        sender.on_boot = lambda ctx: ctx.send(sink_id, "x")
        mom.deploy(sender, 0)
        mom.start()
        mom.server(0).crash()
        mom.run_until_idle()
        assert sink.seen == []
        mom.server(0).recover()
        mom.run_until_idle()
        assert sink.seen == ["x"]


class TestReceiverCrash:
    @pytest.mark.parametrize("clock", ["matrix", "updates"])
    def test_stream_survives_receiver_outage(self, clock):
        mom, sink = build_stream(
            single_domain(3), target_server=2, count=20, clock_algorithm=clock
        )
        injector = FailureInjector(mom)
        injector.crash_at(100.0, 2, down_for=300.0)
        mom.start()
        mom.run_until_idle()
        assert sink.seen == list(range(20)), "exactly once, in order"
        assert mom.check_app_causality().respects_causality

    def test_duplicates_suppressed_by_matrix_clock(self):
        mom, sink = build_stream(single_domain(3), target_server=2, count=10)
        injector = FailureInjector(mom)
        injector.crash_at(80.0, 2, down_for=200.0)
        mom.start()
        mom.run_until_idle()
        assert sink.seen == list(range(10))
        # transport retransmissions during the outage are expected...
        assert mom.server(0).transport.retransmissions > 0


class TestSenderCrash:
    def test_unacked_envelopes_resent_after_recovery(self):
        mom, sink = build_stream(single_domain(2), target_server=1, count=15)
        injector = FailureInjector(mom)
        injector.crash_at(120.0, 0, down_for=150.0)
        mom.start()
        mom.run_until_idle()
        assert sink.seen == list(range(15))
        assert mom.check_app_causality().respects_causality


class TestRouterCrash:
    def test_stream_through_crashed_router(self):
        """Bus topology; the route 0→9 passes the leaf router and the
        backbone. Crash the first router mid-stream."""
        topo = bus_topology(12, 4)
        router = topo.domains_of(0)[0].servers[-1]  # leaf router of server 0
        mom, sink = build_stream(topo, target_server=9, count=20)
        injector = FailureInjector(mom)
        injector.crash_at(200.0, router, down_for=400.0)
        mom.start()
        mom.run_until_idle()
        assert sink.seen == list(range(20))
        assert mom.check_app_causality().respects_causality

    def test_multiple_crashes_and_jitter(self):
        topo = bus_topology(12, 4)
        mom, sink = build_stream(
            topo,
            target_server=9,
            count=25,
            latency=UniformLatency(0.5, 8.0),
            seed=11,
        )
        injector = FailureInjector(mom)
        injector.crash_at(150.0, 3, down_for=200.0)
        injector.crash_at(600.0, 9, down_for=150.0)
        injector.crash_at(900.0, 0, down_for=100.0)
        mom.start()
        mom.run_until_idle()
        assert sink.seen == list(range(25))
        assert mom.check_app_causality().respects_causality


class TestPartitions:
    def test_partition_heals_and_stream_completes(self):
        mom, sink = build_stream(single_domain(2), target_server=1, count=12)
        injector = FailureInjector(mom)
        injector.partition_at(50.0, 0, 1, duration=300.0)
        mom.start()
        mom.run_until_idle()
        assert sink.seen == list(range(12))

    def test_loss_rate_tolerated(self):
        mom, sink = build_stream(
            single_domain(3), target_server=2, count=15, loss_rate=0.3, seed=5
        )
        mom.start()
        mom.run_until_idle()
        assert sink.seen == list(range(15))
        assert mom.check_app_causality().respects_causality


class TestAgentStateDurability:
    def test_agent_state_restored_from_snapshot(self):
        """EchoAgent.echoed must reflect pre-crash reactions after
        recovery (reactions are persistent)."""
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        echo = EchoAgent()
        echo_id = mom.deploy(echo, 1)
        sink = Counter()
        sink_id = mom.deploy(sink, 0)

        relay = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            for i in range(6):
                ctx.send(echo_id, i)

        relay.on_boot = boot
        mom.deploy(relay, 0)
        injector = FailureInjector(mom)
        injector.crash_at(90.0, 1, down_for=120.0)
        mom.start()
        mom.run_until_idle()
        assert echo.echoed == 6

    def test_reaction_rolls_back_on_crash(self):
        """A crash scheduled while a reaction's cost is still being charged
        must erase the reaction; on recovery it re-runs and its sends
        appear exactly once."""
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        sink = Counter()
        sink_id = mom.deploy(sink, 0)
        echo = EchoAgent()
        echo_id = mom.deploy(echo, 1)
        sender = FunctionAgent(lambda ctx, s, p: sink.seen.append(p))
        sender.on_boot = lambda ctx: ctx.send(echo_id, "once")
        mom.deploy(sender, 0)
        mom.start()
        # crash server 1 exactly while the echo reaction would be running:
        # the notification arrives ~15ms in; reaction commits ~1ms later.
        mom.sim.schedule_at(15.2, lambda: mom.server(1).crash())
        mom.sim.schedule_at(200.0, lambda: mom.server(1).recover())
        mom.run_until_idle()
        assert sink.seen == ["once"]
        assert echo.echoed == 1
