"""Unit tests for the §7 application-driven partitioning heuristics."""

import pytest

from repro.errors import ConfigurationError
from repro.topology import (
    CommunicationGraph,
    estimate_traffic_cost,
    partition_communication_graph,
    single_domain,
    validate_topology,
)


def clustered_graph(clusters=3, size=6, intra=10.0, inter=1.0):
    """`clusters` groups with heavy intra-group and light inter-group
    traffic (adjacent clusters only)."""
    comm = CommunicationGraph(clusters * size)
    for c in range(clusters):
        base = c * size
        for i in range(size):
            for j in range(i + 1, size):
                comm.add_traffic(base + i, base + j, intra)
    for c in range(clusters - 1):
        comm.add_traffic(c * size, (c + 1) * size, inter)
    return comm


class TestCommunicationGraph:
    def test_traffic_accumulates(self):
        comm = CommunicationGraph(3)
        comm.add_traffic(0, 1, 2.0)
        comm.add_traffic(1, 0, 3.0)
        assert comm.weight(0, 1) == 5.0

    def test_missing_pair_weighs_zero(self):
        comm = CommunicationGraph(3)
        assert comm.weight(0, 2) == 0.0

    def test_self_traffic_rejected(self):
        comm = CommunicationGraph(3)
        with pytest.raises(ConfigurationError):
            comm.add_traffic(1, 1, 1.0)

    def test_unknown_server_rejected(self):
        comm = CommunicationGraph(3)
        with pytest.raises(ConfigurationError):
            comm.add_traffic(0, 9, 1.0)

    def test_nonpositive_weight_rejected(self):
        comm = CommunicationGraph(3)
        with pytest.raises(ConfigurationError):
            comm.add_traffic(0, 1, 0.0)


class TestPartitioner:
    def test_result_always_validates(self):
        comm = clustered_graph()
        topology = partition_communication_graph(comm, max_domain_size=6)
        validate_topology(topology)
        assert topology.server_count == comm.server_count

    def test_recovers_natural_clusters(self):
        comm = clustered_graph(clusters=3, size=6)
        topology = partition_communication_graph(comm, max_domain_size=6)
        # each original cluster should land (mostly) in one domain
        for c in range(3):
            cluster = set(range(c * 6, (c + 1) * 6))
            best_overlap = max(
                len(cluster & set(d.servers)) for d in topology.domains
            )
            assert best_overlap == 6

    def test_beats_flat_on_clustered_traffic(self):
        comm = clustered_graph()
        topology = partition_communication_graph(comm, max_domain_size=6)
        flat = single_domain(comm.server_count)
        assert estimate_traffic_cost(topology, comm) < estimate_traffic_cost(
            flat, comm
        )

    def test_no_traffic_falls_back_to_size_chunks(self):
        comm = CommunicationGraph(10)
        topology = partition_communication_graph(comm, max_domain_size=4)
        validate_topology(topology)
        assert topology.server_count == 10

    def test_single_community_is_one_domain(self):
        comm = CommunicationGraph(4)
        for i in range(4):
            for j in range(i + 1, 4):
                comm.add_traffic(i, j, 5.0)
        topology = partition_communication_graph(comm, max_domain_size=8)
        assert len(topology.domains) == 1

    def test_oversized_communities_are_split(self):
        comm = clustered_graph(clusters=1, size=12)
        topology = partition_communication_graph(comm, max_domain_size=4)
        validate_topology(topology)
        # every domain respects the cap (+1 possible promoted router)
        for domain in topology.domains:
            assert domain.size <= 5

    def test_routers_carry_the_heavy_cut_traffic(self):
        comm = clustered_graph(clusters=2, size=5, inter=7.0)
        # the inter-cluster edge is (0, 5): one of its endpoints should be
        # promoted to router
        topology = partition_communication_graph(comm, max_domain_size=5)
        assert any(r in (0, 5) for r in topology.routers)
