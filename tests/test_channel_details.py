"""Channel-level tests: stamping domains, hold-back behaviour, duplicate
suppression, wire accounting, DomainItem structure."""

import pytest

from repro.clocks import MatrixClock, UpdatesClock
from repro.errors import RoutingError, TopologyError
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.mom.domain_item import DomainItem
from repro.protocol import get_core
from repro.simulation.network import UniformLatency
from repro.topology import Domain, bus as bus_topology, from_domain_map, single_domain


class TestDomainItem:
    def test_local_identity(self):
        domain = Domain("D", (4, 7, 9))
        item = DomainItem(domain, server_id=7, core=get_core("matrix"))
        assert item.domain_server_id == 1
        assert item.clock.owner == 1
        assert item.clock.size == 3

    def test_id_table_lookups(self):
        domain = Domain("D", (4, 7, 9))
        item = DomainItem(domain, 7, get_core("matrix"))
        assert item.local_id(9) == 2
        assert item.global_id(0) == 4

    def test_non_member_rejected(self):
        domain = Domain("D", (4, 7))
        with pytest.raises(TopologyError):
            DomainItem(domain, 5, get_core("matrix"))

    def test_updates_clock_selectable(self):
        domain = Domain("D", (0, 1))
        item = DomainItem(domain, 0, get_core("updates"))
        assert isinstance(item.clock, UpdatesClock)


class TestChannelStructure:
    def test_router_holds_one_item_per_domain(self, figure2_topology):
        mom = MessageBus(BusConfig(topology=figure2_topology))
        router = mom.server(2)  # S3, in A and D
        assert sorted(router.channel.domain_items) == ["A", "D"]
        plain = mom.server(0)
        assert sorted(plain.channel.domain_items) == ["A"]

    def test_clock_sizes_match_domains(self, figure2_topology):
        mom = MessageBus(BusConfig(topology=figure2_topology))
        items = mom.server(2).channel.domain_items
        assert items["A"].clock.size == 3
        assert items["D"].clock.size == 4

    def test_post_to_self_rejected(self):
        from repro.mom.payloads import Notification
        from repro.mom.identifiers import AgentId

        mom = MessageBus(BusConfig(topology=single_domain(2)))
        bogus = Notification(
            nid=1,
            sender=AgentId(0, 0),
            target=AgentId(0, 1),
            payload=None,
            sent_at=0.0,
        )
        with pytest.raises(RoutingError):
            mom.server(0).channel.post(bogus)

    def test_unknown_domain_envelope_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        with pytest.raises(TopologyError):
            mom.server(0).channel.item("Z")


class TestWireAccounting:
    def run_pingpong(self, clock):
        mom = MessageBus(
            BusConfig(topology=single_domain(4), clock_algorithm=clock)
        )
        echo_id = mom.deploy(EchoAgent(), 3)
        pinger = FunctionAgent(lambda ctx, s, p: None)
        pinger.on_boot = lambda ctx: ctx.send(echo_id, "x")
        mom.deploy(pinger, 0)
        mom.start()
        mom.run_until_idle()
        return mom

    def test_full_matrix_wire_cells(self):
        mom = self.run_pingpong("matrix")
        # 2 hops (ping + echo), each carrying a 4x4 stamp
        assert mom.network.cells_transmitted == 32

    def test_updates_wire_cells(self):
        mom = self.run_pingpong("updates")
        # ping ships 1 cell; echo ships its bump + what it learned, minus
        # the no-echo filter => well under the 16-cell full stamp
        assert mom.network.cells_transmitted <= 4

    def test_persisted_cells_full_image(self):
        mom = self.run_pingpong("matrix")
        # each of 2 hops persists the 16-cell image at send and at commit,
        # i.e. at least 64 cells of disk traffic across servers
        assert mom.total_persisted_cells() >= 64

    def test_state_cells_flat(self):
        mom = self.run_pingpong("matrix")
        assert mom.total_clock_state_cells() == 4 * 16


class TestHoldback:
    def test_reordered_hops_are_held_back_and_released(self):
        """With heavy jitter, later messages arrive first and must wait in
        the hold-back queue; everything is still delivered FIFO."""
        received = []
        mom = MessageBus(
            BusConfig(
                topology=single_domain(2),
                latency=UniformLatency(0.1, 50.0),
                seed=2,
            )
        )
        sink = FunctionAgent(lambda ctx, s, p: received.append(p))
        sink_id = mom.deploy(sink, 1)
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            for i in range(8):
                ctx.send(sink_id, i)

        sender.on_boot = boot
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        assert received == list(range(8))
        assert mom.metrics.counter("channel.heldback").value > 0
        assert mom.server(1).channel.heldback_count == 0

    def test_unacked_drains_to_zero(self):
        mom = MessageBus(BusConfig(topology=bus_topology(9, 3)))
        echo_id = mom.deploy(EchoAgent(), 7)
        pinger = FunctionAgent(lambda ctx, s, p: None)
        pinger.on_boot = lambda ctx: ctx.send(echo_id, "x")
        mom.deploy(pinger, 0)
        mom.start()
        mom.run_until_idle()
        for server in mom.servers.values():
            assert server.channel.unacked_count == 0
