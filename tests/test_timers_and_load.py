"""Tests for agent timers (send_after) and the open-loop load workload."""

import pytest

from repro.bench import OpenLoopDriver, SinkAgent
from repro.errors import AgentError, ConfigurationError
from repro.mom import BusConfig, FunctionAgent, MessageBus
from repro.mom.agent import Agent
from repro.topology import bus as bus_topology
from repro.topology import single_domain


class TestSendAfter:
    def test_delayed_send_arrives_after_delay(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        arrivals = []
        sink = FunctionAgent(lambda ctx, s, p: arrivals.append((ctx.now, p)))
        sink_id = mom.deploy(sink, 1)
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send_after(100.0, sink_id, "later")
            ctx.send(sink_id, "now")

        sender.on_boot = boot
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        assert [p for _, p in arrivals] == ["now", "later"]
        assert arrivals[1][0] - arrivals[0][0] >= 90.0

    def test_timer_respects_causal_order_with_prior_sends(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        sink = FunctionAgent(lambda ctx, s, p: None)
        sink_id = mom.deploy(sink, 1)
        sender = FunctionAgent(lambda ctx, s, p: None)
        sender.on_boot = lambda ctx: ctx.send_after(10.0, sink_id, "x")
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        assert mom.check_app_causality().respects_causality

    def test_negative_delay_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        sink_id = mom.deploy(FunctionAgent(lambda c, s, p: None), 1)
        bad = FunctionAgent(lambda c, s, p: None)
        bad.on_boot = lambda ctx: ctx.send_after(-1.0, sink_id, "x")
        mom.deploy(bad, 0)
        mom.start()
        with pytest.raises(AgentError):
            mom.run_until_idle()

    def test_timers_are_volatile_across_crashes(self):
        """A crash between arming and firing drops the timer silently."""
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        arrivals = []
        sink = FunctionAgent(lambda ctx, s, p: arrivals.append(p))
        sink_id = mom.deploy(sink, 1)
        sender = FunctionAgent(lambda ctx, s, p: None)
        sender.on_boot = lambda ctx: ctx.send_after(100.0, sink_id, "doomed")
        mom.deploy(sender, 0)
        mom.sim.schedule_at(50.0, lambda: mom.server(0).crash())
        mom.sim.schedule_at(200.0, lambda: mom.server(0).recover())
        mom.start()
        mom.run_until_idle()
        assert arrivals == []


class TestOpenLoopWorkload:
    def run_load(self, topology, period, count=30):
        mom = MessageBus(BusConfig(topology=topology))
        sink = SinkAgent()
        sink_id = mom.deploy(sink, topology.server_count - 1)
        driver = OpenLoopDriver(period_ms=period, count=count)
        driver.bind(sink_id)
        mom.deploy(driver, 0)
        mom.start()
        mom.run_until_idle()
        assert sink.received == count
        return sink.sojourn_ms

    def test_light_load_latency_is_flat(self):
        """At a period far above the service time, every message sees an
        idle system: sojourn ≈ the unloaded one-way time."""
        sojourns = self.run_load(single_domain(10), period=200.0)
        assert max(sojourns) < 1.2 * min(sojourns)

    def test_overload_grows_queues(self):
        """At a period below the per-message service time (~45 ms at n=50)
        the sender CPU saturates and sojourn climbs steadily."""
        sojourns = self.run_load(single_domain(50), period=10.0)
        assert sojourns[-1] > 5 * sojourns[0]

    def test_domains_raise_the_saturation_point(self):
        """A period that overloads the flat 50-server MOM (service ~45 ms)
        is comfortable for the domained one (first hop ~15 ms)."""
        flat = self.run_load(single_domain(50), period=25.0)
        domained = self.run_load(bus_topology(50), period=25.0)
        assert max(flat) > 2 * max(domained)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            OpenLoopDriver(period_ms=0, count=5)
        with pytest.raises(ConfigurationError):
            OpenLoopDriver(period_ms=5, count=0)
        driver = OpenLoopDriver(period_ms=5, count=5)
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        mom.deploy(driver, 0)
        mom.start()
        with pytest.raises(ConfigurationError):
            mom.run_until_idle()  # bind() never called
