"""Self-tests for the protocol linter (R001–R006).

Each rule gets a firing fixture and a non-firing fixture under
``tests/lint_fixtures/repro/...``; the directory layout mirrors the real
package so that location-scoped rules resolve module names exactly as
they do on ``src/``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Diagnostic, lint_file, lint_paths, lint_source
from repro.analysis.lint import module_name
from repro.analysis.rules import ALL_RULES, LAYERS

FIXTURES = Path(__file__).parent / "lint_fixtures" / "repro"
REPO_SRC = Path(__file__).parent.parent / "src"


def rules_fired(path: Path) -> list:
    return [d.rule for d in lint_file(path)]


class TestModuleName:
    def test_src_layout(self):
        assert module_name("src/repro/mom/channel.py") == "repro.mom.channel"

    def test_rightmost_repro_wins(self):
        path = "tests/lint_fixtures/repro/mom/r001_bad.py"
        assert module_name(path) == "repro.mom.r001_bad"

    def test_init_maps_to_package(self):
        assert module_name("src/repro/clocks/__init__.py") == "repro.clocks"

    def test_outside_repro_is_none(self):
        assert module_name("scripts/plot.py") is None


class TestR001ClockInternals:
    def test_fires_outside_clocks(self):
        fired = rules_fired(FIXTURES / "mom" / "r001_bad.py")
        assert fired.count("R001") == 4

    def test_silent_inside_clocks(self):
        assert rules_fired(FIXTURES / "clocks" / "r001_good.py") == []

    def test_reads_never_fire(self):
        findings = lint_source(
            "value = clock._buf[0]\n", module="repro.mom.probe"
        )
        assert findings == []


class TestR002Nondeterminism:
    def test_fires_on_every_source(self):
        fired = rules_fired(FIXTURES / "simulation" / "r002_bad.py")
        assert fired.count("R002") == 5

    def test_seeded_rng_is_fine(self):
        assert rules_fired(FIXTURES / "simulation" / "r002_good.py") == []

    def test_rng_module_is_exempt(self):
        assert rules_fired(FIXTURES / "simulation" / "rng.py") == []


class TestR003UnorderedIteration:
    def test_fires_in_mom(self):
        fired = rules_fired(FIXTURES / "mom" / "r003_bad.py")
        assert fired.count("R003") == 4

    def test_sorted_is_fine(self):
        assert rules_fired(FIXTURES / "mom" / "r003_good.py") == []

    def test_out_of_scope_package(self):
        assert rules_fired(FIXTURES / "bench" / "r003_out_of_scope.py") == []


class TestR004TimestampEquality:
    def test_fires_on_equality(self):
        fired = rules_fired(FIXTURES / "simulation" / "r004_bad.py")
        assert fired.count("R004") == 3

    def test_ordered_comparisons_fine(self):
        assert rules_fired(FIXTURES / "simulation" / "r004_good.py") == []


class TestR005SwallowedErrors:
    def test_fires_on_swallowing(self):
        fired = rules_fired(FIXTURES / "mom" / "r005_bad.py")
        assert fired.count("R005") == 3

    def test_reraise_and_cli_boundary_fine(self):
        assert rules_fired(FIXTURES / "mom" / "r005_good.py") == []


class TestR006LayeredImports:
    def test_fires_on_upward_imports(self):
        fired = rules_fired(FIXTURES / "clocks" / "r006_bad.py")
        assert fired.count("R006") == 3

    def test_downward_and_type_checking_fine(self):
        assert rules_fired(FIXTURES / "mom" / "r006_good.py") == []

    def test_layer_order_matches_reality(self):
        # the declared order must keep every real package distinct
        assert len(set(LAYERS.values())) == len(LAYERS)
        assert LAYERS["errors"] < LAYERS["clocks"] < LAYERS["mom"]
        assert LAYERS["mom"] < LAYERS["bench"] < LAYERS["analysis"]


class TestSuppressions:
    def test_noqa_fixture_is_clean(self):
        assert rules_fired(FIXTURES / "mom" / "noqa_suppressed.py") == []

    def test_noqa_only_suppresses_named_rule(self):
        findings = lint_source(
            "clock._buf[0] = 1  # noqa: R002\n", module="repro.mom.x"
        )
        assert [d.rule for d in findings] == ["R001"]


class TestFramework:
    def test_select_restricts_rules(self):
        findings = lint_file(FIXTURES / "mom" / "r001_bad.py")
        only = lint_file(FIXTURES / "mom" / "r001_bad.py", select=["R005"])
        assert findings and only == []

    def test_syntax_error_reports_e999(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert [d.rule for d in findings] == ["E999"]

    def test_diagnostic_format(self):
        d = Diagnostic("R001", "a.py", 3, 5, "msg")
        assert d.format() == "a.py:3:5: R001 msg"
        assert d.to_dict()["line"] == 3

    def test_every_rule_has_a_firing_fixture(self):
        all_fired = set()
        for path in sorted(FIXTURES.rglob("*.py")):
            all_fired.update(rules_fired(path))
        assert {rule.rule_id for rule in ALL_RULES} <= all_fired

    def test_repo_src_is_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(d.format() for d in findings)


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=str(REPO_SRC.parent),
        )

    def test_exit_zero_on_clean_tree(self):
        result = self.run_cli("lint", "src/")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_exit_one_with_file_line_diagnostics(self):
        bad = FIXTURES / "mom" / "r001_bad.py"
        result = self.run_cli("lint", str(bad))
        assert result.returncode == 1
        assert "r001_bad.py:5:" in result.stdout
        assert "R001" in result.stdout

    def test_json_output(self):
        bad = FIXTURES / "simulation" / "r004_bad.py"
        result = self.run_cli("lint", "--json", str(bad))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert {entry["rule"] for entry in payload} == {"R004"}

    def test_rules_subcommand(self):
        result = self.run_cli("rules")
        assert result.returncode == 0
        for rule in ALL_RULES:
            assert rule.rule_id in result.stdout
