"""Self-tests for the protocol linter (R001–R017).

Each rule gets a firing fixture, a non-firing fixture and a noqa
fixture under ``tests/lint_fixtures/repro/...``; the directory layout
mirrors the real package so that location-scoped rules resolve module
names exactly as they do on ``src/``. The whole-program rules
(R007/R008/R013/R014/R017) are exercised through :func:`lint_paths`
over the fixture tree, which builds one project from every fixture
file; the noqa escape hatch is covered by one parametric strip-noqa
test that re-lints each ``r*_noqa.py`` fixture with its waiver removed.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Diagnostic, lint_file, lint_paths, lint_source
from repro.analysis.lint import (
    apply_baseline,
    load_baseline,
    module_name,
    write_baseline,
)
from repro.analysis.rules import ALL_RULES, LAYERS, PROJECT_RULES

FIXTURES = Path(__file__).parent / "lint_fixtures" / "repro"
REPO_SRC = Path(__file__).parent.parent / "src"
NOQA_FIXTURES = sorted(FIXTURES.rglob("r*_noqa.py"))


def rules_fired(path: Path) -> list:
    return [d.rule for d in lint_file(path)]


@pytest.fixture(scope="module")
def fixture_project_findings():
    """One whole-program lint of the fixture tree, shared per module."""
    return lint_paths([FIXTURES])


def fired_at(findings, name: str) -> list:
    return [d.rule for d in findings if Path(d.path).name == name]


class TestModuleName:
    def test_src_layout(self):
        assert module_name("src/repro/mom/channel.py") == "repro.mom.channel"

    def test_rightmost_repro_wins(self):
        path = "tests/lint_fixtures/repro/mom/r001_bad.py"
        assert module_name(path) == "repro.mom.r001_bad"

    def test_init_maps_to_package(self):
        assert module_name("src/repro/clocks/__init__.py") == "repro.clocks"

    def test_outside_repro_is_none(self):
        assert module_name("scripts/plot.py") is None


class TestR001ClockInternals:
    def test_fires_outside_clocks(self):
        fired = rules_fired(FIXTURES / "mom" / "r001_bad.py")
        assert fired.count("R001") == 4

    def test_silent_inside_clocks(self):
        assert rules_fired(FIXTURES / "clocks" / "r001_good.py") == []

    def test_reads_never_fire(self):
        findings = lint_source(
            "value = clock._buf[0]\n", module="repro.mom.probe"
        )
        assert findings == []


class TestR002Nondeterminism:
    def test_fires_on_every_source(self):
        fired = rules_fired(FIXTURES / "simulation" / "r002_bad.py")
        assert fired.count("R002") == 5

    def test_seeded_rng_is_fine(self):
        assert rules_fired(FIXTURES / "simulation" / "r002_good.py") == []

    def test_rng_module_is_exempt(self):
        assert rules_fired(FIXTURES / "simulation" / "rng.py") == []


class TestR003UnorderedIteration:
    def test_fires_in_mom(self):
        fired = rules_fired(FIXTURES / "mom" / "r003_bad.py")
        assert fired.count("R003") == 4

    def test_sorted_is_fine(self):
        assert rules_fired(FIXTURES / "mom" / "r003_good.py") == []

    def test_out_of_scope_package(self):
        assert rules_fired(FIXTURES / "bench" / "r003_out_of_scope.py") == []


class TestR004TimestampEquality:
    def test_fires_on_equality(self):
        fired = rules_fired(FIXTURES / "simulation" / "r004_bad.py")
        assert fired.count("R004") == 3

    def test_ordered_comparisons_fine(self):
        assert rules_fired(FIXTURES / "simulation" / "r004_good.py") == []


class TestR005SwallowedErrors:
    def test_fires_on_swallowing(self):
        fired = rules_fired(FIXTURES / "mom" / "r005_bad.py")
        assert fired.count("R005") == 3

    def test_reraise_and_cli_boundary_fine(self):
        assert rules_fired(FIXTURES / "mom" / "r005_good.py") == []


class TestR006LayeredImports:
    def test_fires_on_upward_imports(self):
        fired = rules_fired(FIXTURES / "clocks" / "r006_bad.py")
        assert fired.count("R006") == 3

    def test_downward_and_type_checking_fine(self):
        assert rules_fired(FIXTURES / "mom" / "r006_good.py") == []

    def test_layer_order_matches_reality(self):
        # the declared order must keep every real package distinct
        assert len(set(LAYERS.values())) == len(LAYERS)
        assert LAYERS["errors"] < LAYERS["clocks"] < LAYERS["mom"]
        assert LAYERS["mom"] < LAYERS["bench"] < LAYERS["analysis"]


class TestR007NondeterminismTaint:
    def test_fires_on_both_sinks(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r007_bad.py")
        assert fired.count("R007") == 2

    def test_local_draws_are_fine(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r007_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r007_noqa.py") == []


class TestR008ObservationPurity:
    def test_fires_on_hook_path_mutation(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r008_bad.py")
        assert fired.count("R008") == 1

    def test_diagnostic_names_the_call_path(self, fixture_project_findings):
        (finding,) = [
            d for d in fixture_project_findings if d.rule == "R008"
        ]
        assert "on_send" in finding.message and "_bump" in finding.message

    def test_pure_hooks_are_fine(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r008_good.py") == []

    def test_host_call_sites_are_clean(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r008_state.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r008_noqa.py") == []

    def test_repo_hook_closure_is_mutation_free(self):
        """R008 over src/ statically verifies every obs/metrics hook
        path: non-trivial roots and closure, zero mutations reached."""
        from repro.analysis.callgraph import ModuleInfo, Project
        from repro.analysis.lint import iter_python_files
        from repro.analysis.rules import ObservationPurity, effect_engine

        modules = []
        for path in iter_python_files([REPO_SRC]):
            text = path.read_text(encoding="utf-8")
            modules.append(
                ModuleInfo(
                    module=module_name(path) or str(path),
                    path=str(path),
                    tree=ast.parse(text),
                    source=text,
                )
            )
        project = Project(modules)
        roots = ObservationPurity._hook_roots(project)
        assert any("Tracer." in root for root in roots)
        assert any(root.startswith("repro.metrics.") for root in roots)
        closure = project.reachable_from(sorted(roots))
        assert len(closure) > len(roots)
        engine = effect_engine(project)
        engine.solve()
        mutating = [
            q
            for q in closure
            if engine.summaries.get(q) and engine.summaries[q].mutates_protocol
        ]
        assert mutating == []


class TestR009GuardDiscipline:
    def test_fires_on_unguarded_calls(self):
        fired = rules_fired(FIXTURES / "mom" / "r009_bad.py")
        assert fired.count("R009") == 3

    def test_every_guard_idiom_passes(self):
        assert rules_fired(FIXTURES / "mom" / "r009_good.py") == []

    def test_noqa_suppresses(self):
        assert rules_fired(FIXTURES / "mom" / "r009_noqa.py") == []


class TestR010TransactionPairing:
    def test_fires_on_leaky_paths(self):
        fired = rules_fired(FIXTURES / "mom" / "r010_bad.py")
        assert fired.count("R010") == 2

    def test_paired_and_handed_off_pass(self):
        assert rules_fired(FIXTURES / "mom" / "r010_good.py") == []

    def test_noqa_suppresses(self):
        assert rules_fired(FIXTURES / "mom" / "r010_noqa.py") == []


class TestR011PersistenceBypass:
    def test_fires_on_backdoor_writes(self):
        fired = rules_fired(FIXTURES / "mom" / "r011_bad.py")
        assert fired.count("R011") == 3

    def test_api_and_lookalikes_pass(self):
        assert rules_fired(FIXTURES / "mom" / "r011_good.py") == []

    def test_persistence_module_is_exempt(self):
        findings = lint_source(
            "self._server.store._data[k] = v\n",
            module="repro.mom.persistence",
        )
        assert findings == []

    def test_noqa_suppresses(self):
        assert rules_fired(FIXTURES / "mom" / "r011_noqa.py") == []


class TestR012HoldbackLeak:
    def test_fires_on_swallowed_exception(self):
        fired = rules_fired(FIXTURES / "mom" / "r012_bad.py")
        assert fired.count("R012") == 1

    def test_cleanup_paths_pass(self):
        assert rules_fired(FIXTURES / "mom" / "r012_good.py") == []

    def test_noqa_suppresses(self):
        assert rules_fired(FIXTURES / "mom" / "r012_noqa.py") == []


class TestR013ForkBoundaryLostUpdate:
    def test_fires_on_worker_module_writes(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r013_bad.py")
        assert fired.count("R013") == 2

    def test_diagnostic_names_the_worker_entry(self, fixture_project_findings):
        messages = [
            d.message
            for d in fixture_project_findings
            if d.rule == "R013" and Path(d.path).name == "r013_bad.py"
        ]
        assert all("_r013_worker" in message for message in messages)

    def test_pipe_shipped_results_are_fine(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r013_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r013_noqa.py") == []


class TestR014PipePickleSafety:
    def test_fires_on_unpicklable_fields(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r014_bad.py")
        assert fired.count("R014") == 2

    def test_diagnostic_names_the_reason(self, fixture_project_findings):
        messages = " ".join(
            d.message
            for d in fixture_project_findings
            if d.rule == "R014"
        )
        assert "lambda" in messages and "thread lock" in messages

    def test_plain_data_and_local_scratch_pass(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r014_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r014_noqa.py") == []


class TestR015EpochDiscipline:
    def test_fires_on_unbumped_log_rebinds(self):
        fired = rules_fired(FIXTURES / "clocks" / "r015_bad.py")
        assert fired.count("R015") == 2

    def test_bumped_aliased_and_same_stmt_pass(self):
        assert rules_fired(FIXTURES / "clocks" / "r015_good.py") == []

    def test_noqa_suppresses(self):
        assert rules_fired(FIXTURES / "clocks" / "r015_noqa.py") == []

    def test_out_of_scope_package(self):
        findings = lint_source(
            "def f(self):\n    self._log = []\n",
            module="repro.mom.x",
            select=["R015"],
        )
        assert findings == []


class TestR016CoordinatorFlushDiscipline:
    def test_fires_on_unflushed_grant_path(self):
        fired = rules_fired(FIXTURES / "simulation" / "r016_bad.py")
        assert fired.count("R016") == 1

    def test_flush_dominating_grants_passes(self):
        assert rules_fired(FIXTURES / "simulation" / "r016_good.py") == []

    def test_noqa_suppresses(self):
        assert rules_fired(FIXTURES / "simulation" / "r016_noqa.py") == []


class TestR017ShardScopedStreams:
    def test_fires_on_shared_stream_name(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r017_bad.py")
        assert fired.count("R017") == 1

    def test_scoped_name_and_sequential_guard_pass(
        self, fixture_project_findings
    ):
        assert fired_at(fixture_project_findings, "r017_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r017_noqa.py") == []


class TestR018CoreIsolation:
    def test_fires_on_private_read_and_direct_write(
        self, fixture_project_findings
    ):
        fired = fired_at(fixture_project_findings, "r018_bad.py")
        assert fired.count("R018") == 2

    def test_public_surface_passes(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r018_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r018_noqa.py") == []

    def test_core_own_methods_are_exempt(self, fixture_project_findings):
        # core_defs mutates its own state freely — the boundary only
        # binds outsiders
        assert fired_at(fixture_project_findings, "core_defs.py") == []


class TestR019InterfaceConformance:
    def test_fires_on_missing_method_and_arity_drift(
        self, fixture_project_findings
    ):
        fired = fired_at(fixture_project_findings, "r019_bad.py")
        assert fired.count("R019") == 2

    def test_conforming_core_passes(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r019_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r019_noqa.py") == []


class TestR020DeliverabilityPurity:
    def test_fires_on_guard_side_mutation(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r020_bad.py")
        assert fired.count("R020") == 1

    def test_pure_guard_and_memo_fill_pass(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r020_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r020_noqa.py") == []


class TestR021StampPicklability:
    def test_fires_on_lock_field(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r021_bad.py")
        assert fired.count("R021") == 1

    def test_plain_fields_pass(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r021_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r021_noqa.py") == []


class TestR022CoreRngTaint:
    def test_fires_on_transitive_taint_outside_guard_scope(
        self, fixture_project_findings
    ):
        fired = fired_at(fixture_project_findings, "r022_bad.py")
        assert fired.count("R022") == 1

    def test_harness_side_randomness_passes(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r022_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r022_noqa.py") == []


class TestR023RegistrationCompleteness:
    def test_fires_on_unregistered_clock(self, fixture_project_findings):
        fired = fired_at(fixture_project_findings, "r023_bad.py")
        assert fired.count("R023") == 1

    def test_protocol_exempt_marker_passes(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r023_good.py") == []

    def test_noqa_suppresses(self, fixture_project_findings):
        assert fired_at(fixture_project_findings, "r023_noqa.py") == []


class TestNoqaStripping:
    """Every ``r*_noqa.py`` fixture must fire again once its waiver is
    stripped — proving the noqa comment is the only thing keeping the
    rule quiet, for file and project rules alike."""

    @pytest.mark.parametrize(
        "fixture", NOQA_FIXTURES, ids=[p.stem for p in NOQA_FIXTURES]
    )
    def test_stripping_noqa_reintroduces_the_finding(self, fixture, tmp_path):
        import shutil

        rule = fixture.stem.split("_")[0].upper()
        copy_root = tmp_path / "repro"
        shutil.copytree(FIXTURES, copy_root)
        target = copy_root / fixture.relative_to(FIXTURES)
        target.write_text(
            fixture.read_text().replace(f"  # noqa: {rule}", "")
        )
        findings = lint_paths([copy_root])
        fired_here = [
            d.rule for d in findings if Path(d.path) == target
        ]
        assert rule in fired_here

    def test_fixture_inventory_is_complete(self):
        stripped_rules = {p.stem.split("_")[0].upper() for p in NOQA_FIXTURES}
        noqa_capable = {
            rule.rule_id for rule in ALL_RULES if rule.rule_id >= "R007"
        }
        assert stripped_rules == noqa_capable


class TestSuppressions:
    def test_noqa_fixture_is_clean(self):
        assert rules_fired(FIXTURES / "mom" / "noqa_suppressed.py") == []

    def test_noqa_only_suppresses_named_rule(self):
        findings = lint_source(
            "clock._buf[0] = 1  # noqa: R002\n", module="repro.mom.x"
        )
        assert [d.rule for d in findings] == ["R001"]


class TestFramework:
    def test_select_restricts_rules(self):
        findings = lint_file(FIXTURES / "mom" / "r001_bad.py")
        only = lint_file(FIXTURES / "mom" / "r001_bad.py", select=["R005"])
        assert findings and only == []

    def test_syntax_error_reports_e999(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert [d.rule for d in findings] == ["E999"]

    def test_diagnostic_format(self):
        d = Diagnostic("R001", "a.py", 3, 5, "msg")
        assert d.format() == "a.py:3:5: R001 msg"
        assert d.to_dict()["line"] == 3

    def test_rule_tiers_split_cleanly(self):
        assert {rule.rule_id for rule in PROJECT_RULES} == {
            "R007",
            "R008",
            "R013",
            "R014",
            "R017",
            "R018",
            "R019",
            "R020",
            "R021",
            "R022",
            "R023",
        }
        assert len(ALL_RULES) == 23

    def test_every_rule_has_a_firing_fixture(self, fixture_project_findings):
        all_fired = {d.rule for d in fixture_project_findings}
        assert {rule.rule_id for rule in ALL_RULES} <= all_fired

    def test_bad_fixtures_fire_only_their_own_rule(
        self, fixture_project_findings
    ):
        for diagnostic in fixture_project_findings:
            name = Path(diagnostic.path).name
            if name.startswith("r0") and "_" in name:
                expected = name.split("_")[0].upper()
                assert diagnostic.rule == expected, diagnostic.format()

    def test_project_rules_are_deterministic(self):
        first = [d.format() for d in lint_paths([FIXTURES])]
        second = [d.format() for d in lint_paths([FIXTURES])]
        assert first == second

    def test_repo_src_is_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(d.format() for d in findings)


class TestCache:
    def test_warm_cache_reproduces_cold_results(self, tmp_path):
        cache = tmp_path / "lint-cache.json"
        cold = lint_paths([FIXTURES], cache=cache)
        assert cache.exists()
        warm = lint_paths([FIXTURES], cache=cache)
        assert [d.format() for d in warm] == [d.format() for d in cold]

    def test_content_change_invalidates_one_file(self, tmp_path):
        tree = tmp_path / "repro" / "mom"
        tree.mkdir(parents=True)
        target = tree / "cached.py"
        target.write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        assert lint_paths([tmp_path / "repro"], cache=cache) == []
        target.write_text("clock._buf[0] = 1\n")
        findings = lint_paths([tmp_path / "repro"], cache=cache)
        assert [d.rule for d in findings] == ["R001"]

    def test_selections_get_their_own_bucket(self, tmp_path):
        cache = tmp_path / "cache.json"
        bad = FIXTURES / "mom" / "r001_bad.py"
        only = lint_paths([bad], select=["R001"], cache=cache)
        assert cache.exists()
        payload = json.loads(cache.read_text())
        assert "R001" in payload["runs"]
        warm = lint_paths([bad], select=["R001"], cache=cache)
        assert [d.format() for d in warm] == [d.format() for d in only]

    def test_selected_bucket_cannot_poison_a_full_run(self, tmp_path):
        """Regression: a --select run used to either skip the cache or
        (worse) share entries with the full run. Buckets are keyed by
        selection, so a full lint after a narrow one still fires every
        rule."""
        cache = tmp_path / "cache.json"
        bad = FIXTURES / "mom" / "r001_bad.py"
        assert lint_paths([bad], select=["R005"], cache=cache) == []
        full = lint_paths([bad], cache=cache)
        assert [d.rule for d in full] == ["R001"] * 4

    def test_corrupt_cache_is_ignored(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        findings = lint_paths([FIXTURES / "mom" / "r001_bad.py"], cache=cache)
        assert [d.rule for d in findings] == ["R001"] * 4

    def test_v2_format_cache_is_rejected(self, tmp_path):
        """Regression for the v3 bump: a v2-era payload (same signature,
        old format string, poisoned empty results) must be ignored, not
        trusted."""
        from repro.analysis.lint import analysis_signature

        cache = tmp_path / "cache.json"
        bad = FIXTURES / "mom" / "r001_bad.py"
        cache.write_text(
            json.dumps(
                {
                    "format": "repro.analysis-cache/v2",
                    "signature": analysis_signature(),
                    "runs": {"*": {"files": {}, "project": {"key": "x"}}},
                }
            )
        )
        findings = lint_paths([bad], cache=cache)
        assert [d.rule for d in findings] == ["R001"] * 4
        payload = json.loads(cache.read_text())
        assert payload["format"] == "repro.analysis-cache/v3"

    def test_stale_rule_catalogue_busts_the_cache(self, tmp_path):
        """A v3 payload whose recorded rule catalogue predates the
        contract tier (no R018–R023) is rejected wholesale — newly added
        rules can never be masked by warm entries."""
        from repro.analysis.lint import analysis_signature

        cache = tmp_path / "cache.json"
        bad = FIXTURES / "mom" / "r001_bad.py"
        cold = lint_paths([bad], cache=cache)
        assert [d.rule for d in cold] == ["R001"] * 4
        payload = json.loads(cache.read_text())
        assert payload["signature"] == analysis_signature()
        assert "R018" in payload["rules"] and "R023" in payload["rules"]
        # age the catalogue and poison the stored findings: a trusted
        # reload would now return []
        payload["rules"] = [r for r in payload["rules"] if r < "R018"]
        for bucket in payload["runs"].values():
            for entry in bucket["files"].values():
                entry["findings"] = []
        cache.write_text(json.dumps(payload))
        findings = lint_paths([bad], cache=cache)
        assert [d.rule for d in findings] == ["R001"] * 4


class TestChangedScope:
    def test_changed_only_scopes_file_rules(self, tmp_path):
        tree = tmp_path / "repro" / "mom"
        tree.mkdir(parents=True)
        touched = tree / "touched.py"
        touched.write_text("clock._buf[0] = 1\n")
        (tree / "untouched.py").write_text("clock._buf[0] = 2\n")
        findings = lint_paths(
            [tmp_path / "repro"], changed_only={touched.resolve()}
        )
        assert [(d.rule, Path(d.path).name) for d in findings] == [
            ("R001", "touched.py")
        ]

    def test_project_rules_stay_whole_program(self):
        """An out-of-scope file still feeds the project pass: its
        worker entry points and taint sources must keep firing even
        when only one unrelated file is 'changed'."""
        changed = (FIXTURES / "mom" / "r001_bad.py").resolve()
        findings = lint_paths([FIXTURES], changed_only={changed})
        project_ids = {rule.rule_id for rule in PROJECT_RULES}
        fired = {d.rule for d in findings}
        assert {"R007", "R013", "R014", "R017"} <= fired
        for diagnostic in findings:
            in_scope = Path(diagnostic.path).resolve() == changed
            assert diagnostic.rule in project_ids or in_scope


class TestBaseline:
    def test_roundtrip_suppresses_known_findings(self, tmp_path):
        findings = lint_file(FIXTURES / "mom" / "r001_bad.py")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        assert apply_baseline(findings, baseline) == []

    def test_new_findings_survive_the_baseline(self, tmp_path):
        old = lint_file(FIXTURES / "mom" / "r001_bad.py")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, old)
        baseline = load_baseline(baseline_file)
        new = lint_file(FIXTURES / "simulation" / "r004_bad.py")
        assert apply_baseline(old + new, baseline) == new

    def test_bad_format_is_rejected(self, tmp_path):
        bogus = tmp_path / "baseline.json"
        bogus.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_baseline(bogus)


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=str(REPO_SRC.parent),
        )

    def test_exit_zero_on_clean_tree(self):
        result = self.run_cli("lint", "src/")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_exit_one_with_file_line_diagnostics(self):
        bad = FIXTURES / "mom" / "r001_bad.py"
        result = self.run_cli("lint", str(bad))
        assert result.returncode == 1
        assert "r001_bad.py:5:" in result.stdout
        assert "R001" in result.stdout

    def test_json_output(self):
        bad = FIXTURES / "simulation" / "r004_bad.py"
        result = self.run_cli("lint", "--json", str(bad))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert {entry["rule"] for entry in payload["findings"]} == {"R004"}
        assert payload["count"] == len(payload["findings"]) == 3
        assert payload["clean"] is False

    def test_json_exit_code_matches_payload(self):
        """Regression: the --json payload and the exit code come from
        the same finding list — a noqa'd-only file is clean in both."""
        noqa = FIXTURES / "mom" / "noqa_suppressed.py"
        plain = self.run_cli("lint", str(noqa))
        as_json = self.run_cli("lint", "--json", str(noqa))
        assert plain.returncode == as_json.returncode == 0
        payload = json.loads(as_json.stdout)
        assert payload["clean"] is True and payload["count"] == 0

        bad = FIXTURES / "mom" / "r001_bad.py"
        plain = self.run_cli("lint", str(bad))
        as_json = self.run_cli("lint", "--json", str(bad))
        assert plain.returncode == as_json.returncode == 1
        payload = json.loads(as_json.stdout)
        assert payload["clean"] is False
        assert payload["count"] == len(payload["findings"]) > 0

    def test_rule_flag_selects_one_rule(self):
        bad = FIXTURES / "mom" / "r001_bad.py"
        result = self.run_cli("lint", "--rule", "R005", str(bad))
        assert result.returncode == 0
        result = self.run_cli("lint", "--rule", "R001", str(bad))
        assert result.returncode == 1

    def test_unknown_rule_is_a_usage_error(self):
        result = self.run_cli("lint", "--rule", "R999", "src/")
        assert result.returncode == 2

    def test_baseline_flags(self, tmp_path):
        bad = FIXTURES / "mom" / "r001_bad.py"
        baseline = tmp_path / "baseline.json"
        wrote = self.run_cli(
            "lint", str(bad), "--write-baseline", str(baseline)
        )
        assert wrote.returncode == 0 and baseline.exists()
        result = self.run_cli("lint", str(bad), "--baseline", str(baseline))
        assert result.returncode == 0
        as_json = self.run_cli(
            "lint", "--json", str(bad), "--baseline", str(baseline)
        )
        payload = json.loads(as_json.stdout)
        assert payload["clean"] is True
        assert payload["baseline_suppressed"] == 4

    def test_cache_flag_round_trip(self, tmp_path):
        cache = tmp_path / "cache.json"
        bad = FIXTURES / "mom" / "r001_bad.py"
        cold = self.run_cli("lint", str(bad), "--cache", str(cache))
        warm = self.run_cli("lint", str(bad), "--cache", str(cache))
        assert cold.returncode == warm.returncode == 1
        assert cold.stdout == warm.stdout

    def test_sarif_output(self, tmp_path):
        bad = FIXTURES / "mom" / "r001_bad.py"
        sarif = tmp_path / "out.sarif"
        result = self.run_cli("lint", str(bad), "--sarif", str(sarif))
        assert result.returncode == 1
        payload = json.loads(sarif.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        catalogue = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {rule.rule_id for rule in ALL_RULES} <= catalogue
        assert {r["ruleId"] for r in run["results"]} == {"R001"}
        assert len(run["results"]) == 4

    def test_sarif_respects_the_baseline(self, tmp_path):
        bad = FIXTURES / "mom" / "r001_bad.py"
        baseline = tmp_path / "baseline.json"
        self.run_cli("lint", str(bad), "--write-baseline", str(baseline))
        sarif = tmp_path / "out.sarif"
        result = self.run_cli(
            "lint", str(bad), "--baseline", str(baseline), "--sarif", str(sarif)
        )
        assert result.returncode == 0
        payload = json.loads(sarif.read_text())
        assert payload["runs"][0]["results"] == []

    def test_changed_flag_on_clean_checkout(self):
        result = self.run_cli("lint", "src/", "--changed")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_changed_outside_git_is_a_usage_error(self, tmp_path):
        (tmp_path / "x.py").write_text("x = 1\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "lint", "x.py", "--changed"],
            capture_output=True,
            text=True,
            cwd=str(tmp_path),
            env=env,
        )
        assert result.returncode == 2
        assert "--changed" in result.stderr

    def test_rules_subcommand(self):
        result = self.run_cli("rules")
        assert result.returncode == 0
        for rule in ALL_RULES:
            assert rule.rule_id in result.stdout
