"""The small-scope protocol model checker (the dynamic admission gate).

Covers: admission of all shipping causal cores, rejection of the
non-causal FIFO baseline with a causal-violation counterexample,
rejection of a seeded merge bug (the ``droprow`` fixture) with a
hold-back-leak counterexample, the static admission scan for file-loaded
candidates, and the CLI exit-code contract (0 admitted / 1 violation /
2 usage or scan error).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.model import (
    ScanError,
    check_core,
    check_named,
    checkable_cores,
    load_candidate,
    scan_candidate,
)
from repro.errors import ProtocolError

REPO_ROOT = Path(__file__).resolve().parent.parent
DROPROW = REPO_ROOT / "tests" / "model_fixtures" / "droprow.py"


class TestAdmission:
    @pytest.mark.parametrize("name", ["matrix", "updates", "histories"])
    def test_shipping_causal_cores_admitted_at_small_scope(self, name):
        result = check_named(name, servers=2, messages=2)
        assert result.ok, result.format()
        assert result.kind == "admitted"
        assert result.trace == []
        assert result.states > 1

    def test_matrix_admitted_at_default_scope(self):
        # The full n=3, m=3 sweep the CI gate runs.
        result = check_named("matrix")
        assert result.ok, result.format()
        assert (result.servers, result.messages) == (3, 3)
        assert result.states == 3085

    def test_scope_is_capped(self):
        result = check_named("matrix", servers=9, messages=99)
        assert result.servers == 3
        assert result.messages == 4

    def test_exploration_is_deterministic(self):
        first = check_named("updates", servers=2, messages=2)
        second = check_named("updates", servers=2, messages=2)
        assert first.to_dict() == second.to_dict()

    def test_checkable_cores_reports_causality_flags(self):
        table = dict(checkable_cores())
        assert table == {
            "matrix": True,
            "updates": True,
            "histories": True,
            "fifo": False,
        }


class TestRejection:
    def test_fifo_baseline_violates_causal_delivery(self):
        result = check_named("fifo")
        assert not result.ok
        assert result.kind == "causal-violation"
        assert result.trace, "a violation must carry its interleaving"
        assert "causal predecessor" in result.detail
        formatted = result.format()
        assert "CAUSAL-VIOLATION" in formatted
        assert "counterexample interleaving:" in formatted

    def test_seeded_merge_bug_wedges_holdback(self):
        core = load_candidate(DROPROW)
        result = check_core(core, servers=2, messages=2)
        assert not result.ok
        assert result.kind == "holdback-leak"
        assert "wedged in hold-back" in result.detail
        assert any("held back" in step for step in result.trace)

    def test_counterexample_steps_are_numbered(self):
        core = load_candidate(DROPROW)
        result = check_core(core, servers=2, messages=2)
        lines = result.format().splitlines()
        assert lines[0].startswith("core 'droprow': HOLDBACK-LEAK")
        steps = [l for l in lines if l.strip()[0:1].isdigit()]
        assert len(steps) == len(result.trace)


class TestAdmissionScan:
    def test_fixture_passes_the_scan(self):
        scan_candidate(DROPROW.read_text(encoding="utf-8"), str(DROPROW))

    def test_forbidden_import_rejected(self):
        with pytest.raises(ScanError, match="sandbox"):
            scan_candidate("import os\n", "candidate.py")

    def test_forbidden_from_import_rejected(self):
        with pytest.raises(ScanError, match="subprocess"):
            scan_candidate("from subprocess import run\n", "candidate.py")

    def test_forbidden_call_rejected(self):
        with pytest.raises(ScanError, match=r"open\(\)"):
            scan_candidate("data = open('x').read()\n", "candidate.py")

    def test_syntax_error_rejected(self):
        with pytest.raises(ScanError, match="not parseable"):
            scan_candidate("def broken(:\n", "candidate.py")

    def test_load_candidate_requires_exactly_one_core(self, tmp_path):
        empty = tmp_path / "empty.py"
        empty.write_text("X = 1\n", encoding="utf-8")
        with pytest.raises(ScanError, match="exactly one"):
            load_candidate(empty)

    def test_load_candidate_uses_core_attribute(self):
        core = load_candidate(DROPROW)
        assert core.name == "droprow"
        with pytest.raises(ProtocolError):
            # never registered: only loadable through its file path
            check_named("droprow")


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", "model", *args],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )

    def test_admitted_core_exits_zero(self):
        result = self.run_cli("matrix", "--servers", "2", "--messages", "2")
        assert result.returncode == 0, result.stdout + result.stderr
        assert (
            "core 'matrix': ADMITTED (n=2, m=2, 25 states explored)"
            in result.stdout
        )

    def test_violating_candidate_exits_one_with_counterexample(self):
        result = self.run_cli(
            str(DROPROW), "--servers", "2", "--messages", "2"
        )
        assert result.returncode == 1
        assert "core 'droprow': HOLDBACK-LEAK" in result.stdout
        assert "counterexample interleaving:" in result.stdout
        assert "held back" in result.stdout

    def test_unknown_core_exits_two(self):
        result = self.run_cli("nosuch")
        assert result.returncode == 2
        assert "no causal core registered as 'nosuch'" in result.stderr

    def test_rejected_candidate_file_exits_two(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import socket\n", encoding="utf-8")
        result = self.run_cli(str(bad))
        assert result.returncode == 2
        assert "admission scan failed" in result.stderr

    def test_no_core_and_no_all_exits_two(self):
        result = self.run_cli()
        assert result.returncode == 2
        assert "name a core or pass --all" in result.stderr

    def test_all_skips_non_causal_baselines(self):
        result = self.run_cli(
            "--all", "--servers", "2", "--messages", "2", "--json"
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "core 'fifo': skipped" in result.stderr
        payload = json.loads(result.stdout)
        assert payload["ok"] is True
        checked = {entry["core"] for entry in payload["results"]}
        assert checked == {"matrix", "updates", "histories"}

    def test_json_reports_the_violation(self):
        result = self.run_cli(
            str(DROPROW), "--servers", "2", "--messages", "2", "--json"
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["ok"] is False
        (entry,) = payload["results"]
        assert entry["kind"] == "holdback-leak"
        assert entry["states"] == 19
        assert entry["trace"]
