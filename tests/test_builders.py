"""Unit tests for the topology builders (Figure 9 organizations)."""

import math

import pytest

from repro.errors import CyclicDomainGraphError, TopologyError
from repro.topology import (
    bus,
    daisy,
    default_domain_size,
    find_domain_cycle,
    ring,
    single_domain,
    tree,
    validate_topology,
)


class TestSingleDomain:
    def test_covers_all_servers(self):
        topo = single_domain(7)
        assert topo.server_count == 7
        assert len(topo.domains) == 1
        assert topo.routers == []

    def test_validates(self):
        validate_topology(single_domain(5))

    def test_zero_rejected(self):
        with pytest.raises(TopologyError):
            single_domain(0)


class TestBus:
    @pytest.mark.parametrize("n", [4, 10, 17, 50, 90, 150])
    def test_every_size_validates(self, n):
        topo = bus(n)
        validate_topology(topo)
        assert topo.server_count == n

    def test_default_domain_size_is_sqrt(self):
        assert default_domain_size(100) == 10
        assert default_domain_size(2) == 2

    def test_backbone_contains_exactly_the_routers(self):
        topo = bus(20, 5)
        backbone = topo.domain("D0")
        assert sorted(backbone.servers) == sorted(topo.routers)

    def test_server0_is_a_plain_leaf_member(self):
        """The benchmarks place the main agent on server 0; it must sit at
        the far end of a leaf, not on the backbone."""
        topo = bus(20, 5)
        assert not topo.is_router(0)

    def test_tiny_n_degrades_to_single_domain(self):
        topo = bus(3, 4)
        assert len(topo.domains) == 1

    def test_domain_sizes_balanced(self):
        topo = bus(22, 5)
        leaf_sizes = [d.size for d in topo.domains if d.domain_id != "D0"]
        assert max(leaf_sizes) - min(leaf_sizes) <= 1
        assert sum(leaf_sizes) == 22


class TestDaisy:
    @pytest.mark.parametrize("n,size", [(10, 4), (50, 8), (9, 3)])
    def test_validates(self, n, size):
        topo = daisy(n, size)
        validate_topology(topo)
        assert topo.server_count == n

    def test_chain_shape(self):
        topo = daisy(10, 4)
        cycle = find_domain_cycle(topo)
        assert cycle is None
        # consecutive domains share exactly one server
        domains = topo.domains
        for first, second in zip(domains, domains[1:]):
            shared = set(first.servers) & set(second.servers)
            assert len(shared) == 1

    def test_small_n_degrades(self):
        assert len(daisy(3, 4).domains) == 1


class TestTree:
    @pytest.mark.parametrize("n,fanout,size", [(13, 2, 4), (30, 3, 5), (60, 2, 5)])
    def test_validates(self, n, fanout, size):
        topo = tree(n, fanout=fanout, domain_size=size)
        validate_topology(topo)
        assert topo.server_count == n

    def test_child_shares_one_router_with_parent(self):
        topo = tree(13, fanout=2, domain_size=4)
        root = topo.domain("D0")
        for domain in topo.domains:
            if domain.domain_id == "D0":
                continue
            # every non-root domain shares exactly one server with some other
            overlaps = [
                len(set(domain.servers) & set(other.servers))
                for other in topo.domains
                if other.domain_id != domain.domain_id
            ]
            assert max(overlaps) == 1

    def test_small_n_degrades(self):
        assert len(tree(4, fanout=2, domain_size=5).domains) == 1

    def test_fanout_one_degenerates_to_a_chain_but_still_validates(self):
        topo = tree(40, fanout=1, domain_size=2)
        validate_topology(topo)
        assert topo.server_count == 40

    def test_bad_parameters_rejected(self):
        with pytest.raises(TopologyError):
            tree(10, fanout=0)
        with pytest.raises(TopologyError):
            tree(10, fanout=2, domain_size=1)
        with pytest.raises(TopologyError):
            tree(0)


class TestRing:
    def test_is_cyclic_on_purpose(self):
        topo = ring(4, 3)
        assert find_domain_cycle(topo) is not None
        with pytest.raises(CyclicDomainGraphError):
            validate_topology(topo)

    def test_too_small_ring_rejected(self):
        with pytest.raises(TopologyError):
            ring(2, 3)
