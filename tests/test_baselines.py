"""Tests for the §2 causal-broadcast baseline substrate."""

import pytest

from repro.baselines import BroadcastGroup
from repro.bench import run_baseline_unicast, run_remote_unicast
from repro.errors import ConfigurationError
from repro.simulation.network import UniformLatency


def make_group(size, collect=None, latency=None, seed=0):
    group = BroadcastGroup(size, latency=latency, seed=seed)
    logs = []
    for node_id in range(size):
        log = []
        logs.append(log)
        group.add_node(lambda s, p, log=log: log.append((s, p)))
    return group, logs


class TestBroadcastGroup:
    def test_broadcast_reaches_everyone(self):
        group, logs = make_group(4)
        group.sim.schedule(0.0, lambda: group.nodes[0].broadcast("hi"))
        group.run_until_idle()
        for log in logs:
            assert log == [(0, "hi")]

    def test_unicast_emulation_delivers_to_dest_only(self):
        group, logs = make_group(4)
        group.sim.schedule(0.0, lambda: group.nodes[0].broadcast("psst", dest=2))
        group.run_until_idle()
        assert logs[2] == [(0, "psst")]
        for node_id in (0, 1, 3):
            assert logs[node_id] == []
        # ...but everyone paid the wire and clock cost:
        assert group.packets_sent == 3

    def test_causal_order_across_senders(self):
        """Node 1 broadcasts after delivering node 0's broadcast; every
        member must deliver them in that order despite jitter."""
        group = BroadcastGroup(5, latency=UniformLatency(0.1, 30.0), seed=3)
        logs = [[] for _ in range(5)]

        def reactive(node_index):
            def handler(sender, payload):
                logs[node_index].append((sender, payload))
                if node_index == 1 and payload == "first":
                    group.nodes[1].broadcast("second")
            return handler

        for node_id in range(5):
            group.add_node(reactive(node_id))
        group.sim.schedule(0.0, lambda: group.nodes[0].broadcast("first"))
        group.run_until_idle()
        for log in logs:
            assert [p for _, p in log] == ["first", "second"]

    def test_fifo_from_one_sender_under_jitter(self):
        group = BroadcastGroup(4, latency=UniformLatency(0.1, 25.0), seed=9)
        logs = [[] for _ in range(4)]
        for node_id in range(4):
            group.add_node(lambda s, p, log=logs[node_id]: log.append(p))

        def blast():
            for i in range(6):
                group.nodes[0].broadcast(i)

        group.sim.schedule(0.0, blast)
        group.run_until_idle()
        for node_id in range(1, 4):
            assert logs[node_id] == [0, 1, 2, 3, 4, 5]
        assert all(node.heldback == 0 for node in group.nodes)

    def test_too_small_group_rejected(self):
        with pytest.raises(ConfigurationError):
            BroadcastGroup(1)

    def test_overpopulation_rejected(self):
        group, _ = make_group(2)
        with pytest.raises(ConfigurationError):
            group.add_node(lambda s, p: None)

    def test_run_before_population_rejected(self):
        group = BroadcastGroup(3)
        group.add_node(lambda s, p: None)
        with pytest.raises(ConfigurationError):
            group.run_until_idle()


class TestBaselineVsMom:
    def test_baseline_floods_the_wire(self):
        """One logical unicast costs n-1 packets on the baseline vs ≤3
        routed hops on the domained MOM."""
        n = 16
        baseline = run_baseline_unicast(n, rounds=5)
        mom = run_remote_unicast(n, topology="bus", rounds=5)
        # per logical message: baseline sends n-1 packets, MOM ≤ 3
        assert baseline.hops / baseline.messages == n - 1
        assert mom.hops / mom.messages <= 3

    def test_baseline_wire_grows_linearly_per_message(self):
        small = run_baseline_unicast(8, rounds=5)
        large = run_baseline_unicast(32, rounds=5)
        per_msg_small = small.wire_cells / small.messages
        per_msg_large = large.wire_cells / large.messages
        # (n-1) packets × n cells each → ~n² per logical message
        assert per_msg_large > 10 * per_msg_small

    def test_mom_beats_baseline_at_scale(self):
        n = 50
        baseline = run_baseline_unicast(n, rounds=5)
        mom = run_remote_unicast(n, topology="bus", rounds=5)
        assert mom.wire_cells < baseline.wire_cells / 10
