"""Tests for bus-level artifacts: trace export and the stats table."""

import io

import pytest

from repro.causality import check_trace, load_trace
from repro.errors import ConfigurationError
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.topology import bus as bus_topology
from repro.topology import single_domain


def run_pingpong(topology, **kwargs):
    mom = MessageBus(BusConfig(topology=topology, **kwargs))
    echo_id = mom.deploy(EchoAgent(), topology.server_count - 1)
    pinger = FunctionAgent(lambda ctx, s, p: None)
    pinger.on_boot = lambda ctx: ctx.send(echo_id, "x")
    mom.deploy(pinger, 0)
    mom.start()
    mom.run_until_idle()
    return mom


class TestExportAppTrace:
    def test_roundtrip_preserves_structure(self):
        mom = run_pingpong(bus_topology(9, 3))
        buffer = io.StringIO()
        count = mom.export_app_trace(buffer)
        assert count == 4  # 2 sends + 2 receives
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert len(loaded.messages) == 2
        assert check_trace(loaded).respects_causality

    def test_exported_ids_are_strings(self):
        mom = run_pingpong(single_domain(2))
        buffer = io.StringIO()
        mom.export_app_trace(buffer)
        assert "A0.0" in buffer.getvalue()  # the pinger agent's repr
        assert "A1.0" in buffer.getvalue()  # the echo agent's repr

    def test_local_orders_survive_export(self):
        """A process's interleaved send/receive order must be preserved —
        otherwise exported artifacts could hide violations."""
        mom = run_pingpong(single_domain(2))
        buffer = io.StringIO()
        mom.export_app_trace(buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        pinger = repr(mom.app_trace.messages[0].src)
        events = loaded.events_of(pinger)
        kinds = [event.kind.value for event in events]
        assert kinds == ["send", "receive"]

    def test_disabled_trace_rejected(self):
        mom = MessageBus(
            BusConfig(topology=single_domain(2), record_app_trace=False)
        )
        with pytest.raises(ConfigurationError):
            mom.export_app_trace(io.StringIO())


class TestStatsTable:
    def test_table_lists_every_server(self):
        mom = run_pingpong(bus_topology(9, 3))
        table = mom.stats_table()
        for server_id in range(9):
            assert f"\n{server_id:>6}  " in "\n" + table

    def test_quiescent_run_has_empty_queues(self):
        mom = run_pingpong(bus_topology(9, 3))
        table = mom.stats_table()
        # the unacked and heldback columns must all be zero at quiescence
        for server in mom.servers.values():
            assert server.channel.unacked_count == 0
            assert server.channel.heldback_count == 0
        assert "wire_cells=" in table

    def test_crashed_server_marked(self):
        mom = MessageBus(BusConfig(topology=single_domain(3)))
        mom.server(1).crash()
        assert "crashed" in mom.stats_table()
