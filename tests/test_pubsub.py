"""Tests for the topic/queue destination agents."""

import pytest

from repro.errors import AgentError
from repro.mom import BusConfig, FunctionAgent, MessageBus
from repro.mom.agent import Agent
from repro.pubsub import (
    Delivery,
    Publish,
    Put,
    QueueAgent,
    Register,
    Subscribe,
    TopicAgent,
    Unsubscribe,
)
from repro.topology import bus as bus_topology
from repro.topology import single_domain


class Collector(Agent):
    def __init__(self):
        super().__init__()
        self.got = []

    def react(self, ctx, sender, payload):
        self.got.append(payload)


def boot_agent(action):
    agent = FunctionAgent(lambda ctx, s, p: None)
    agent.on_boot = action
    return agent


class TestTopic:
    def make(self, topology=None):
        mom = MessageBus(BusConfig(topology=topology or single_domain(3)))
        topic = TopicAgent()
        topic_id = mom.deploy(topic, 1)
        return mom, topic, topic_id

    def test_fanout_to_subscribers(self):
        mom, topic, topic_id = self.make()
        subs = [Collector(), Collector()]
        sub_ids = [mom.deploy(s, 2) for s in subs]

        def boot(ctx):
            for sid in sub_ids:
                ctx.send(topic_id, Subscribe(sid))
            ctx.send(topic_id, Publish("news"))

        mom.deploy(boot_agent(boot), 0)
        mom.start()
        mom.run_until_idle()
        for sub in subs:
            assert [d.body for d in sub.got] == ["news"]
        assert topic.published == 1

    def test_subscription_ordered_before_publish_causally(self):
        """Subscribe then Publish from the same sender: FIFO guarantees the
        subscriber gets the publication."""
        mom = MessageBus(BusConfig(topology=bus_topology(9, 3)))
        topic = TopicAgent()
        topic_id = mom.deploy(topic, 8)
        sub = Collector()
        sub_id = mom.deploy(sub, 4)

        def boot(ctx):
            ctx.send(topic_id, Subscribe(sub_id))
            ctx.send(topic_id, Publish("first"))

        mom.deploy(boot_agent(boot), 0)
        mom.start()
        mom.run_until_idle()
        assert [d.body for d in sub.got] == ["first"]
        assert mom.check_app_causality().respects_causality

    def test_unsubscribe_stops_fanout(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        topic = TopicAgent()
        topic_id = mom.deploy(topic, 1)
        sub = Collector()
        sub_id = mom.deploy(sub, 0)

        def boot(ctx):
            ctx.send(topic_id, Subscribe(sub_id))
            ctx.send(topic_id, Publish("seen"))
            ctx.send(topic_id, Unsubscribe(sub_id))
            ctx.send(topic_id, Publish("unseen"))

        mom.deploy(boot_agent(boot), 0)
        mom.start()
        mom.run_until_idle()
        assert [d.body for d in sub.got] == ["seen"]

    def test_duplicate_subscribe_is_idempotent(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        topic = TopicAgent()
        topic_id = mom.deploy(topic, 1)
        sub = Collector()
        sub_id = mom.deploy(sub, 0)

        def boot(ctx):
            ctx.send(topic_id, Subscribe(sub_id))
            ctx.send(topic_id, Subscribe(sub_id))
            ctx.send(topic_id, Publish("once"))

        mom.deploy(boot_agent(boot), 0)
        mom.start()
        mom.run_until_idle()
        assert len(sub.got) == 1

    def test_delivery_carries_publisher_identity(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        topic = TopicAgent()
        topic_id = mom.deploy(topic, 1)
        sub = Collector()
        sub_id = mom.deploy(sub, 0)

        def boot(ctx):
            ctx.send(topic_id, Subscribe(sub_id))
            ctx.send(topic_id, Publish("x"))

        publisher = boot_agent(boot)
        publisher_id = mom.deploy(publisher, 0)
        mom.start()
        mom.run_until_idle()
        assert sub.got[0].source == publisher_id

    def test_unsupported_payload_raises(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        topic_id = mom.deploy(TopicAgent(), 1)
        mom.deploy(boot_agent(lambda ctx: ctx.send(topic_id, "garbage")), 0)
        mom.start()
        with pytest.raises(AgentError):
            mom.run_until_idle()


class TestQueue:
    def test_round_robin_dispatch(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        queue = QueueAgent()
        queue_id = mom.deploy(queue, 1)
        consumers = [Collector(), Collector()]
        ids = [mom.deploy(c, 0) for c in consumers]

        def boot(ctx):
            for cid in ids:
                ctx.send(queue_id, Register(cid))
            for i in range(6):
                ctx.send(queue_id, Put(i))

        mom.deploy(boot_agent(boot), 0)
        mom.start()
        mom.run_until_idle()
        assert [d.body for d in consumers[0].got] == [0, 2, 4]
        assert [d.body for d in consumers[1].got] == [1, 3, 5]

    def test_buffering_until_consumer_registers(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        queue = QueueAgent()
        queue_id = mom.deploy(queue, 1)
        consumer = Collector()
        consumer_id = mom.deploy(consumer, 0)

        def boot(ctx):
            ctx.send(queue_id, Put("early"))
            ctx.send(queue_id, Register(consumer_id))

        mom.deploy(boot_agent(boot), 0)
        mom.start()
        mom.run_until_idle()
        assert [d.body for d in consumer.got] == ["early"]
        assert queue.buffered == []

    def test_unsupported_payload_raises(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        queue_id = mom.deploy(QueueAgent(), 1)
        mom.deploy(boot_agent(lambda ctx: ctx.send(queue_id, 42)), 0)
        mom.start()
        with pytest.raises(AgentError):
            mom.run_until_idle()
