"""Tests for trace JSONL export/import."""

import io

import pytest

from hypothesis import given, settings, strategies as st

from repro.causality import (
    CausalOrder,
    Message,
    Trace,
    check_trace,
    dump_trace,
    load_trace,
)
from repro.errors import TraceError
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.topology import bus as bus_topology


def roundtrip(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    return load_trace(buffer)


class TestRoundtrip:
    def test_simple_trace(self):
        trace = Trace()
        m = Message(1, "p", "q", payload={"k": [1, 2]})
        trace.record_send(m)
        trace.record_receive(m)
        loaded = roundtrip(trace)
        assert len(loaded.messages) == 1
        copy = loaded.message(1)
        assert copy.src == "p" and copy.dst == "q"
        assert copy.payload == {"k": [1, 2]}
        assert loaded.was_received(copy)

    def test_tuple_mids_survive(self):
        trace = Trace()
        m = Message(("hop", 3, 19), 3, 7)
        trace.record_send(m)
        trace.record_receive(m)
        loaded = roundtrip(trace)
        assert loaded.message(("hop", 3, 19)).mid == ("hop", 3, 19)

    def test_local_orders_preserved(self):
        trace = Trace()
        m1 = Message(1, "p", "q")
        m2 = Message(2, "p", "q")
        trace.record_send(m1)
        trace.record_send(m2)
        trace.record_receive(m2)
        trace.record_receive(m1)
        loaded = roundtrip(trace)
        assert loaded.received_in_order("q") == [
            loaded.message(2),
            loaded.message(1),
        ]

    def test_checker_verdict_survives_roundtrip(self):
        trace = Trace()
        m1 = Message(1, "p", "q")
        m2 = Message(2, "p", "q")
        trace.record_send(m1)
        trace.record_send(m2)
        trace.record_receive(m2)
        trace.record_receive(m1)  # FIFO violation
        original = check_trace(trace)
        loaded = check_trace(roundtrip(trace))
        assert original.respects_causality == loaded.respects_causality
        assert len(original.violations) == len(loaded.violations)

    def test_unserializable_payload_degrades_to_repr(self):
        trace = Trace()
        m = Message(1, "p", "q", payload=object())
        trace.record_send(m)
        loaded = roundtrip(trace)
        assert "object" in loaded.message(1).payload

    def test_mom_trace_roundtrips(self):
        mom = MessageBus(BusConfig(topology=bus_topology(9, 3)))
        echo_id = mom.deploy(EchoAgent(), 7)
        pinger = FunctionAgent(lambda ctx, s, p: None)
        pinger.on_boot = lambda ctx: ctx.send(echo_id, "x")
        mom.deploy(pinger, 0)
        mom.start()
        mom.run_until_idle()
        # AgentId endpoints are not JSON; export at the string level
        text_trace = Trace()
        for message in mom.app_trace.messages:
            copy = Message(message.mid, str(message.src), str(message.dst))
            text_trace.record_send(copy)
            if mom.app_trace.was_received(message):
                text_trace.record_receive(copy)
        loaded = roundtrip(text_trace)
        assert len(loaded.messages) == len(mom.app_trace.messages)


class TestLoadErrors:
    def test_bad_json_rejected(self):
        with pytest.raises(TraceError, match="line 1"):
            load_trace(io.StringIO("{not json\n"))

    def test_missing_field_rejected(self):
        with pytest.raises(TraceError, match="missing field"):
            load_trace(io.StringIO('{"kind": "send", "mid": 1, "src": "p"}\n'))

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError, match="unknown kind"):
            load_trace(
                io.StringIO(
                    '{"kind": "peek", "mid": 1, "src": "p", "dst": "q"}\n'
                )
            )

    def test_receive_of_unknown_message_rejected(self):
        with pytest.raises(TraceError, match="unknown message"):
            load_trace(
                io.StringIO(
                    '{"kind": "receive", "mid": 1, "src": "p", "dst": "q"}\n'
                )
            )

    def test_blank_lines_ignored(self):
        trace = Trace()
        m = Message(1, "p", "q")
        trace.record_send(m)
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        text = buffer.getvalue() + "\n\n"
        loaded = load_trace(io.StringIO(text))
        assert len(loaded.messages) == 1


mids = st.one_of(
    st.integers(),
    st.text(max_size=8),
    st.tuples(st.text(max_size=4), st.integers()),
)


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
            st.booleans(),
        ).filter(lambda t: t[0] != t[1]),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=50, deadline=None)
def test_random_traces_roundtrip(ops):
    trace = Trace()
    for index, (src, dst, receive) in enumerate(ops):
        m = Message(index, src, dst)
        trace.record_send(m)
        if receive:
            trace.record_receive(m)
    loaded = roundtrip(trace)
    assert len(loaded.messages) == len(trace.messages)
    for original in trace.messages:
        copy = loaded.message(original.mid)
        assert (copy.src, copy.dst) == (original.src, original.dst)
        assert loaded.was_received(copy) == trace.was_received(original)
