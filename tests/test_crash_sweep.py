"""Systematic crash-point sweep: crash each role at every instant.

The crash tests in test_failures.py pick a handful of crash times; this
sweep is exhaustive over a time grid — the recovery invariants (atomic
reactions, exactly-once via matrix-clock dedup, causal order) must hold
no matter *when* the failure lands: mid-send, mid-commit, mid-reaction,
between ack and removal, during the hold-back drain...
"""

import pytest

from repro.mom import BusConfig, MessageBus
from repro.mom.agent import Agent
from repro.topology import bus as bus_topology
from repro.topology import single_domain


class Streamer(Agent):
    """Sends `count` sequenced messages, one per self-clocked reaction."""

    def __init__(self, target, count):
        super().__init__()
        self.target = target
        self.count = count
        self.next = 0

    def on_boot(self, ctx):
        self._step(ctx)

    def react(self, ctx, sender, payload):
        self._step(ctx)

    def _step(self, ctx):
        if self.next < self.count:
            ctx.send(self.target, self.next)
            self.next += 1
            ctx.send(ctx.my_id, "tick")


class Sink(Agent):
    def __init__(self):
        super().__init__()
        self.seen = []

    def react(self, ctx, sender, payload):
        self.seen.append(payload)


def run_with_crash(
    topology, victim, crash_at, down_for=250.0, count=8, clock="matrix"
):
    mom = MessageBus(BusConfig(topology=topology, clock_algorithm=clock))
    sink = Sink()
    sink_id = mom.deploy(sink, topology.server_count - 1)
    mom.deploy(Streamer(sink_id, count), 0)
    mom.sim.schedule_at(crash_at, lambda: _crash(mom, victim))
    mom.sim.schedule_at(crash_at + down_for, lambda: _recover(mom, victim))
    mom.start()
    mom.run_until_idle()
    return mom, sink


def _crash(mom, victim):
    server = mom.server(victim)
    if not server.is_crashed:
        server.crash()


def _recover(mom, victim):
    server = mom.server(victim)
    if server.is_crashed:
        server.recover()


# The whole failure-free run finishes in ~250 ms; a 10 ms grid lands
# crashes inside every phase of the protocol at least once.
GRID = [float(t) for t in range(5, 250, 10)]


class TestReceiverCrashSweep:
    @pytest.mark.parametrize("clock", ["matrix", "updates"])
    @pytest.mark.parametrize("crash_at", GRID)
    def test_exactly_once_in_order(self, crash_at, clock):
        topo = single_domain(3)
        mom, sink = run_with_crash(
            topo, victim=2, crash_at=crash_at, clock=clock
        )
        assert sink.seen == list(range(8)), f"crash at {crash_at}ms broke it"
        assert mom.check_app_causality().respects_causality


class TestSenderCrashSweep:
    @pytest.mark.parametrize("crash_at", GRID[::2])
    def test_exactly_once_in_order(self, crash_at):
        topo = single_domain(3)
        mom, sink = run_with_crash(topo, victim=0, crash_at=crash_at)
        assert sink.seen == list(range(8)), f"crash at {crash_at}ms broke it"
        assert mom.check_app_causality().respects_causality


class TestRouterCrashSweep:
    @pytest.mark.parametrize("crash_at", GRID[::2])
    def test_exactly_once_in_order(self, crash_at):
        topo = bus_topology(9, 3)
        router = topo.domains_of(0)[0].servers[-1]
        mom, sink = run_with_crash(topo, victim=router, crash_at=crash_at)
        assert sink.seen == list(range(8)), f"crash at {crash_at}ms broke it"
        assert mom.check_app_causality().respects_causality
