"""The perf-regression gate (``tools/bench_gate.py``).

Unit tests of the comparator plus the keep-them-honest check: the
committed ``BENCH_*.json`` snapshots must pass the committed baseline,
so CI fails whenever someone regenerates one without the other.
"""

import importlib.util
import json
import os

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

spec = importlib.util.spec_from_file_location(
    "bench_gate", os.path.join(REPO, "tools", "bench_gate.py")
)
bench_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_gate)


class TestResolve:
    DOC = {"a": {"b": [10, {"c": 42}]}, "flag": True}

    def test_nested_dicts_and_lists(self):
        assert bench_gate.resolve(self.DOC, "a.b.1.c") == 42
        assert bench_gate.resolve(self.DOC, "a.b.0") == 10
        assert bench_gate.resolve(self.DOC, "flag") is True

    def test_missing_paths(self):
        missing = bench_gate._MISSING
        assert bench_gate.resolve(self.DOC, "a.x") is missing
        assert bench_gate.resolve(self.DOC, "a.b.9") is missing
        assert bench_gate.resolve(self.DOC, "a.b.nope") is missing
        assert bench_gate.resolve(self.DOC, "flag.deeper") is missing


class TestCheckOne:
    def test_exact_number(self):
        ok, _ = bench_gate.check_one({"x": 2048.0}, {"path": "x", "expect": 2048.0})
        assert ok
        ok, msg = bench_gate.check_one({"x": 2049.0}, {"path": "x", "expect": 2048.0})
        assert not ok and "FAIL" in msg

    def test_rtol_band(self):
        check = {"path": "x", "expect": 100.0, "rtol": 0.05}
        assert bench_gate.check_one({"x": 104.9}, check)[0]
        assert not bench_gate.check_one({"x": 106.0}, check)[0]

    def test_atol_band(self):
        check = {"path": "x", "expect": 10.0, "atol": 0.5}
        assert bench_gate.check_one({"x": 10.5}, check)[0]
        assert not bench_gate.check_one({"x": 10.6}, check)[0]

    def test_bool_expect_is_exact(self):
        assert bench_gate.check_one({"x": True}, {"path": "x", "expect": True})[0]
        assert not bench_gate.check_one({"x": 1.0}, {"path": "x", "expect": True})[0]

    def test_min_max_bounds(self):
        assert bench_gate.check_one({"r": 1.05}, {"path": "r", "max": 1.10})[0]
        assert not bench_gate.check_one({"r": 1.2}, {"path": "r", "max": 1.10})[0]
        assert bench_gate.check_one({"r": 3.0}, {"path": "r", "min": 2.0})[0]
        assert not bench_gate.check_one({"r": 1.0}, {"path": "r", "min": 2.0})[0]

    def test_missing_path_fails_unless_optional(self):
        assert not bench_gate.check_one({}, {"path": "gone", "expect": 1})[0]
        ok, msg = bench_gate.check_one(
            {}, {"path": "gone", "expect": 1, "optional": True}
        )
        assert ok and "SKIP" in msg

    def test_malformed_check_fails(self):
        assert not bench_gate.check_one({"x": 1}, {"path": "x"})[0]
        assert not bench_gate.check_one(
            {"x": "str"}, {"path": "x", "max": 2}
        )[0]


class TestBaselineSchema:
    def test_good_baseline_validates(self):
        baseline = {
            "format": bench_gate.FORMAT,
            "targets": [
                {"file": "B.json", "checks": [{"path": "x", "expect": 1}]}
            ],
        }
        assert bench_gate.validate_baseline(baseline) == []

    def test_bad_format_and_shape(self):
        assert bench_gate.validate_baseline({"format": "nope"})
        errors = bench_gate.validate_baseline(
            {
                "format": bench_gate.FORMAT,
                "targets": [
                    {"file": "B.json", "checks": [{"path": "x"}]},
                    {"checks": [{"expect": 1}]},
                ],
            }
        )
        assert len(errors) >= 3

    def test_runtime_section_validates(self):
        baseline = {
            "format": bench_gate.FORMAT,
            "targets": [
                {"file": "B.json", "checks": [{"path": "x", "expect": 1}]}
            ],
            "runtime": [
                {
                    "name": "lint",
                    "argv": ["{python}", "-c", "pass"],
                    "max_seconds": 5.0,
                    "warmup": True,
                    "best_of": 2,
                    "env": {"PYTHONPATH": "src"},
                }
            ],
        }
        assert bench_gate.validate_baseline(baseline) == []

    def test_bad_runtime_entries_fail_closed(self):
        bad_entries = [
            {"argv": ["{python}"], "max_seconds": 1},  # no name
            {"name": "a", "argv": [], "max_seconds": 1},  # empty argv
            {"name": "b", "argv": ["x"], "max_seconds": 0},  # zero budget
            {"name": "c", "argv": ["x"], "max_seconds": 1, "best_of": 0},
            {"name": "d", "argv": ["x"], "max_seconds": 1, "env": {"k": 1}},
        ]
        baseline = {
            "format": bench_gate.FORMAT,
            "targets": [
                {"file": "B.json", "checks": [{"path": "x", "expect": 1}]}
            ],
            "runtime": bad_entries,
        }
        errors = bench_gate.validate_baseline(baseline)
        assert len(errors) >= len(bad_entries)
        assert bench_gate.validate_baseline(
            {
                "format": bench_gate.FORMAT,
                "targets": [
                    {"file": "B.json", "checks": [{"path": "x", "expect": 1}]}
                ],
                "runtime": "not-a-list",
            }
        )


class TestRuntimeBands:
    def test_fast_command_passes_its_band(self):
        ok, verdict = bench_gate.run_runtime_entry(
            {
                "name": "noop",
                "argv": ["{python}", "-c", "pass"],
                "max_seconds": 30.0,
            },
            REPO,
        )
        assert ok and "ok" in verdict and "noop" in verdict

    def test_slow_command_fails_its_band(self):
        ok, verdict = bench_gate.run_runtime_entry(
            {
                "name": "sleepy",
                "argv": [
                    "{python}",
                    "-c",
                    "import time; time.sleep(0.3)",
                ],
                "max_seconds": 0.05,
            },
            REPO,
        )
        assert not ok and "FAIL" in verdict and "sleepy" in verdict

    def test_nonzero_exit_fails_regardless_of_speed(self):
        ok, verdict = bench_gate.run_runtime_entry(
            {
                "name": "crasher",
                "argv": [
                    "{python}",
                    "-c",
                    "import sys; print('boom', file=sys.stderr); sys.exit(3)",
                ],
                "max_seconds": 30.0,
            },
            REPO,
        )
        assert not ok and "exit 3" in verdict and "boom" in verdict

    def test_warmup_run_is_not_timed(self):
        # The first run writes a marker into the per-entry temp cache;
        # the timed run sees it and exits fast, so the entry passes even
        # though the warmup itself would have blown the band.
        script = (
            "import os, sys, time\n"
            "path = sys.argv[1]\n"
            "if os.path.exists(path):\n"
            "    sys.exit(0)\n"
            "open(path, 'w').write('warm')\n"
            "time.sleep(0.4)\n"
        )
        ok, verdict = bench_gate.run_runtime_entry(
            {
                "name": "cached",
                "argv": ["{python}", "-c", script, "{cache}"],
                "max_seconds": 0.35,
                "warmup": True,
            },
            REPO,
        )
        assert ok, verdict

    def test_run_gate_skips_runtime_when_disabled(self, tmp_path, capsys):
        baseline = {
            "format": bench_gate.FORMAT,
            "targets": [
                {"file": "B.json", "checks": [{"path": "x", "expect": 1}]}
            ],
            "runtime": [
                {
                    "name": "would-fail",
                    "argv": ["{python}", "-c", "import sys; sys.exit(9)"],
                    "max_seconds": 30.0,
                }
            ],
        }
        bpath = tmp_path / "baseline.json"
        bpath.write_text(json.dumps(baseline))
        (tmp_path / "B.json").write_text(json.dumps({"x": 1}))
        assert (
            bench_gate.run_gate(str(bpath), str(tmp_path), runtime=False) == 0
        )
        assert (
            bench_gate.run_gate(str(bpath), str(tmp_path), runtime=True) == 1
        )
        assert "would-fail" in capsys.readouterr().out


class TestRunGate:
    def _write(self, tmp_path, baseline, snapshot):
        bpath = tmp_path / "baseline.json"
        bpath.write_text(json.dumps(baseline))
        (tmp_path / "B.json").write_text(json.dumps(snapshot))
        return str(bpath)

    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        baseline = {
            "format": bench_gate.FORMAT,
            "targets": [
                {"file": "B.json", "checks": [{"path": "x", "expect": 5}]}
            ],
        }
        bpath = self._write(tmp_path, baseline, {"x": 5})
        assert bench_gate.run_gate(bpath, str(tmp_path)) == 0
        (tmp_path / "B.json").write_text(json.dumps({"x": 6}))
        assert bench_gate.run_gate(bpath, str(tmp_path)) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_snapshot_fails(self, tmp_path, capsys):
        baseline = {
            "format": bench_gate.FORMAT,
            "targets": [
                {"file": "GONE.json", "checks": [{"path": "x", "expect": 1}]}
            ],
        }
        bpath = tmp_path / "baseline.json"
        bpath.write_text(json.dumps(baseline))
        assert bench_gate.run_gate(str(bpath), str(tmp_path)) == 1

    def test_broken_baseline_fails_closed(self, tmp_path, capsys):
        bpath = tmp_path / "baseline.json"
        bpath.write_text(json.dumps({"format": "wrong", "targets": []}))
        assert bench_gate.run_gate(str(bpath), str(tmp_path)) == 1


class TestCommittedSnapshots:
    """The actual gate CI runs: committed baselines vs committed BENCH
    files. Regenerate both together (`export_bench.py` then update
    `tools/bench_baseline.json`) when a change legitimately moves them."""

    def test_committed_snapshots_pass_the_gate(self, capsys):
        # runtime=False: the live linter wall-clock bands run in the CI
        # bench-gate job (and in TestRuntimeBands with synthetic
        # commands); re-timing the linter here would double suite time.
        code = bench_gate.run_gate(
            os.path.join(REPO, "tools", "bench_baseline.json"),
            REPO,
            runtime=False,
        )
        out = capsys.readouterr().out
        assert code == 0, f"bench gate failed on committed snapshots:\n{out}"

    def test_committed_baseline_declares_linter_bands(self):
        with open(os.path.join(REPO, "tools", "bench_baseline.json")) as fh:
            baseline = json.load(fh)
        entries = {e["name"]: e for e in baseline.get("runtime", [])}
        cold = entries["analysis-lint-cold"]
        warm = entries["analysis-lint-warm"]
        assert cold["max_seconds"] == pytest.approx(12.0)
        assert warm["max_seconds"] == pytest.approx(2.5)
        assert warm.get("warmup") is True
        for entry in (cold, warm):
            assert "repro.analysis" in entry["argv"]
            assert "{cache}" in entry["argv"]
            assert entry["env"]["PYTHONPATH"] == "src"

    def test_gate_covers_the_metrics_sections(self):
        with open(os.path.join(REPO, "tools", "bench_baseline.json")) as fh:
            baseline = json.load(fh)
        paths = [
            c["path"]
            for t in baseline["targets"]
            for c in t["checks"]
        ]
        assert any(p.startswith("metrics.") for p in paths)
        assert "metrics_overhead.overhead_ratio" in paths
        overhead = next(
            c
            for t in baseline["targets"]
            for c in t["checks"]
            if c["path"] == "metrics_overhead.overhead_ratio"
        )
        assert overhead.get("max") == pytest.approx(1.10)
