"""Differential oracle: sharded-parallel runs are bit-identical to sequential.

The parallel kernel's whole contract (docs/parallel.md) is that sharding
is *invisible*: for every seed scenario the sequential and sharded
executions must produce

- byte-identical ``bus.cost_snapshot()`` JSON,
- identical per-agent delivery orders (the app trace, event for event),
- identical experiment metrics and simulated clocks,

with the causality sanitizer attached inside every shard worker (it is
installed by monkeypatching ``MessageBus.__init__``, which forked workers
inherit), so any window-boundary reordering the conservative sync might
smuggle in is caught twice: once by the byte comparison, once as a
``SanitizerViolation`` shipped back from the worker.

The scenario zoo deliberately spans the risky behaviors: multi-domain
relay chains, open-loop churn, crash/failover, partitions, broadcast
fan-out, and the cross-domain ordering patterns of the ordering-zoo
bench.
"""

import json
import os

import pytest

from repro.analysis import sanitizer
from repro.mom.agent import Agent, EchoAgent
from repro.mom.config import BusConfig
from repro.mom.parallel import ShardedBus, make_bus
from repro.mom.workloads import (
    BroadcastDriver,
    OpenLoopDriver,
    PingPongDriver,
    SinkAgent,
)
from repro.topology import builders


class Recorder(Agent):
    """Logs every delivery as (sender, payload, now) — the raw order."""

    def __init__(self):
        super().__init__()
        self.seen = []

    def react(self, ctx, sender, payload):
        self.seen.append((repr(sender), payload, ctx.now))


@pytest.fixture(autouse=True)
def config_controls_parallel(monkeypatch):
    """These tests pin the execution mode via the config field; a
    suite-level ``REPRO_PARALLEL`` override (the CI parallel job) would
    otherwise turn the sequential oracle itself sharded."""
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)


@pytest.fixture(autouse=True)
def sanitized():
    """Attach the causality sanitizer to every bus — including the ones
    the forked shard workers build (they inherit the patched class).

    A ``REPRO_SANITIZE=1`` suite run installs the hook once in conftest;
    uninstalling it here would also strip any tracer patch stacked on
    top of it (``REPRO_SANITIZE=1 REPRO_TRACE=1``), so only remove what
    this fixture itself installed."""
    installed_here = not sanitizer.is_installed()
    if installed_here:
        sanitizer.install()
    yield
    if installed_here:
        sanitizer.uninstall()


def _config(parallel, *, seed=0, clock="matrix", topology=None, workers=4):
    return BusConfig(
        topology=topology if topology is not None else builders.bus(12, 4),
        clock_algorithm=clock,
        seed=seed,
        parallel=parallel,
        workers=workers,
        record_hop_trace=True,
    )


def _trace_dump(trace):
    return {
        str(process): [
            (event.kind.name, repr(event.message))
            for event in trace.events_of(process)
        ]
        for process in trace.processes
    }


def _observe(bus, agents):
    """Everything the differential comparison pins, JSON-canonical."""
    return {
        "now": bus.sim.now,
        "cost": json.dumps(bus.cost_snapshot(), sort_keys=True),
        "metrics": bus.metrics.snapshot(),
        "stats": bus.stats_table(),
        "app_trace": _trace_dump(bus.app_trace),
        "hop_trace": _trace_dump(bus.hop_trace),
        "causal": bus.check_app_causality().respects_causality,
        "wire_cells": bus.network.cells_transmitted,
        "persisted": bus.total_persisted_cells(),
        "deliveries": {
            name: list(getattr(agent, attr))
            for name, (agent, attr) in agents.items()
        },
    }


def _explain_divergence(seq_bus, par_bus):
    """Self-explanation of a failed differential (the diff --watch mode):
    with tracing on, run the causal diff over both event streams, write
    both dumps as flight-recorder artifacts (CI uploads those on
    failure), and return the first-divergence report."""
    from repro.obs import flight_recorder, shardmon, watch_explain
    from repro.obs.export import TraceDump, write_jsonl

    tracer = getattr(seq_bus, "_obs_tracer", None)
    if tracer is None:
        return (
            "observations diverged (re-run with REPRO_TRACE=1 for a "
            "causal diff of the two event streams)"
        )
    try:
        seq_dump = TraceDump.from_tracer(tracer)
        par_dump = shardmon.merged_trace_dump(par_bus)
        artifact = flight_recorder.dump(tracer, "differential")
        with open(
            os.path.join(artifact, "parallel-events.jsonl"), "w"
        ) as stream:
            write_jsonl(par_dump, stream)
        report = watch_explain(seq_dump, par_dump)
    except Exception as exc:  # diagnosis must never mask the failure
        return f"observations diverged (causal diff unavailable: {exc})"
    if report is None:
        return (
            "observations diverged but the canonical event streams "
            f"match — check non-traced state (dumps: {artifact})"
        )
    return f"{report}\n  dumps: {artifact}"


def _differential(build, **config_kwargs):
    """Run ``build`` sequentially and sharded; the observations must match
    byte for byte. Returns the parallel observation for extra checks.

    On a mismatch with tracing installed (REPRO_TRACE=1), the failure
    explains itself: the assertion message carries the causal diff of
    the two runs and the paths of the dumped event streams."""
    seq_bus, seq_agents = build(_config("off", **config_kwargs))
    seq_bus.start()
    seq_bus.run_until_idle()
    seq = _observe(seq_bus, seq_agents)

    par_bus, par_agents = build(_config("auto", **config_kwargs))
    assert isinstance(par_bus, ShardedBus), "scenario must be shard-eligible"
    par_bus.start()
    par_bus.run_until_idle()
    par = _observe(par_bus, par_agents)

    if par != seq:
        pytest.fail(
            "sequential and sharded runs diverged:\n"
            + _explain_divergence(seq_bus, par_bus)
        )
    assert par["causal"]
    return par


# ----------------------------------------------------------------------
# The scenario zoo
# ----------------------------------------------------------------------


@pytest.mark.parametrize("clock", ["matrix", "updates"])
@pytest.mark.parametrize("seed", [0, 7])
def test_multi_domain_pingpong(clock, seed):
    """Cross-domain ping-pong over the 3-domain bus organization."""

    def build(config):
        bus = make_bus(config)
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(12)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        return bus, {"rtts": (driver, "rtts")}

    _differential(build, clock=clock, seed=seed)


def test_churn_open_loop():
    """Open-loop churn: three paced streams crossing domain borders at
    once, so every LBTS window carries in-transit traffic both ways."""

    def build(config):
        bus = make_bus(config)
        agents = {}
        for i, (src, dst) in enumerate([(0, 9), (9, 0), (4, 11)]):
            sink = SinkAgent()
            sink_id = bus.deploy(sink, dst)
            driver = OpenLoopDriver(period_ms=7.0, count=15)
            driver.bind(sink_id)
            bus.deploy(driver, src)
            agents[f"sojourn{i}"] = (sink, "sojourn_ms")
        return bus, agents

    _differential(build)


@pytest.mark.parametrize("victim", [5, 9])
def test_crash_failover(victim):
    """A mid-run crash + recovery on a router (5) and a leaf (9): the
    retransmission/failover machinery must replay identically."""

    def build(config):
        bus = make_bus(config)
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(10)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        bus.schedule_crash(40.0, victim, 300.0)
        return bus, {"rtts": (driver, "rtts")}

    _differential(build)


def test_partition_heal():
    """A scripted partition between two routers, healing mid-run."""

    def build(config):
        bus = make_bus(config)
        echo_id = bus.deploy(EchoAgent(), 11)
        driver = PingPongDriver(10)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        bus.schedule_partition(30.0, 3, 4, 200.0)
        return bus, {"rtts": (driver, "rtts")}

    _differential(build)


def test_broadcast_fan_in():
    """Broadcast to an echo on every server: maximal cross-shard fan-out
    and fan-in through the routers each round."""

    def build(config):
        bus = make_bus(config)
        targets = [
            bus.deploy(EchoAgent(), server)
            for server in config.topology.servers
            if server != 0
        ]
        driver = BroadcastDriver(3)
        driver.bind(targets)
        bus.deploy(driver, 0)
        return bus, {"rounds": (driver, "round_times")}

    _differential(build)


@pytest.mark.parametrize("clock", ["matrix", "updates"])
def test_ordering_zoo_scripted(clock):
    """The ordering zoo: concurrent scripted sends from three domains into
    one sink, interleaved with relayed traffic — the delivery order at the
    sink is exactly the causal order the sequential kernel computes."""

    def build(config):
        bus = make_bus(config)
        sink = Recorder()
        sink_id = bus.deploy(sink, 6)
        senders = [bus.deploy(EchoAgent(), server) for server in (0, 4, 11)]
        for step in range(8):
            for i, sender in enumerate(senders):
                bus.schedule_send(
                    1.0 + 3.0 * step + 0.5 * i, sender, sink_id,
                    ("zoo", i, step),
                )
        return bus, {"seen": (sink, "seen")}

    _differential(build, clock=clock, topology=builders.daisy(16, 4))


def test_tree_topology_deep_routes():
    """Tree organization: deliveries relayed through several domains, so
    cross-shard packets themselves cross shards again downstream."""

    def build(config):
        bus = make_bus(config)
        leaf = max(config.topology.servers)
        echo_id = bus.deploy(EchoAgent(), leaf)
        driver = PingPongDriver(8)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        return bus, {"rtts": (driver, "rtts")}

    _differential(build, topology=builders.tree(14, fanout=2, domain_size=4))


def test_obs_trace_rings_merge_across_shards():
    """With the observability tracer installed (REPRO_TRACE=1 semantics),
    every worker's bus auto-attaches a tracer through the forked class
    patch; the parent merges the per-shard event rings into one
    time-ordered stream carrying exactly the sequential run's events."""
    from collections import Counter

    from repro.obs import install as obs_install
    from repro.obs import is_installed as obs_is_installed
    from repro.obs import uninstall as obs_uninstall

    def run(parallel):
        bus = make_bus(_config(parallel))
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(5)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        bus.start()
        bus.run_until_idle()
        return bus

    # only install (and later remove) the hook if a REPRO_TRACE=1 suite
    # run has not already done so: uninstalling the conftest's hook here
    # would un-pair it from the sanitizer fixture's own class patch and
    # silently untrace the rest of the suite
    installed_here = not obs_is_installed()
    if installed_here:
        obs_install()
    try:
        seq_bus = run("off")
        par_bus = run("auto")
    finally:
        if installed_here:
            obs_uninstall()
    assert isinstance(par_bus, ShardedBus)

    def key(event):
        # ring seq numbers are per-worker; compare everything else
        return (event.t, event.kind, event.server, event.domain,
                event.src, event.dst, event.hop_seq, repr(event.value))

    seq_events = seq_bus._obs_tracer.ring.events()
    par_events = par_bus.trace_events()
    assert Counter(map(key, seq_events)) == Counter(map(key, par_events))
    assert [e.t for e in par_events] == sorted(e.t for e in par_events)


def test_windowed_runs_match_single_run():
    """Stepping the sharded clock in run(until) windows syncs the merged
    state mid-flight and still lands on the sequential endpoint.

    A sharded sync pulls the snapshot collectors inside every worker, so
    it *is* an observation — the high-water marks of pulled gauges record
    it, exactly as a mid-run ``cost_snapshot()`` does sequentially. The
    oracle therefore drives both buses through the same observation
    schedule (run to t, snapshot, repeat) and pins the final bytes."""

    def build(config):
        bus = make_bus(config)
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(10)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        return bus, driver

    checkpoints = (50.0, 300.0, 800.0)

    seq_bus, seq_driver = build(_config("off"))
    seq_bus.start()
    seq_snaps = []
    for until in checkpoints:
        seq_bus.run(until=until)
        seq_snaps.append(json.dumps(seq_bus.cost_snapshot(), sort_keys=True))
    seq_bus.run_until_idle()

    par_bus, par_driver = build(_config("auto"))
    assert isinstance(par_bus, ShardedBus)
    par_bus.start()
    par_snaps = []
    for until in checkpoints:
        par_bus.run(until=until)
        assert par_bus.sim.now == until
        par_snaps.append(json.dumps(par_bus.cost_snapshot(), sort_keys=True))
    par_bus.run_until_idle()

    assert par_snaps == seq_snaps
    assert par_bus.sim.now == seq_bus.sim.now
    assert par_driver.rtts == seq_driver.rtts
    assert json.dumps(par_bus.cost_snapshot(), sort_keys=True) == json.dumps(
        seq_bus.cost_snapshot(), sort_keys=True
    )


# ----------------------------------------------------------------------
# Critical-path profiler and the why machinery on merged traces
# ----------------------------------------------------------------------


def _traced_pair(build):
    """Run ``build`` sequentially and sharded with the obs tracer
    installed; returns the two event streams (sequential ring, merged
    per-shard rings)."""
    from repro.obs import install as obs_install
    from repro.obs import is_installed as obs_is_installed
    from repro.obs import uninstall as obs_uninstall

    # leave a suite-wide REPRO_TRACE=1 hook alone (see
    # test_obs_trace_rings_merge_across_shards)
    installed_here = not obs_is_installed()
    if installed_here:
        obs_install()
    try:
        seq_bus = build(_config("off"))
        seq_bus.start()
        seq_bus.run_until_idle()
        par_bus = build(_config("auto"))
        assert isinstance(par_bus, ShardedBus)
        par_bus.start()
        par_bus.run_until_idle()
    finally:
        if installed_here:
            obs_uninstall()
    return seq_bus._obs_tracer.ring.events(), par_bus.trace_events()


def _churn_bus(config):
    bus = make_bus(config)
    for src, dst in [(0, 9), (9, 0), (4, 11)]:
        sink = SinkAgent()
        sink_id = bus.deploy(sink, dst)
        driver = OpenLoopDriver(period_ms=7.0, count=15)
        driver.bind(sink_id)
        bus.deploy(driver, src)
    return bus


def test_merged_resequencing_orders_ties_stably_by_seq():
    """Regression guard for replay/diff alignment: the merged ring's
    re-sequencing sorts per-shard events by ``(t, shard, seq)``, so
    events with identical ``(t, shard)`` must keep their per-shard
    recording order (seq), and the merged stream must carry exactly the
    sequential run's per-server event sequences."""
    from repro.obs.diff import event_signature

    seq_events, par_events = _traced_pair(_churn_bus)

    # re-sequenced ids are consecutive from 0 (a sequential-shaped dump)
    assert [e.seq for e in par_events] == list(range(len(par_events)))
    # globally time-ordered
    times = [e.t for e in par_events]
    assert times == sorted(times)
    # ties actually occur, or this guard tests nothing
    assert len(times) != len(set(times)), "churn zoo must produce t-ties"

    # a server lives on exactly one shard, so per-server subsequences are
    # the partition-independent view; stable tie-breaking by seq must
    # reproduce the sequential run's order event for event
    def per_server(events):
        out = {}
        for event in events:
            out.setdefault(event.server, []).append(
                event_signature(event)
            )
        return out

    assert per_server(par_events) == per_server(seq_events)

    # and the canonical alignment the diff uses is therefore identical
    def canonical(events):
        return [
            event_signature(e)
            for e in sorted(events, key=lambda e: (e.t, e.server))
        ]

    assert canonical(par_events) == canonical(seq_events)


def test_critpath_attribution_identical_across_kernels():
    """Every delivered message's five-way latency attribution — computed
    from the merged per-shard rings — is bit-identical to the sequential
    run's, and exact in both: the categories sum to the measured
    end-to-end sim-time latency with no float slack."""
    from repro.obs.critpath import CriticalPathAnalyzer

    seq_events, par_events = _traced_pair(_churn_bus)
    seq = CriticalPathAnalyzer(seq_events)
    par = CriticalPathAnalyzer(par_events)

    nids = seq.delivered_nids()
    assert nids, "churn zoo must complete deliveries"
    assert nids == par.delivered_nids()
    for nid in nids:
        a = seq.breakdown(nid)
        b = par.breakdown(nid)
        assert a is not None and b is not None, f"nid {nid} incomplete"
        assert a.is_exact(), f"nid {nid}: sequential attribution inexact"
        assert b.is_exact(), f"nid {nid}: sharded attribution inexact"
        assert a.totals == b.totals, f"nid {nid}: category sums diverged"
        assert a.as_dict() == b.as_dict()
        assert [s[:5] for s in a.segments] == [s[:5] for s in b.segments]

    seq_summary = seq.category_summary()
    assert seq_summary["exact"] is True
    assert seq_summary == par.category_summary()


def test_why_waits_identical_on_merged_trace():
    """The ``repro.obs why`` machinery — hold-back dwells resolved to the
    releasing commit — answers identically on a ShardedBus merged trace.
    This leans on the merged ring's global re-sequencing: blocker_of
    orders commits by ``seq``, which per-shard numbering would break."""
    from repro.obs.critpath import CriticalPathAnalyzer

    seq_events, par_events = _traced_pair(_churn_bus)
    assert any(e.kind == "holdback_enter" for e in seq_events), (
        "scenario must exercise the hold-back store"
    )
    seq = CriticalPathAnalyzer(seq_events)
    par = CriticalPathAnalyzer(par_events)
    checked_waits = 0
    for nid in seq.delivered_nids():
        seq_waits = seq.waits(nid)
        assert seq_waits == par.waits(nid), f"nid {nid}: waits diverged"
        checked_waits += sum(
            1 for w in seq_waits if w["blocker_nid"] is not None
        )
    assert checked_waits > 0, "no resolved blockers exercised"
