"""Unit tests for routing tables (§5's boot-time shortest paths)."""

import pytest

from repro.errors import RoutingError
from repro.topology import (
    build_routing_tables,
    bus,
    from_domain_map,
    route,
    single_domain,
)


class TestRoutingTables:
    def test_flat_topology_routes_directly(self):
        tables = build_routing_tables(single_domain(5))
        for dest in range(1, 5):
            assert tables[0].next_hop(dest) == dest

    def test_figure2_example_route(self, figure2_topology):
        """§4.1: S1→S8 must route S1→S3, S3→S7, S7→S8 (0-indexed:
        0→2, 2→6, 6→7)."""
        tables = build_routing_tables(figure2_topology)
        assert route(tables, 0, 7) == [0, 2, 6, 7]

    def test_intra_domain_is_one_hop(self, figure2_topology):
        tables = build_routing_tables(figure2_topology)
        assert route(tables, 0, 1) == [0, 1]
        assert route(tables, 3, 4) == [3, 4]

    def test_routes_are_symmetric_in_length(self, figure2_topology):
        tables = build_routing_tables(figure2_topology)
        for src in range(8):
            for dst in range(8):
                if src == dst:
                    continue
                forward = route(tables, src, dst)
                backward = route(tables, dst, src)
                assert len(forward) == len(backward)

    def test_self_route_rejected(self):
        tables = build_routing_tables(single_domain(3))
        with pytest.raises(RoutingError):
            tables[0].next_hop(0)

    def test_unknown_destination_rejected(self):
        tables = build_routing_tables(single_domain(3))
        with pytest.raises(RoutingError):
            tables[0].next_hop(9)

    def test_deterministic_across_builds(self, figure2_topology):
        first = build_routing_tables(figure2_topology)
        second = build_routing_tables(figure2_topology)
        for server in range(8):
            assert first[server].destinations() == second[server].destinations()
            for dest in first[server].destinations():
                assert first[server].next_hop(dest) == second[server].next_hop(dest)

    def test_bus_routes_cross_backbone(self):
        topo = bus(20, 5)
        tables = build_routing_tables(topo)
        path = route(tables, 0, 15)
        # leaf → leaf router → remote router (backbone) → dest
        assert len(path) == 4
        assert topo.is_router(path[1])
        assert topo.is_router(path[2])

    def test_every_pair_routable(self):
        topo = bus(17, 4)
        tables = build_routing_tables(topo)
        for src in topo.servers:
            for dst in topo.servers:
                if src != dst:
                    path = route(tables, src, dst)
                    assert path[0] == src and path[-1] == dst
                    # consecutive hops always share a domain
                    for a, b in zip(path, path[1:]):
                        assert topo.common_domains(a, b)
