"""Tests for the DOT (graphviz) exports."""

import pytest

from repro.causality import Message, Trace, trace_to_dot
from repro.topology import bus as bus_topology
from repro.topology import topology_to_dot
from repro.topology import from_domain_map


def relay_trace():
    m1 = Message("m1", "p", "q")
    m2 = Message("m2", "q", "r")
    m3 = Message("m3", "p", "q")
    trace = Trace()
    trace.record_send(m1)
    trace.record_receive(m1)
    trace.record_send(m2)
    trace.record_receive(m2)
    trace.record_send(m3)
    trace.record_receive(m3)
    return trace


class TestTraceToDot:
    def test_structure(self):
        dot = trace_to_dot(relay_trace())
        assert dot.startswith("digraph causality {")
        assert dot.rstrip().endswith("}")
        assert '"m1"' in dot and '"m2"' in dot and '"m3"' in dot

    def test_direct_edges_only_by_default(self):
        dot = trace_to_dot(relay_trace())
        # m1 ≺ m2 and m1 ≺ m3 (same sender) and m2 vs m3... m2 is sent by q
        # after receiving m1; m3 by p after m1: both covered by m1.
        assert '"m1" -> "m2"' in dot
        assert '"m1" -> "m3"' in dot

    def test_full_relation_includes_transitives(self):
        m1 = Message(1, "a", "b")
        m2 = Message(2, "b", "c")
        m3 = Message(3, "c", "d")
        trace = Trace()
        for m in (m1, m2, m3):
            trace.record_send(m)
            trace.record_receive(m)
        reduced = trace_to_dot(trace, direct_only=True)
        full = trace_to_dot(trace, direct_only=False)
        assert '"1" -> "3"' not in reduced
        assert '"1" -> "3"' in full

    def test_tuple_mids_are_quoted(self):
        trace = Trace()
        m = Message(("hop", 0, 1), "p", "q")
        trace.record_send(m)
        dot = trace_to_dot(trace)
        assert "hop" in dot
        assert dot.count("{") == dot.count("}")


class TestTopologyToDot:
    def test_figure2_structure(self, figure2_topology):
        dot = topology_to_dot(figure2_topology)
        assert dot.startswith("graph domains {")
        for domain_id in ("A", "B", "C", "D"):
            assert f'"{domain_id}"' in dot
        # edges with shared-router labels
        assert '"A" -- "D"' in dot
        assert '"S2"' in dot  # the A/D router

    def test_routers_marked(self):
        topo = bus_topology(9, 3)
        dot = topology_to_dot(topo)
        assert "S2*" in dot  # leaf router with the star marker

    def test_no_edges_for_single_domain(self):
        topo = from_domain_map({"only": [0, 1, 2]})
        dot = topology_to_dot(topo)
        assert "--" not in dot
