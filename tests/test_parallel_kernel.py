"""Unit tests for the sharded-parallel kernel's building blocks.

The differential suite (test_parallel_differential.py) pins the
end-to-end bit-identity contract; these tests cover the mechanisms under
it: the topology shard plan, the mode/eligibility gates of
:func:`repro.mom.parallel.make_bus`, the scripting guard rails of
:class:`ShardedBus`, per-shard RNG stream isolation (the runtime face of
lint rule R007), and the R006 layering that keeps
``repro.simulation.shard``/``sync`` MOM-agnostic.
"""

import multiprocessing
import os
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.errors import ConfigurationError
from repro.mom.agent import EchoAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.mom.parallel import (
    ShardedBus,
    make_bus,
    resolve_mode,
    shard_eligibility,
)
from repro.mom.workloads import PingPongDriver
from repro.simulation.network import UniformLatency
from repro.simulation.shard import ShardContext
from repro.topology import builders
from repro.topology.shardplan import (
    build_shard_plan,
    home_domain,
    lookahead_ms,
)

SRC = Path(__file__).parent.parent / "src"


@pytest.fixture(autouse=True)
def config_controls_parallel(monkeypatch):
    """Mode here is driven by the config field (or an explicit setenv in
    the test); a suite-level ``REPRO_PARALLEL`` override must not leak in."""
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)


def _config(**kwargs):
    kwargs.setdefault("topology", builders.bus(12, 4))
    return BusConfig(**kwargs)


class TestShardPlan:
    def test_servers_live_on_their_home_domain_shard(self):
        # routers belong to two domains and can only be homed to one
        # shard (their lowest domain id); every other server rides along
        topology = builders.bus(12, 4)
        plan = build_shard_plan(topology, 3)
        for server in topology.servers:
            home = home_domain(topology, server)
            assert plan.shard_of(server) == plan.domain_shards[home]

    def test_every_server_mapped_exactly_once(self):
        topology = builders.tree(30, fanout=3, domain_size=5)
        plan = build_shard_plan(topology, 4)
        seen = [s for shard in plan.shards for s in shard]
        assert sorted(seen) == sorted(set(seen))
        assert {plan.shard_of(s) for s in topology.servers} == set(
            range(plan.worker_count)
        )

    def test_single_domain_yields_one_shard(self):
        plan = build_shard_plan(builders.single_domain(8), 4)
        assert plan.worker_count == 1

    def test_workers_capped_by_domains(self):
        topology = builders.bus(12, 4)
        plan = build_shard_plan(topology, 64)
        assert plan.worker_count <= len(topology.domain_ids)

    def test_lookahead_is_min_latency(self):
        assert lookahead_ms(2.5) == 2.5


class TestModeResolution:
    def test_env_off_values(self, monkeypatch):
        for value in ("0", "off", "no", "false", ""):
            monkeypatch.setenv("REPRO_PARALLEL", value)
            assert resolve_mode(_config(parallel="auto"))[0] == "off"

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "auto")
        mode, workers = resolve_mode(_config())
        assert mode == "auto" and workers >= 1

    def test_env_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert resolve_mode(_config()) == ("auto", 3)
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        assert resolve_mode(_config()) == ("off", 0)

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "fast")
        with pytest.raises(ConfigurationError):
            resolve_mode(_config())

    def test_config_field_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_mode(_config(parallel="off")) == ("off", 0)
        mode, workers = resolve_mode(_config(parallel="auto", workers=2))
        assert (mode, workers) == ("auto", 2)

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            _config(parallel="yes")
        with pytest.raises(ConfigurationError):
            _config(workers=-1)


class TestEligibility:
    def test_eligible_multi_domain(self):
        plan, reason = shard_eligibility(_config(), 3)
        assert plan is not None and plan.worker_count == 3

    def test_random_latency_falls_back(self):
        config = _config(latency=UniformLatency(0.5, 2.0))
        plan, reason = shard_eligibility(config, 3)
        assert plan is None and "random" in reason

    def test_loss_falls_back(self):
        plan, reason = shard_eligibility(_config(loss_rate=0.1), 3)
        assert plan is None and "loss" in reason

    def test_single_domain_falls_back(self):
        config = _config(topology=builders.single_domain(8))
        plan, _ = shard_eligibility(config, 4)
        assert plan is None

    def test_make_bus_fallbacks_are_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert type(make_bus(_config())) is MessageBus
        sequential = make_bus(
            _config(parallel="auto", workers=2, loss_rate=0.2)
        )
        assert type(sequential) is MessageBus
        sharded = make_bus(_config(parallel="auto", workers=2))
        assert isinstance(sharded, ShardedBus)


class TestShardedBusGuards:
    def _sharded(self):
        bus = make_bus(_config(parallel="auto", workers=2))
        assert isinstance(bus, ShardedBus)
        return bus

    def test_run_before_start_rejected(self):
        bus = self._sharded()
        with pytest.raises(ConfigurationError):
            bus.run_until_idle()

    def test_deploy_after_start_rejected(self):
        bus = self._sharded()
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(1)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        bus.start()
        try:
            with pytest.raises(ConfigurationError):
                bus.deploy(EchoAgent(), 3)
            with pytest.raises(ConfigurationError):
                bus.schedule_send(1.0, echo_id, echo_id, "late")
        finally:
            bus.run_until_idle()

    def test_agent_ids_match_sequential_assignment(self):
        bus = self._sharded()
        first = bus.deploy(EchoAgent(), 9)
        second = bus.deploy(EchoAgent(), 9)
        other = bus.deploy(EchoAgent(), 0)
        assert (first.server, first.local) == (9, 0)
        assert (second.server, second.local) == (9, 1)
        assert (other.server, other.local) == (0, 0)
        bus.close()

    def test_unknown_server_rejected(self):
        bus = self._sharded()
        with pytest.raises(ConfigurationError):
            bus.deploy(EchoAgent(), 99)
        with pytest.raises(ConfigurationError):
            bus.schedule_crash(1.0, 99, 10.0)

    def test_run_after_quiescence_only_moves_the_clock(self):
        bus = self._sharded()
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(2)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        bus.start()
        bus.run_until_idle()
        end = bus.sim.now
        assert bus.run(until=end + 500.0) == 0
        assert bus.sim.now == end + 500.0


class TestRngIsolation:
    """Runtime face of lint rule R007: no two shard workers may ever
    share an RNG stream, or cross-shard packet order would couple their
    draws and break replayability."""

    def test_shard_buses_derive_disjoint_network_streams(self):
        config = _config()
        plan = build_shard_plan(config.topology, 3)
        stream_names = []
        for shard_id, members in enumerate(plan.shards):
            bus = MessageBus(
                config, shard=ShardContext(shard_id, frozenset(members))
            )
            names = set(bus.rng._streams)
            assert names == {f"network/shard{shard_id}"}
            stream_names.append(names)
        for i, left in enumerate(stream_names):
            for right in stream_names[i + 1:]:
                assert left.isdisjoint(right)

    def test_deterministic_runs_never_draw(self):
        """Eligible (deterministic, lossless) runs consume zero random
        numbers, so shard draws cannot diverge from sequential at all."""
        bus = make_bus(_config(parallel="off"))
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(3)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        bus.start()
        bus.run_until_idle()
        state_before = bus.rng.stream("network").random()
        fresh = bus.rng.__class__(bus.config.seed).stream("network").random()
        assert state_before == fresh, "network stream was consumed mid-run"


class TestLayering:
    def test_shard_kernel_modules_lint_clean(self):
        paths = [
            SRC / "repro" / "simulation" / "shard.py",
            SRC / "repro" / "simulation" / "sync.py",
            SRC / "repro" / "topology" / "shardplan.py",
            SRC / "repro" / "mom" / "parallel.py",
        ]
        assert lint_paths(paths) == []

    def test_upward_import_from_shard_module_fires_r006(self):
        fixture = (
            Path(__file__).parent
            / "lint_fixtures" / "repro" / "simulation" / "r006_shard_bad.py"
        )
        from repro.analysis import lint_file

        fired = [d.rule for d in lint_file(fixture)]
        assert fired.count("R006") == 2


class TestForkRequirement:
    def test_fork_is_available_here(self):
        # the eligibility gate's platform check is live on this CI image
        assert "fork" in multiprocessing.get_all_start_methods()

    def test_auto_on_one_cpu_machine_is_safe(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        bus = make_bus(_config(parallel="auto"))
        assert type(bus) is MessageBus
