"""Integration: the MOM's hop traces realize the paper's chain formalism.

Every routed notification is, formally, a §4.2 chain of real
intra-domain messages — the "virtual message" the theorem reasons about.
These tests reassemble the chains from a live bus and check them against
the routing tables and the formal definitions.
"""

import pytest

from repro.errors import ConfigurationError
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.topology import build_routing_tables, route
from repro.topology import bus as bus_topology


@pytest.fixture
def ran_bus(figure2_topology):
    mom = MessageBus(
        BusConfig(topology=figure2_topology, record_hop_trace=True)
    )
    echo_id = mom.deploy(EchoAgent(), 7)
    pinger = FunctionAgent(lambda ctx, s, p: None)
    pinger.on_boot = lambda ctx: ctx.send(echo_id, "hello")
    mom.deploy(pinger, 0)
    mom.start()
    mom.run_until_idle()
    return mom


class TestHopChains:
    def test_one_chain_per_routed_notification(self, ran_bus):
        chains = ran_bus.hop_chains()
        assert len(chains) == 2  # ping + echo

    def test_chain_paths_match_routing_tables(self, ran_bus, figure2_topology):
        tables = build_routing_tables(figure2_topology)
        chains = ran_bus.hop_chains()
        paths = sorted(chain.path() for chain in chains.values())
        assert paths == sorted(
            [tuple(route(tables, 0, 7)), tuple(route(tables, 7, 0))]
        )

    def test_chains_are_valid_and_minimal(self, ran_bus, figure2_topology):
        membership = figure2_topology.membership()
        for chain in ran_bus.hop_chains().values():
            assert chain.is_valid_in(ran_bus.hop_trace)
            assert chain.is_minimal(membership), (
                "routing over a validated topology must produce minimal "
                "chains (no lingering in a domain)"
            )

    def test_every_hop_is_intra_domain(self, ran_bus, figure2_topology):
        for chain in ran_bus.hop_chains().values():
            for message in chain.messages:
                assert figure2_topology.common_domains(
                    message.src, message.dst
                ), f"hop {message!r} crosses servers sharing no domain"

    def test_local_notifications_have_no_chain(self):
        mom = MessageBus(
            BusConfig(topology=bus_topology(9, 3), record_hop_trace=True)
        )
        sink = FunctionAgent(lambda ctx, s, p: None)
        sink_id = mom.deploy(sink, 0)
        sender = FunctionAgent(lambda ctx, s, p: None)
        sender.on_boot = lambda ctx: ctx.send(sink_id, "local")
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        assert mom.hop_chains() == {}

    def test_requires_hop_trace(self, figure2_topology):
        mom = MessageBus(BusConfig(topology=figure2_topology))
        with pytest.raises(ConfigurationError):
            mom.hop_chains()

    def test_chain_lengths_follow_distance(self):
        topology = bus_topology(16, 4)
        mom = MessageBus(BusConfig(topology=topology, record_hop_trace=True))
        near_id = mom.deploy(FunctionAgent(lambda c, s, p: None), 1)
        far_id = mom.deploy(FunctionAgent(lambda c, s, p: None), 13)
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(near_id, "near")   # same leaf: 1 hop
            ctx.send(far_id, "far")     # other leaf: 3 hops

        sender.on_boot = boot
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        lengths = sorted(len(c) for c in mom.hop_chains().values())
        assert lengths == [1, 3]
