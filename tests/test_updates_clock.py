"""Unit tests for the Appendix-A Updates algorithm, including equivalence
with the full-matrix protocol."""

import pytest

from repro.clocks import MatrixClock, UpdatesClock
from repro.errors import ClockError


def make_group(size):
    return [UpdatesClock(size, i) for i in range(size)]


class TestDeltaContents:
    def test_first_send_ships_one_cell(self):
        a, b, _ = make_group(3)
        stamp = a.prepare_send(1)
        assert stamp.wire_cells == 1
        assert stamp.entry(0, 1) == 1

    def test_quiet_pair_stays_at_one_cell(self):
        """Steady-state ping-pong between two servers ships O(1) cells —
        the optimization's headline win."""
        a, b, _ = make_group(3)
        for _ in range(10):
            b.deliver(a.prepare_send(1))
            a.deliver(b.prepare_send(0))
        stamp = a.prepare_send(1)
        # own bump + the cell learned back from b's last message
        assert stamp.wire_cells <= 2

    def test_learned_cells_propagate(self):
        a, b, c = make_group(3)
        b.deliver(a.prepare_send(1))
        stamp = b.prepare_send(2)
        # b ships its own bump AND what it learned from a
        assert stamp.entry(1, 2) == 1
        assert stamp.entry(0, 1) == 1

    def test_no_echo_back_to_teacher(self):
        """Cells learned *from* a peer are not shipped back to that peer
        (the Mat[k,l].node ≠ j filter)."""
        a, b, _ = make_group(3)
        b.deliver(a.prepare_send(1))
        stamp = b.prepare_send(0)
        assert stamp.entry(0, 1) is None
        assert stamp.entry(1, 0) == 1

    def test_high_water_mark_suppresses_reships(self):
        a, b, c = make_group(3)
        first = a.prepare_send(1)
        second = a.prepare_send(1)
        # second should not re-ship the (0,1) value from first; it ships
        # the *new* (0,1)=2 only.
        assert second.wire_cells == 1
        assert second.entry(0, 1) == 2

    def test_worst_case_is_quadratic(self):
        """§3: even with Updates, a long-silent server may ship O(n²)
        cells. Construct it: server 0 hears from everyone, then talks."""
        size = 6
        group = make_group(size)
        hub = group[0]
        for other in range(1, size):
            hub.deliver(group[other].prepare_send(0))
        stamp = hub.prepare_send(1)
        # one cell learned per peer (minus the no-echo filter for dest) + own
        assert stamp.wire_cells >= size - 2


class TestDelivery:
    def test_fifo_per_sender(self):
        a, b, _ = make_group(3)
        first = a.prepare_send(1)
        second = a.prepare_send(1)
        assert not b.can_deliver(second)
        b.deliver(first)
        assert b.can_deliver(second)

    def test_causal_transitivity_enforced(self):
        a, b, c = make_group(3)
        to_c = a.prepare_send(2)
        to_b = a.prepare_send(1)
        b.deliver(to_b)
        from_b = b.prepare_send(2)
        assert not c.can_deliver(from_b)
        c.deliver(to_c)
        assert c.can_deliver(from_b)

    def test_malformed_stamp_rejected(self):
        from repro.clocks.updates import UpdateStamp

        b = UpdatesClock(3, 1)
        bogus = UpdateStamp(0, 1, ())
        with pytest.raises(ClockError):
            b.can_deliver(bogus)

    def test_duplicate_detection(self):
        a, b, _ = make_group(3)
        stamp = a.prepare_send(1)
        assert not b.is_duplicate(stamp)
        b.deliver(stamp)
        assert b.is_duplicate(stamp)

    def test_deliver_undeliverable_raises(self):
        a, b, _ = make_group(3)
        a.prepare_send(1)
        second = a.prepare_send(1)
        with pytest.raises(ClockError):
            b.deliver(second)


class TestEquivalenceWithFullMatrix:
    """Drive both algorithms through the same message schedule and compare
    the resulting matrices cell by cell."""

    def drive(self, clocks, schedule):
        """schedule: list of (src, dst); returns stamps delivered in order."""
        pending = []
        for src, dst in schedule:
            stamp = clocks[src].prepare_send(dst)
            pending.append((dst, stamp))
            # deliver everything currently deliverable, in arrival order
            progress = True
            while progress:
                progress = False
                for item in list(pending):
                    receiver, s = item
                    if clocks[receiver].can_deliver(s):
                        clocks[receiver].deliver(s)
                        pending.remove(item)
                        progress = True
        assert not pending

    @pytest.mark.parametrize(
        "schedule",
        [
            [(0, 1), (1, 2), (2, 0)],
            [(0, 1), (0, 2), (1, 2), (2, 1), (1, 0)],
            [(0, 1)] * 5 + [(1, 0)] * 5,
            [(0, 2), (2, 1), (1, 0), (0, 1), (1, 2), (2, 0)] * 3,
        ],
    )
    def test_same_matrices(self, schedule):
        size = 3
        full = [MatrixClock(size, i) for i in range(size)]
        delta = [UpdatesClock(size, i) for i in range(size)]
        self.drive(full, schedule)
        self.drive(delta, schedule)
        for owner in range(size):
            for i in range(size):
                for j in range(size):
                    assert full[owner].cell(i, j) == delta[owner].cell(i, j), (
                        f"owner {owner} cell ({i},{j}) diverged"
                    )


class TestPersistence:
    def test_snapshot_restore_roundtrip(self):
        a, b, _ = make_group(3)
        b.deliver(a.prepare_send(1))
        snapshot = b.snapshot()
        fresh = UpdatesClock(3, 1)
        fresh.restore(snapshot)
        assert fresh.cell(0, 1) == 1

    def test_restore_preserves_dedup_and_fifo(self):
        a, b, _ = make_group(3)
        first = a.prepare_send(1)
        b.deliver(first)
        snapshot = b.snapshot()
        second = a.prepare_send(1)

        recovered = UpdatesClock(3, 1)
        recovered.restore(snapshot)
        assert recovered.is_duplicate(first)
        assert recovered.can_deliver(second)

    def test_restore_preserves_high_water_marks(self):
        """After recovery the sender must not re-ship everything."""
        a, b, _ = make_group(3)
        b.deliver(a.prepare_send(1))
        snapshot = a.snapshot()
        recovered = UpdatesClock(3, 0)
        recovered.restore(snapshot)
        stamp = recovered.prepare_send(1)
        assert stamp.wire_cells == 1

    def test_restore_wrong_shape_rejected(self):
        clock = UpdatesClock(3, 0)
        bad = UpdatesClock(2, 0).snapshot()
        with pytest.raises(ClockError):
            clock.restore(bad)
