"""Trace export: JSONL round-trip and Chrome ``trace_event`` validity."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.mom.agent import EchoAgent, FunctionAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.obs.export import (
    TID_CPU,
    TID_DOMAIN_BASE,
    TID_ENGINE,
    TraceDump,
    chrome_trace,
    read_jsonl,
    write_jsonl,
)
from repro.obs.tracer import attach
from repro.simulation.network import UniformLatency
from repro.topology.builders import bus as bus_topology


@pytest.fixture(scope="module")
def traced_dump():
    """A dump from a jittery multi-domain run: routed messages, hold-back
    dwells, retransmits — everything the exporters must handle."""
    mom = MessageBus(
        BusConfig(
            topology=bus_topology(12, 4),
            seed=7,
            latency=UniformLatency(0.1, 20.0),
            loss_rate=0.1,
        )
    )
    tracer = attach(mom)
    echo_id = mom.deploy(EchoAgent(), 9)
    sender = FunctionAgent(lambda ctx, s, p: None)

    def boot(ctx):
        for i in range(10):
            ctx.send(echo_id, i)

    sender.on_boot = boot
    mom.deploy(sender, 0)
    mom.start()
    mom.run_until_idle()
    return TraceDump.from_tracer(tracer)


class TestJsonlRoundTrip:
    def test_round_trip_is_lossless(self, traced_dump):
        buf = io.StringIO()
        lines = write_jsonl(traced_dump, buf)
        assert lines == buf.getvalue().count("\n")
        buf.seek(0)
        back = read_jsonl(buf)
        assert back.meta == traced_dump.meta
        assert back.events == traced_dump.events
        assert [tuple(c) for c in back.cpu] == [
            tuple(c) for c in traced_dump.cpu
        ]
        assert back.histograms == traced_dump.histograms

    def test_every_line_is_valid_json_with_record_tag(self, traced_dump):
        buf = io.StringIO()
        write_jsonl(traced_dump, buf)
        for line in buf.getvalue().splitlines():
            row = json.loads(line)
            assert row["record"] in {"meta", "event", "cpu", "hist"}

    def test_unknown_record_rejected(self):
        with pytest.raises(ConfigurationError):
            read_jsonl(io.StringIO('{"record": "mystery"}\n'))

    def test_missing_meta_rejected(self):
        with pytest.raises(ConfigurationError):
            read_jsonl(io.StringIO(""))


class TestChromeTrace:
    def test_top_level_schema(self, traced_dump):
        doc = chrome_trace(traced_dump)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable

    def test_every_event_well_formed(self, traced_dump):
        for ev in chrome_trace(traced_dump)["traceEvents"]:
            assert ev["ph"] in {"M", "i", "b", "e", "X"}
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] != "M":
                assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_processes_and_threads_named(self, traced_dump):
        doc = chrome_trace(traced_dump)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert set(process_names) == set(traced_dump.meta["server_ids"])
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        for server in traced_dump.meta["server_ids"]:
            assert thread_names[(server, TID_ENGINE)] == "engine"
            assert thread_names[(server, TID_CPU)] == "cpu"

    def test_async_spans_balanced_per_id(self, traced_dump):
        doc = chrome_trace(traced_dump)
        open_spans = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "b":
                key = (ev["id"], ev["pid"])
                assert key not in open_spans, f"double-open {key}"
                open_spans[key] = ev["ts"]
            elif ev["ph"] == "e":
                key = (ev["id"], ev["pid"])
                assert key in open_spans, f"end without begin {key}"
                assert ev["ts"] >= open_spans.pop(key)
        assert not open_spans, f"unclosed spans: {sorted(open_spans)}"

    def test_cpu_slices_never_overlap_within_a_server(self, traced_dump):
        doc = chrome_trace(traced_dump)
        by_pid = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X" and ev["tid"] == TID_CPU:
                by_pid.setdefault(ev["pid"], []).append(
                    (ev["ts"], ev["ts"] + ev["dur"])
                )
        assert by_pid, "traced run must produce CPU slices"
        for pid, slices in by_pid.items():
            slices.sort()
            for (_, end), (start, _) in zip(slices, slices[1:]):
                assert start >= end - 1e-9, f"overlap on server {pid}"

    def test_body_sorted_by_timestamp(self, traced_dump):
        doc = chrome_trace(traced_dump)
        stamps = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert stamps == sorted(stamps)

    def test_holdback_spans_present_in_jittery_run(self, traced_dump):
        doc = chrome_trace(traced_dump)
        holds = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "b" and e.get("cat") == "holdback"
        ]
        assert holds, "jittery lossy run must park messages in hold-back"

    def test_message_lifetime_spans_cover_delivered_messages(
        self, traced_dump
    ):
        doc = chrome_trace(traced_dump)
        msg_ids = {
            e["id"]
            for e in doc["traceEvents"]
            if e["ph"] == "b" and e.get("cat") == "message"
        }
        delivered = {
            e.nid
            for e in traced_dump.events
            if e.kind == "reaction_commit" and e.nid >= 0
        }
        posted = {
            e.nid for e in traced_dump.events if e.kind == "post"
        }
        assert msg_ids == {f"msg-{nid}" for nid in delivered & posted}

    def test_domain_tracks_used_by_channel_events(self, traced_dump):
        doc = chrome_trace(traced_dump)
        domain_tids = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "i" and e["name"] in {"stamp", "commit", "transmit"}
        }
        assert domain_tids, "channel events missing from the trace"
        assert all(tid >= TID_DOMAIN_BASE for tid in domain_tids)
