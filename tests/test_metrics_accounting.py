"""End-to-end properties of the always-on cost accounting.

Three contracts the subsystem lives by:

1. **Determinism** — two runs with the same seed produce *byte-identical*
   snapshots (``write_json`` and ``to_prometheus`` output), including
   when the flight recorder (``REPRO_TRACE=1``) rides along. Snapshots
   are artifacts, so they must diff cleanly and gate in CI.
2. **The paper's cost claim** — read straight off the registry: a flat
   domain stamps 8·n² bytes per message (matrix clock over n servers),
   the bus decomposition at √n domain size stamps Θ(n). The empirical
   exponent must separate cleanly even at small sizes.
3. **CLI surfaces** — ``python -m repro.metrics`` demo/top/prom/json and
   ``python -m repro.mom --metrics-out`` round-trip the same snapshot.
"""

import io
import json

import pytest

from repro.metrics import read_json, to_prometheus, total, write_json
from repro.metrics.__main__ import main as metrics_main
from repro.mom import BusConfig, EchoAgent, MessageBus
from repro.mom.__main__ import main as mom_main
from repro.mom.workloads import PingPongDriver
from repro.simulation.network import UniformLatency
from repro.topology import builders


def _pingpong(topology, seed=0, rounds=6, latency=None):
    config = BusConfig(topology=topology, seed=seed)
    if latency is not None:
        config = BusConfig(topology=topology, seed=seed, latency=latency)
    mom = MessageBus(config)
    echo_id = mom.deploy(EchoAgent(), topology.server_count - 1)
    driver = PingPongDriver(rounds)
    driver.bind(echo_id)
    mom.deploy(driver, 0)
    mom.start()
    mom.run_until_idle()
    return mom


def _snapshot_bytes(mom):
    snapshot = mom.cost_snapshot()
    assert snapshot is not None
    out = io.StringIO()
    write_json(snapshot, out)
    return out.getvalue(), to_prometheus(snapshot)


class TestDeterminism:
    def test_identical_runs_are_byte_identical(self):
        jitter = UniformLatency(0.1, 15.0)
        a = _pingpong(builders.bus(12, 4), seed=3, latency=jitter)
        b = _pingpong(builders.bus(12, 4), seed=3, latency=jitter)
        json_a, prom_a = _snapshot_bytes(a)
        json_b, prom_b = _snapshot_bytes(b)
        assert json_a == json_b
        assert prom_a == prom_b

    def test_seed_changes_the_snapshot(self):
        """Negative control: the byte-identity above is not vacuous."""
        jitter = UniformLatency(0.1, 15.0)
        a = _pingpong(builders.bus(12, 4), seed=3, latency=jitter)
        b = _pingpong(builders.bus(12, 4), seed=4, latency=jitter)
        assert _snapshot_bytes(a)[0] != _snapshot_bytes(b)[0]

    def test_trace_does_not_perturb_accounting(self, monkeypatch):
        off = _snapshot_bytes(_pingpong(builders.bus(12, 4), seed=3))
        monkeypatch.setenv("REPRO_TRACE", "1")
        on = _snapshot_bytes(_pingpong(builders.bus(12, 4), seed=3))
        assert on == off

    def test_snapshot_roundtrips_through_json(self):
        mom = _pingpong(builders.bus(12, 4))
        snapshot = mom.cost_snapshot()
        out = io.StringIO()
        write_json(snapshot, out)
        assert read_json(io.StringIO(out.getvalue())) == snapshot


class TestStampCostScaling:
    """The §6 decomposition claim, empirically, at test-sized n."""

    def _bytes_per_msg(self, topology):
        mom = _pingpong(topology)
        snapshot = mom.cost_snapshot()
        messages = total(snapshot, "bus_notifications_total")
        return total(snapshot, "channel_stamp_bytes_total") / messages

    def test_flat_is_quadratic(self):
        # 8 bytes/cell × n² cells per stamp, exactly.
        for n in (9, 16, 36):
            assert self._bytes_per_msg(builders.single_domain(n)) == 8 * n * n

    def test_bus_is_linear(self):
        # √n leaf domains: every stamp is 8·n bytes over a 3-hop route,
        # constant 16·n per end-to-end message.
        for n in (16, 36, 64):
            assert self._bytes_per_msg(builders.bus(n)) == 16 * n

    def test_empirical_exponents_separate(self):
        """Fit log(bytes)/log(n) growth between n=16 and n=64: the flat
        exponent must be ~2, the decomposed one ~1."""
        import math

        def exponent(build):
            lo = self._bytes_per_msg(build(16))
            hi = self._bytes_per_msg(build(64))
            return math.log(hi / lo) / math.log(64 / 16)

        flat = exponent(builders.single_domain)
        bus = exponent(builders.bus)
        assert flat == pytest.approx(2.0, abs=0.01)
        assert bus == pytest.approx(1.0, abs=0.01)
        assert flat - bus > 0.9


class TestMetricsCli:
    def test_demo_writes_snapshot_and_prom(self, tmp_path, capsys):
        json_path = tmp_path / "snap.json"
        prom_path = tmp_path / "snap.prom"
        code = metrics_main(
            [
                "demo",
                "--servers",
                "12",
                "--rounds",
                "4",
                "--json",
                str(json_path),
                "--prom",
                str(prom_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stamp" in out  # the dashboard rendered something costy
        snapshot = json.loads(json_path.read_text())
        assert snapshot["format"].startswith("repro.metrics")
        assert "channel_stamp_bytes_total" in prom_path.read_text()

    def test_top_prom_json_consume_a_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        metrics_main(["demo", "--rounds", "3", "--json", str(snap)])
        capsys.readouterr()

        assert metrics_main(["top", str(snap), "--servers"]) == 0
        assert "domain" in capsys.readouterr().out

        assert metrics_main(["prom", str(snap)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE" in prom and "channel_commits_total" in prom

        norm = tmp_path / "norm.json"
        assert metrics_main(["json", str(snap), "-o", str(norm)]) == 0
        assert json.loads(norm.read_text()) == json.loads(snap.read_text())

    def test_missing_snapshot_is_a_config_error(self, tmp_path, capsys):
        assert metrics_main(["top", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_snapshot_is_a_config_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a snapshot"}')
        assert metrics_main(["prom", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestMomMetricsOut:
    SCENARIO = {
        "topology": {"kind": "bus", "servers": 12, "domain_size": 4},
        "seed": 5,
        "agents": [
            {"name": "echo", "server": 11, "kind": "echo"},
            {
                "name": "driver",
                "server": 0,
                "kind": "pingpong",
                "target": "echo",
                "rounds": 8,
            },
        ],
    }

    def test_metrics_out_writes_loadable_snapshot(self, tmp_path, capsys):
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(self.SCENARIO))
        out = tmp_path / "costs.json"
        code = mom_main([str(scenario), "--metrics-out", str(out)])
        assert code == 0
        assert "cost snapshot written" in capsys.readouterr().out
        with open(out) as stream:
            snapshot = read_json(stream)
        assert total(snapshot, "bus_notifications_total") > 0
        # ...and the metrics CLI can render it.
        assert metrics_main(["top", str(out)]) == 0

    def test_metrics_out_fails_cleanly_when_disabled(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_METRICS", "0")
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(self.SCENARIO))
        out = tmp_path / "costs.json"
        assert mom_main([str(scenario), "--metrics-out", str(out)]) == 2
        assert "disabled" in capsys.readouterr().err
        assert not out.exists()
