"""Surgical tests for the channel ACK-timeout retransmission — the only
mechanism that saves a message which *arrived* (transport-acked) but died
in the receiver's volatile state before the transaction committed.

The window is narrow: crash the receiver after the envelope's network
arrival but before its recv-cost elapses. The transport has already acked
(arrival-level), so without the channel-level timer the sender would wait
forever.
"""

import pytest

from repro.mom import BusConfig, FunctionAgent, MessageBus
from repro.topology import single_domain


def wire_scenario(ack_timeout=300.0):
    mom = MessageBus(
        BusConfig(
            topology=single_domain(2),
            channel_ack_timeout_ms=ack_timeout,
        )
    )
    got = []
    sink = FunctionAgent(lambda ctx, s, p: got.append(p))
    sink_id = mom.deploy(sink, 1)
    sender = FunctionAgent(lambda ctx, s, p: None)
    sender.on_boot = lambda ctx: ctx.send(sink_id, "fragile")
    mom.deploy(sender, 0)
    mom.start()
    return mom, got


class TestAckTimeoutBridgesTheWindow:
    def test_crash_between_arrival_and_commit(self):
        """Timeline: boot reaction commits ~1 ms; send cost ~13.3 ms; wire
        +1 ms → arrival ~15.3 ms; commit needs ~13.3 ms more. Crashing at
        16 ms lands squarely in the pending-commit window."""
        mom, got = wire_scenario()
        mom.sim.schedule_at(16.0, lambda: mom.server(1).crash())
        mom.sim.schedule_at(100.0, lambda: mom.server(1).recover())
        mom.run_until_idle()
        # sanity: the crash really landed before the commit
        assert mom.sim.now > 300.0, "the ACK-timeout path must have fired"
        assert got == ["fragile"]
        assert mom.metrics.counter("channel.hops_resent").value >= 1
        assert mom.server(0).channel.unacked_count == 0

    def test_no_retransmission_on_the_happy_path(self):
        mom, got = wire_scenario()
        mom.run_until_idle()
        assert got == ["fragile"]
        assert mom.metrics.counter("channel.hops_resent").value == 0

    def test_duplicate_after_commit_is_reacked_not_redelivered(self):
        """Crash the *sender* after the receiver committed but before the
        ACK arrives: recovery retransmits, the receiver re-acks, nothing
        is delivered twice."""
        mom, got = wire_scenario()
        # commit at ~28.6 ms; the ACK is in flight for 1 ms — crash at 29.0
        mom.sim.schedule_at(29.0, lambda: mom.server(0).crash())
        mom.sim.schedule_at(120.0, lambda: mom.server(0).recover())
        mom.run_until_idle()
        assert got == ["fragile"]
        duplicates = mom.metrics.counter("channel.duplicates").value
        resent = mom.metrics.counter("channel.hops_resent").value
        assert resent >= 1
        assert duplicates >= 1
        assert mom.server(0).channel.unacked_count == 0

    def test_timeout_backoff_caps(self):
        """The retry timer doubles but is capped at 8× base — a long
        receiver outage must not push retries out to absurd horizons."""
        mom, got = wire_scenario(ack_timeout=100.0)
        mom.sim.schedule_at(16.0, lambda: mom.server(1).crash())
        mom.sim.schedule_at(2500.0, lambda: mom.server(1).recover())
        mom.run_until_idle()
        assert got == ["fragile"]
        # with cap 800 ms, a ~2.5 s outage needs several retries
        assert mom.metrics.counter("channel.hops_resent").value >= 3
