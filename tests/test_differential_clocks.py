"""Differential tests: flat-buffer clocks vs the retained reference.

The optimized clock core (:mod:`repro.clocks.matrix`,
:mod:`repro.clocks.updates`) must be *observably identical* to the seed
implementations preserved in :mod:`repro.clocks.reference` — same
``can_deliver`` / ``is_duplicate`` decisions, same delivered state, same
``dirty_cells`` accounting, same ``wire_cells`` (and cell payload) on
every stamp — across arbitrary interleavings of sends, deliveries,
retransmissions and crash-restores. Hypothesis drives both
implementations through the same random schedule and the mirror asserts
agreement after every step; if the window-merge, change-log suffix query
or journal-patch persistence ever diverge from the reference semantics,
these tests name the first operation where they do.
"""

import copy

from hypothesis import given, settings, strategies as st

from repro.clocks.matrix import MatrixClock
from repro.clocks.reference import ReferenceMatrixClock, ReferenceUpdatesClock
from repro.clocks.updates import UpdatesClock


PAIRS = {
    "matrix": (MatrixClock, ReferenceMatrixClock),
    "updates": (UpdatesClock, ReferenceUpdatesClock),
}


def stamp_payload(stamp):
    """A comparable wire-format projection of a stamp."""
    if hasattr(stamp, "updates"):  # delta stamp
        return [(u.row, u.col, u.value) for u in stamp.updates]
    size = stamp.size
    return [[stamp.entry(i, j) for j in range(size)] for i in range(size)]


class Mirror:
    """One domain, two implementations, forced through the same schedule."""

    def __init__(self, algo: str, size: int):
        self.algo = algo
        self.size = size
        new_cls, ref_cls = PAIRS[algo]
        self.new_cls, self.ref_cls = new_cls, ref_cls
        self.new = [new_cls(size, i) for i in range(size)]
        self.ref = [ref_cls(size, i) for i in range(size)]
        # in-flight (new_stamp, ref_stamp) pairs per receiver
        self.inflight = {i: [] for i in range(size)}
        # last persisted state per server: (image-for-new, snapshot-for-ref)
        self.persisted = {}

    # -- operations ----------------------------------------------------

    def send(self, src: int, dst: int) -> None:
        s_new = self.new[src].prepare_send(dst)
        s_ref = self.ref[src].prepare_send(dst)
        assert s_new.wire_cells == s_ref.wire_cells
        assert stamp_payload(s_new) == stamp_payload(s_ref)
        self.inflight[dst].append((s_new, s_ref))
        self.check(src)

    def try_deliver(self, dst: int, index: int) -> None:
        pool = self.inflight[dst]
        s_new, s_ref = pool[index % len(pool)]
        dup_new = self.new[dst].is_duplicate(s_new)
        dup_ref = self.ref[dst].is_duplicate(s_ref)
        assert dup_new == dup_ref, f"is_duplicate diverged at server {dst}"
        if dup_new:
            pool.remove((s_new, s_ref))
            return
        ok_new = self.new[dst].can_deliver(s_new)
        ok_ref = self.ref[dst].can_deliver(s_ref)
        assert ok_new == ok_ref, f"can_deliver diverged at server {dst}"
        if not ok_new:
            return  # held back; stays in flight
        self.new[dst].deliver(s_new)
        self.ref[dst].deliver(s_ref)
        pool.remove((s_new, s_ref))
        self.check(dst)

    def retransmit(self, dst: int, index: int) -> None:
        """Queue a second copy of an in-flight envelope — the original
        stamp object, exactly as the channel's QueueOUT retransmits."""
        pool = self.inflight[dst]
        pool.append(pool[index % len(pool)])

    def persist(self, server: int) -> None:
        """What the channel does on every commit: journal-patch the
        retained image. The store keeps it by reference (owned=True)."""
        self.persisted[server] = (
            self.new[server].sync_image(),
            self.ref[server].snapshot(),
        )

    def crash_restore(self, server: int) -> None:
        """Replace the server's clock with a fresh one restored from the
        last persisted image (deep-copied on load, like the store)."""
        if server not in self.persisted:
            return
        image, ref_snap = self.persisted[server]
        fresh_new = self.new_cls(self.size, server)
        fresh_new.restore(copy.deepcopy(image))
        fresh_ref = self.ref_cls(self.size, server)
        fresh_ref.restore(ref_snap)
        self.new[server] = fresh_new
        self.ref[server] = fresh_ref
        self.check(server)

    def clear_dirty(self, server: int) -> None:
        self.new[server].clear_dirty()
        self.ref[server].clear_dirty()

    # -- the mirror assertion ------------------------------------------

    def check(self, server: int) -> None:
        new, ref = self.new[server], self.ref[server]
        assert new.dirty_cells() == ref.dirty_cells()
        if self.algo == "matrix":
            assert new.snapshot() == ref.snapshot()
        else:
            snap_new, snap_ref = new.snapshot(), ref.snapshot()
            for field in ("value", "cstate", "origin", "sent_state", "state"):
                assert snap_new[field] == snap_ref[field], field

    def check_all(self) -> None:
        for server in range(self.size):
            self.check(server)


OPS = st.one_of(
    st.tuples(st.just("send"), st.integers(0, 7), st.integers(0, 7)),
    st.tuples(st.just("deliver"), st.integers(0, 7), st.integers(0, 31)),
    st.tuples(st.just("retransmit"), st.integers(0, 7), st.integers(0, 31)),
    st.tuples(st.just("persist"), st.integers(0, 7), st.just(0)),
    st.tuples(st.just("restore"), st.integers(0, 7), st.just(0)),
    st.tuples(st.just("clear"), st.integers(0, 7), st.just(0)),
)


def run_schedule(algo, size, schedule):
    mirror = Mirror(algo, size)
    for op, a, b in schedule:
        a %= size
        if op == "send":
            dst = b % size
            if dst != a:
                mirror.send(a, dst)
        elif op == "deliver":
            if mirror.inflight[a]:
                mirror.try_deliver(a, b)
        elif op == "retransmit":
            if mirror.inflight[a]:
                mirror.retransmit(a, b)
        elif op == "persist":
            mirror.persist(a)
        elif op == "restore":
            mirror.crash_restore(a)
        elif op == "clear":
            mirror.clear_dirty(a)
    mirror.check_all()
    return mirror


class TestRandomSchedules:
    @settings(max_examples=80, deadline=None)
    @given(size=st.integers(2, 5), schedule=st.lists(OPS, max_size=80))
    def test_matrix(self, size, schedule):
        run_schedule("matrix", size, schedule)

    @settings(max_examples=80, deadline=None)
    @given(size=st.integers(2, 5), schedule=st.lists(OPS, max_size=80))
    def test_updates(self, size, schedule):
        run_schedule("updates", size, schedule)


class TestLogTrimAndWindowMerge:
    """Deterministic schedules that force the optimized structures through
    their edge paths: change-log trims, COW buffer sharing across many
    live stamps, and the full-merge fallback after a trim or restore."""

    def test_long_fifo_stream_crosses_log_trim(self):
        # size 2 → the matrix log trims at max(64, 4·s²) = 64 entries;
        # 200 sends force several trims mid-stream.
        mirror = Mirror("matrix", 2)
        for _ in range(200):
            mirror.send(0, 1)
            mirror.try_deliver(1, 0)
        assert not mirror.inflight[1]

    def test_updates_change_list_compaction(self):
        mirror = Mirror("updates", 2)
        for _ in range(200):
            mirror.send(0, 1)
            mirror.try_deliver(1, 0)
            mirror.send(1, 0)
            mirror.try_deliver(0, 0)

    def test_stale_stamps_survive_sender_restore(self):
        # Stamps taken before a crash share the pre-crash buffer/log; the
        # restored clock starts a new log, so the receiver's window merge
        # must fall back to the full index scan — same result as the
        # reference deep merge.
        mirror = Mirror("matrix", 3)
        mirror.send(0, 1)
        mirror.send(0, 1)
        mirror.persist(0)
        mirror.crash_restore(0)
        mirror.send(0, 2)
        while mirror.inflight[1]:
            mirror.try_deliver(1, 0)
        mirror.try_deliver(2, 0)
        mirror.check_all()

    def test_receiver_restore_resets_merge_window(self):
        # After the receiver restores, its record of "merged up to log
        # position k of sender's log" must not survive — the next merge
        # has to rescan, not trust a window into state it rolled back.
        mirror = Mirror("matrix", 2)
        mirror.send(0, 1)
        mirror.try_deliver(1, 0)
        mirror.persist(1)
        mirror.send(0, 1)
        mirror.try_deliver(1, 0)
        mirror.crash_restore(1)  # rolls back to after first delivery
        mirror.send(0, 1)  # third message; second is gone from flight
        # the receiver is now at seq 1; seq 3 must be held back
        s_new, s_ref = mirror.inflight[1][0]
        assert not mirror.new[1].can_deliver(s_new)
        assert not mirror.ref[1].can_deliver(s_ref)

    def test_legacy_list_snapshot_restore(self):
        # restore() must still accept the seed's list-of-lists snapshot
        # (old persisted images, and the exhaustive checker uses it).
        mirror = Mirror("matrix", 3)
        mirror.send(0, 1)
        mirror.try_deliver(1, 0)
        legacy = mirror.ref[1].snapshot()
        fresh = MatrixClock(3, 1)
        fresh.restore(legacy)
        assert fresh.snapshot() == legacy

    def test_sync_image_patches_match_full_snapshot(self):
        # The journal-patched image must equal a from-scratch snapshot at
        # every persist point, for both algorithms.
        for algo in ("matrix", "updates"):
            mirror = Mirror(algo, 3)
            for step in range(30):
                src, dst = step % 3, (step + 1) % 3
                mirror.send(src, dst)
                mirror.try_deliver(dst, 0)
                mirror.persist(dst)
                image, ref_snap = mirror.persisted[dst]
                fresh = mirror.new_cls(3, dst)
                fresh.restore(copy.deepcopy(image))
                if algo == "matrix":
                    assert fresh.snapshot() == ref_snap
                else:
                    got = fresh.snapshot()
                    for field in (
                        "value", "cstate", "origin", "sent_state", "state"
                    ):
                        assert got[field] == ref_snap[field], field
