"""Property-based tests (hypothesis) for the clock implementations.

The central invariant: for ANY message schedule and ANY admissible delivery
interleaving, the full-matrix and Updates clocks make identical delivery
decisions and converge to identical matrices — they are two wire formats of
one protocol. Plus safety properties: delivered messages per (src, dst) are
FIFO, and matrices are monotone and bounded by the true send counts.
"""

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.clocks import MatrixClock, UpdatesClock, VectorClock

GROUP = 4

# a schedule is a list of (src, dst) sends, src != dst
sends = st.tuples(
    st.integers(min_value=0, max_value=GROUP - 1),
    st.integers(min_value=0, max_value=GROUP - 1),
).filter(lambda pair: pair[0] != pair[1])

schedules = st.lists(sends, min_size=1, max_size=30)

# a permutation seed to vary delivery interleavings
shuffles = st.randoms(use_true_random=False)


def drive(clock_cls, schedule, rng):
    """Send per `schedule`; deliver in a randomized admissible order.
    Returns (clocks, delivered) where delivered is the per-receiver
    delivery log of (src, stamp) pairs."""
    clocks = [clock_cls(GROUP, i) for i in range(GROUP)]
    in_flight: List[Tuple[int, object]] = []
    delivered = {i: [] for i in range(GROUP)}

    def pump():
        progress = True
        while progress:
            progress = False
            candidates = [
                item
                for item in in_flight
                if clocks[item[0]].can_deliver(item[1])
            ]
            if candidates:
                choice = rng.choice(candidates)
                dst, stamp = choice
                clocks[dst].deliver(stamp)
                delivered[dst].append(stamp)
                in_flight.remove(choice)
                progress = True

    for src, dst in schedule:
        stamp = clocks[src].prepare_send(dst)
        in_flight.append((dst, stamp))
        if rng.random() < 0.5:
            pump()
    pump()
    assert not in_flight, "every message must eventually be deliverable"
    return clocks, delivered


class TestProtocolEquivalence:
    @given(schedule=schedules, rng=shuffles)
    @settings(max_examples=60, deadline=None)
    def test_matrices_converge_identically(self, schedule, rng):
        state = rng.getstate()
        full, _ = drive(MatrixClock, schedule, rng)
        rng.setstate(state)
        delta, _ = drive(UpdatesClock, schedule, rng)
        for owner in range(GROUP):
            for i in range(GROUP):
                for j in range(GROUP):
                    assert full[owner].cell(i, j) == delta[owner].cell(i, j)

    @given(schedule=schedules, rng=shuffles)
    @settings(max_examples=60, deadline=None)
    def test_delivery_orders_identical(self, schedule, rng):
        state = rng.getstate()
        _, full_log = drive(MatrixClock, schedule, rng)
        rng.setstate(state)
        _, delta_log = drive(UpdatesClock, schedule, rng)
        for receiver in range(GROUP):
            full_senders = [s.sender for s in full_log[receiver]]
            delta_senders = [s.sender for s in delta_log[receiver]]
            assert full_senders == delta_senders


class TestSafetyInvariants:
    @given(schedule=schedules, rng=shuffles)
    @settings(max_examples=60, deadline=None)
    def test_fifo_per_pair(self, schedule, rng):
        clocks, delivered = drive(MatrixClock, schedule, rng)
        for receiver, log in delivered.items():
            per_sender = {}
            for stamp in log:
                count = stamp.entry(stamp.sender, receiver)
                last = per_sender.get(stamp.sender, 0)
                assert count == last + 1, "FIFO per (src, dst) violated"
                per_sender[stamp.sender] = count

    @given(schedule=schedules, rng=shuffles)
    @settings(max_examples=60, deadline=None)
    def test_matrix_bounded_by_truth(self, schedule, rng):
        """No server ever believes more messages were sent than actually
        were (knowledge is an under-approximation of reality)."""
        truth = [[0] * GROUP for _ in range(GROUP)]
        for src, dst in schedule:
            truth[src][dst] += 1
        clocks, _ = drive(UpdatesClock, schedule, rng)
        for owner in range(GROUP):
            for i in range(GROUP):
                for j in range(GROUP):
                    assert clocks[owner].cell(i, j) <= truth[i][j]

    @given(schedule=schedules, rng=shuffles)
    @settings(max_examples=60, deadline=None)
    def test_own_row_is_exact(self, schedule, rng):
        """A server knows its own sends exactly."""
        truth = [[0] * GROUP for _ in range(GROUP)]
        for src, dst in schedule:
            truth[src][dst] += 1
        clocks, _ = drive(MatrixClock, schedule, rng)
        for owner in range(GROUP):
            for j in range(GROUP):
                assert clocks[owner].cell(owner, j) == truth[owner][j]

    @given(schedule=schedules, rng=shuffles)
    @settings(max_examples=40, deadline=None)
    def test_updates_deltas_never_exceed_full_stamp(self, schedule, rng):
        clocks = [UpdatesClock(GROUP, i) for i in range(GROUP)]
        in_flight = []
        for src, dst in schedule:
            stamp = clocks[src].prepare_send(dst)
            assert stamp.wire_cells <= GROUP * GROUP
            in_flight.append((dst, stamp))
            for item in list(in_flight):
                if clocks[item[0]].can_deliver(item[1]):
                    clocks[item[0]].deliver(item[1])
                    in_flight.remove(item)


class TestVectorClockProperties:
    events = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
        ).filter(lambda p: p[0] != p[1]),
        min_size=1,
        max_size=20,
    )

    @given(schedule=events)
    @settings(max_examples=60, deadline=None)
    def test_stamps_along_a_process_are_increasing(self, schedule):
        clocks = [VectorClock(3, i) for i in range(3)]
        last = {i: None for i in range(3)}
        for src, dst in schedule:
            stamp = clocks[src].stamp_send()
            received = clocks[dst].observe(stamp)
            for process, new in ((src, stamp), (dst, received)):
                previous = last[process]
                if previous is not None:
                    assert previous.strictly_precedes(new)
                last[process] = new
