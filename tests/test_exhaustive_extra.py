"""Heavier exhaustive scenarios: back-traffic (exercising the Updates
no-echo filter and the history ack-pruning under every interleaving) and
three-way equivalence between the exact mechanisms."""

import pytest

from repro.baselines.causal_histories import HistoryClock
from repro.causality.exhaustive import Send, explore
from repro.clocks.matrix import MatrixClock
from repro.clocks.updates import UpdatesClock


def pingpong_react(receiver, tag):
    """0↔2 ping-pong with a side relay through 1."""
    if receiver == 2 and tag == "ping":
        return [Send(2, 0, "pong")]
    if receiver == 1 and tag == "via":
        return [Send(1, 2, "relayed")]
    return []


PINGPONG = dict(
    size=3,
    initial_sends=[Send(0, 2, "ping"), Send(0, 1, "via")],
    react=pingpong_react,
)


def crossing_react(receiver, tag):
    """Two relays crossing in opposite directions through the middle."""
    if receiver == 1 and tag == "east":
        return [Send(1, 2, "east2")]
    if receiver == 1 and tag == "west":
        return [Send(1, 0, "west2")]
    return []


CROSSING = dict(
    size=3,
    initial_sends=[Send(0, 1, "east"), Send(2, 1, "west")],
    react=crossing_react,
)


def chatter_react(receiver, tag):
    """A 4-process storm: fan-out, reply, and a second-generation relay."""
    if tag == "seed" and receiver in (1, 2):
        return [Send(receiver, 3, f"gen1-{receiver}"), Send(receiver, 0, "ack")]
    if tag == "gen1-1" and receiver == 3:
        return [Send(3, 0, "closing")]
    return []


CHATTER = dict(
    size=4,
    initial_sends=[Send(0, 1, "seed"), Send(0, 2, "seed"), Send(0, 3, "direct")],
    react=chatter_react,
)

EXACT_CLOCKS = [MatrixClock, UpdatesClock, HistoryClock]
CLOCK_IDS = ["matrix", "updates", "histories"]


class TestExhaustiveScenarios:
    @pytest.mark.parametrize("clock_cls", EXACT_CLOCKS, ids=CLOCK_IDS)
    @pytest.mark.parametrize(
        "scenario", [PINGPONG, CROSSING, CHATTER],
        ids=["pingpong", "crossing", "chatter"],
    )
    def test_every_interleaving_is_causal(self, clock_cls, scenario):
        result = explore(clock_cls=clock_cls, **scenario)
        assert result.executions >= 1
        assert result.all_causal, (
            f"{clock_cls.__name__}: {result.violations} violations, "
            f"{result.deadlocks} deadlocks"
        )

    @pytest.mark.parametrize(
        "scenario", [PINGPONG, CROSSING, CHATTER],
        ids=["pingpong", "crossing", "chatter"],
    )
    def test_exact_mechanisms_admit_identical_interleavings(self, scenario):
        """Matrix, Updates and causal histories all characterize ≺ exactly,
        so they must admit precisely the same executions."""
        counts = {
            clock_cls.__name__: explore(clock_cls=clock_cls, **scenario).executions
            for clock_cls in EXACT_CLOCKS
        }
        assert len(set(counts.values())) == 1, counts
