"""The §2 FM-reduction baseline: FIFO-only clocks lose global causality —
proved by exhaustive enumeration, exactly as the paper asserts."""

import pytest

from repro.causality import check_trace
from repro.causality.exhaustive import Send, explore
from repro.baselines.local_fifo import FifoClock, FifoStamp
from repro.errors import ClockError


class TestFifoClockUnit:
    def test_fifo_within_a_pair(self):
        a = FifoClock(3, 0)
        b = FifoClock(3, 1)
        first = a.prepare_send(1)
        second = a.prepare_send(1)
        assert not b.can_deliver(second)
        b.deliver(first)
        assert b.can_deliver(second)

    def test_one_cell_on_the_wire(self):
        a = FifoClock(5, 0)
        assert a.prepare_send(1).wire_cells == 1

    def test_duplicate_detection(self):
        a = FifoClock(2, 0)
        b = FifoClock(2, 1)
        stamp = a.prepare_send(1)
        assert not b.is_duplicate(stamp)
        b.deliver(stamp)
        assert b.is_duplicate(stamp)

    def test_snapshot_roundtrip(self):
        a = FifoClock(3, 0)
        a.prepare_send(1)
        fresh = FifoClock(3, 0)
        fresh.restore(a.snapshot())
        assert fresh.cell(0, 1) == 1

    def test_self_send_rejected(self):
        with pytest.raises(ClockError):
            FifoClock(3, 1).prepare_send(1)

    def test_undeliverable_rejected(self):
        a = FifoClock(2, 0)
        b = FifoClock(2, 1)
        a.prepare_send(1)
        second = a.prepare_send(1)
        with pytest.raises(ClockError):
            b.deliver(second)


RELAY_SCENARIO = dict(
    size=3,
    initial_sends=[Send(0, 2, "n"), Send(0, 1, "m1")],
    react=lambda receiver, tag: (
        [Send(1, 2, "m2")] if (receiver, tag) == (1, "m1") else []
    ),
)


class TestSection2Claim:
    def test_fifo_only_admits_causality_violations(self):
        """The paper, §2, on the FM reduction: "this algorithm does not
        ensure the global causal delivery of messages". Exhaustively true:
        the triangle relay has executions where the relayed message beats
        the direct one."""
        result = explore(clock_cls=FifoClock, **RELAY_SCENARIO)
        assert result.violations > 0
        assert result.witness is not None
        report = check_trace(result.witness)
        assert not report.respects_causality

    def test_but_never_deadlocks(self):
        result = explore(clock_cls=FifoClock, **RELAY_SCENARIO)
        assert result.deadlocks == 0

    def test_fifo_alone_is_violation_free_without_relays(self):
        """With no relaying, per-pair FIFO *is* enough — the violations
        come precisely from transitive dependencies."""
        result = explore(
            clock_cls=FifoClock,
            size=3,
            initial_sends=[
                Send(0, 2, "a"),
                Send(0, 2, "b"),
                Send(1, 2, "c"),
            ],
        )
        assert result.violations == 0

    def test_admits_strictly_more_executions_than_matrix(self):
        """Weaker delivery conditions admit more interleavings — including
        the bad ones the matrix clock forbids."""
        from repro.clocks.matrix import MatrixClock

        fifo = explore(clock_cls=FifoClock, **RELAY_SCENARIO)
        matrix = explore(clock_cls=MatrixClock, **RELAY_SCENARIO)
        assert fifo.executions > matrix.executions


class TestFifoInTheMom:
    def test_booting_the_mom_with_fifo_clocks_loses_causality(self):
        """End to end: clock_algorithm="fifo" runs fine mechanically but a
        relay race slips past it — the same race the matrix clock blocks
        (compare tests/test_theorem.py's acyclic control)."""
        from repro.mom import BusConfig, FunctionAgent, MessageBus
        from repro.mom.agent import Agent
        from repro.topology import single_domain

        class Relay(Agent):
            def __init__(self):
                super().__init__()
                self.next_hop = None

            def react(self, ctx, sender, payload):
                ctx.send(self.next_hop, payload)

        mom = MessageBus(
            BusConfig(topology=single_domain(3), clock_algorithm="fifo")
        )
        order = []
        sink = FunctionAgent(lambda ctx, s, p: order.append(p))
        sink_id = mom.deploy(sink, 2)
        relay = Relay()
        relay_id = mom.deploy(relay, 1)
        relay.next_hop = sink_id
        starter = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(sink_id, "n-direct")
            ctx.send(relay_id, "m-chain")

        starter.on_boot = boot
        mom.deploy(starter, 0)
        # delay the direct link so the relayed copy wins the race
        mom.network.partition(0, 2)
        mom.sim.schedule_at(400.0, mom.network.heal, 0, 2)
        mom.start()
        mom.run_until_idle()

        assert order == ["m-chain", "n-direct"]
        assert not mom.check_app_causality().respects_causality

    def test_matrix_clock_blocks_the_same_race(self):
        """Control: identical schedule, real clock — no violation."""
        from repro.mom import BusConfig, FunctionAgent, MessageBus
        from repro.mom.agent import Agent
        from repro.topology import single_domain

        class Relay(Agent):
            def __init__(self):
                super().__init__()
                self.next_hop = None

            def react(self, ctx, sender, payload):
                ctx.send(self.next_hop, payload)

        mom = MessageBus(BusConfig(topology=single_domain(3)))
        order = []
        sink = FunctionAgent(lambda ctx, s, p: order.append(p))
        sink_id = mom.deploy(sink, 2)
        relay = Relay()
        relay_id = mom.deploy(relay, 1)
        relay.next_hop = sink_id
        starter = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(sink_id, "n-direct")
            ctx.send(relay_id, "m-chain")

        starter.on_boot = boot
        mom.deploy(starter, 0)
        mom.network.partition(0, 2)
        mom.sim.schedule_at(400.0, mom.network.heal, 0, 2)
        mom.start()
        mom.run_until_idle()

        assert order == ["n-direct", "m-chain"], (
            "the matrix clock must hold the relayed copy back"
        )
        assert mom.check_app_causality().respects_causality
