"""Determinism guarantees: identical runs are bit-for-bit identical;
different seeds genuinely differ.

Everything else in this repository leans on this property — calibrated
figures, low round counts, diffable reports — so it gets its own tests.
"""

import io

import pytest

from repro.bench import run_broadcast, run_remote_unicast
from repro.mom import BusConfig, EchoAgent, FunctionAgent, MessageBus
from repro.mom.scenario import run_scenario
from repro.simulation.network import UniformLatency
from repro.topology import bus as bus_topology


def run_jittery(seed):
    mom = MessageBus(
        BusConfig(
            topology=bus_topology(12, 4),
            seed=seed,
            latency=UniformLatency(0.1, 20.0),
            loss_rate=0.1,
        )
    )
    echo_id = mom.deploy(EchoAgent(), 9)
    sender = FunctionAgent(lambda ctx, s, p: None)

    def boot(ctx):
        for i in range(10):
            ctx.send(echo_id, i)

    sender.on_boot = boot
    mom.deploy(sender, 0)
    mom.start()
    mom.run_until_idle()
    return mom


class TestDeterminism:
    def test_identical_runs_produce_identical_metrics(self):
        first = run_jittery(7).metrics.snapshot()
        second = run_jittery(7).metrics.snapshot()
        assert first == second

    def test_identical_runs_produce_identical_traces(self):
        a, b = run_jittery(7), run_jittery(7)
        buffer_a, buffer_b = io.StringIO(), io.StringIO()
        a.export_app_trace(buffer_a)
        b.export_app_trace(buffer_b)
        assert buffer_a.getvalue() == buffer_b.getvalue()

    def test_identical_runs_end_at_the_same_instant(self):
        assert run_jittery(3).sim.now == run_jittery(3).sim.now

    def test_different_seeds_differ(self):
        first = run_jittery(1)
        second = run_jittery(2)
        # with 10% loss and 20 ms jitter, two seeds agreeing on both the
        # final time and retransmission count would be astonishing
        fingerprints = [
            (
                mom.sim.now,
                sum(s.transport.retransmissions for s in mom.servers.values()),
            )
            for mom in (first, second)
        ]
        assert fingerprints[0] != fingerprints[1]

    def test_experiment_runners_are_deterministic(self):
        a = run_remote_unicast(20, topology="bus", rounds=5, seed=9)
        b = run_remote_unicast(20, topology="bus", rounds=5, seed=9)
        assert a.mean_turnaround_ms == b.mean_turnaround_ms
        assert a.wire_cells == b.wire_cells
        assert a.persisted_cells == b.persisted_cells

    def test_broadcast_runner_deterministic(self):
        a = run_broadcast(15, rounds=3, seed=4)
        b = run_broadcast(15, rounds=3, seed=4)
        assert a.mean_turnaround_ms == b.mean_turnaround_ms

    def test_scenarios_are_deterministic(self):
        scenario = {
            "topology": {"kind": "daisy", "servers": 10, "domain_size": 4},
            "seed": 11,
            "latency": {"kind": "exponential", "mean": 4.0},
            "agents": [
                {"name": "echo", "server": 9, "kind": "echo"},
                {
                    "name": "driver",
                    "server": 0,
                    "kind": "pingpong",
                    "target": "echo",
                    "rounds": 6,
                },
            ],
        }
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.metrics == second.metrics
        assert first.bus.sim.now == second.bus.sim.now
