"""Property-based tests for the topology layer: builders, partitioner,
repair, routing — on randomized inputs."""

import random as pyrandom

from hypothesis import assume, given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology import (
    CommunicationGraph,
    build_routing_tables,
    bus,
    daisy,
    estimate_traffic_cost,
    from_domain_map,
    partition_communication_graph,
    repair_topology,
    route,
    single_domain,
    tree,
    validate_topology,
)


class TestBuilderProperties:
    @given(
        n=st.integers(min_value=2, max_value=200),
        size=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_bus_always_valid_and_complete(self, n, size):
        assume(size == 0 or size >= 2)
        topology = bus(n, size)
        validate_topology(topology)
        assert topology.server_count == n

    @given(
        n=st.integers(min_value=2, max_value=150),
        size=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_daisy_always_valid_and_complete(self, n, size):
        topology = daisy(n, size)
        validate_topology(topology)
        assert topology.server_count == n

    @given(
        n=st.integers(min_value=2, max_value=120),
        fanout=st.integers(min_value=1, max_value=4),
        size=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_tree_always_valid_and_complete(self, n, fanout, size):
        topology = tree(n, fanout=fanout, domain_size=size)
        validate_topology(topology)
        assert topology.server_count == n

    @given(n=st.integers(min_value=2, max_value=80))
    @settings(max_examples=40, deadline=None)
    def test_every_builder_routes_all_pairs(self, n):
        for topology in (bus(n), daisy(n, 4) if n >= 2 else None):
            if topology is None:
                continue
            tables = build_routing_tables(topology)
            rng = pyrandom.Random(n)
            pairs = [
                (rng.randrange(n), rng.randrange(n)) for _ in range(10)
            ]
            for src, dst in pairs:
                if src == dst:
                    continue
                path = route(tables, src, dst)
                assert path[0] == src and path[-1] == dst
                for a, b in zip(path, path[1:]):
                    assert topology.common_domains(a, b)


class TestPartitionProperties:
    @given(
        n=st.integers(min_value=4, max_value=40),
        seed=st.integers(min_value=0, max_value=999),
        cap=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_partitioner_output_always_validates(self, n, seed, cap):
        rng = pyrandom.Random(seed)
        comm = CommunicationGraph(n)
        for _ in range(min(60, n * 2)):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                comm.add_traffic(a, b, rng.uniform(0.5, 10.0))
        topology = partition_communication_graph(comm, max_domain_size=cap)
        validate_topology(topology)
        assert topology.server_count == n

    @given(
        n=st.integers(min_value=6, max_value=30),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_partitioned_never_worse_than_flat(self, n, seed):
        rng = pyrandom.Random(seed)
        comm = CommunicationGraph(n)
        for _ in range(n * 2):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                comm.add_traffic(a, b, rng.uniform(0.5, 5.0))
        topology = partition_communication_graph(comm)
        flat_cost = estimate_traffic_cost(single_domain(n), comm)
        smart_cost = estimate_traffic_cost(topology, comm)
        # with s² per-domain costs, any decomposition into smaller domains
        # beats one huge domain on every route
        assert smart_cost <= flat_cost


class TestRepairProperties:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        domain_count=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_repair_random_overlapping_domains(self, seed, domain_count):
        """Random overlapping domain soups: repair either produces a valid
        topology or reports clearly why it cannot."""
        rng = pyrandom.Random(seed)
        n = rng.randint(domain_count + 1, domain_count * 4)
        mapping = {}
        for d in range(domain_count):
            size = rng.randint(2, max(2, n // 2))
            mapping[f"d{d}"] = rng.sample(range(n), k=min(size, n))
        covered = sorted({s for servers in mapping.values() for s in servers})
        remap = {old: new for new, old in enumerate(covered)}
        mapping = {
            k: [remap[s] for s in servers] for k, servers in mapping.items()
        }
        try:
            topology = from_domain_map(mapping)
        except TopologyError:
            return  # degenerate map (duplicate in one domain etc.)
        try:
            repaired, actions = repair_topology(topology)
        except TopologyError:
            return  # disconnected or unrepairable: acceptable, reported
        validate_topology(repaired)
        assert repaired.server_count == topology.server_count
