"""Property-based tests for the diagram linearizer and renderers."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.bench.__main__ import main as bench_main
from repro.causality import Message, Trace, render_space_time, render_timeline
from repro.causality.diagram import _linearize
from repro.causality.trace import EventKind
from repro.topology.__main__ import main as topology_main

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.booleans(),
    ).filter(lambda t: t[0] != t[1]),
    min_size=1,
    max_size=18,
)


def build(op_list):
    trace = Trace()
    for index, (src, dst, receive) in enumerate(op_list):
        m = Message(index, src, dst)
        trace.record_send(m)
        if receive:
            trace.record_receive(m)
    return trace


class TestLinearizerProperties:
    @given(op_list=ops)
    @settings(max_examples=80, deadline=None)
    def test_linearization_is_complete_and_valid(self, op_list):
        trace = build(op_list)
        order = _linearize(trace)
        assert len(order) == len(trace)
        position = {
            (e.process, e.message.mid, e.kind): i for i, e in enumerate(order)
        }
        # send before receive, always
        for event in order:
            if event.kind is EventKind.RECEIVE:
                send_key = (
                    event.message.src, event.message.mid, EventKind.SEND,
                )
                assert position[send_key] < position[
                    (event.process, event.message.mid, event.kind)
                ]
        # local orders respected
        for process in trace.processes:
            history = trace.events_of(process)
            indices = [
                position[(process, e.message.mid, e.kind)] for e in history
            ]
            assert indices == sorted(indices)

    @given(op_list=ops)
    @settings(max_examples=60, deadline=None)
    def test_lanes_always_aligned(self, op_list):
        trace = build(op_list)
        lines = render_space_time(trace).splitlines()
        assert len({len(line) for line in lines}) <= 1 or len(lines) <= 1

    @given(op_list=ops)
    @settings(max_examples=60, deadline=None)
    def test_timeline_counts_every_event(self, op_list):
        trace = build(op_list)
        timeline = render_timeline(trace)
        assert len(timeline.splitlines()) == len(trace)


class TestCliHelp:
    def test_bench_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as info:
            bench_main(["--help"])
        assert info.value.code == 0
        assert "fig7" in capsys.readouterr().out

    def test_topology_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as info:
            topology_main(["--help"])
        assert info.value.code == 0
        assert "repair" in capsys.readouterr().out
