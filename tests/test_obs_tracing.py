"""End-to-end tracer behaviour on live buses.

The two headline guarantees:

- the trace id (the notification's nid) survives router hops, so one id
  pulls the whole multi-domain causal path out of the ring;
- tracing is observation-only: a traced run is bit-identical to an
  untraced one (metrics snapshot, sim clock).
"""

import pytest

from repro.mom.agent import EchoAgent, FunctionAgent
from repro.mom.workloads import PingPongDriver
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.obs import attach, detach, install, is_installed, uninstall
from repro.simulation.network import UniformLatency
from repro.topology.builders import bus as bus_topology
from repro.topology.builders import single_domain


def make_pingpong_bus(topology, rounds=5, target_server=None):
    """EchoAgent on the last server, bound PingPongDriver on server 0."""
    if target_server is None:
        target_server = topology.server_count - 1
    mom = MessageBus(BusConfig(topology=topology))
    echo_id = mom.deploy(EchoAgent(), target_server)
    driver = PingPongDriver(rounds)
    driver.bind(echo_id)
    mom.deploy(driver, 0)
    return mom, driver


def run_jittery(seed, trace=False):
    """The determinism-suite workload: 12 servers on a bus of domains,
    jittery lossy network, 10 messages crossing domains."""
    mom = MessageBus(
        BusConfig(
            topology=bus_topology(12, 4),
            seed=seed,
            latency=UniformLatency(0.1, 20.0),
            loss_rate=0.1,
        )
    )
    tracer = attach(mom) if trace else None
    echo_id = mom.deploy(EchoAgent(), 9)
    sender = FunctionAgent(lambda ctx, s, p: None)

    def boot(ctx):
        for i in range(10):
            ctx.send(echo_id, i)

    sender.on_boot = boot
    mom.deploy(sender, 0)
    mom.start()
    mom.run_until_idle()
    return mom, tracer


class TestTraceIdPropagation:
    def test_one_nid_spans_router_hops(self):
        """Server 0 -> server 11 on a bus of domains is a multi-hop route;
        every hop's events must carry the original nid."""
        mom, driver = make_pingpong_bus(bus_topology(12, 4), rounds=3)
        tracer = attach(mom)
        mom.start()
        mom.run_until_idle()
        assert driver.mean_rtt > 0

        forwards = [e for e in tracer.events() if e.kind == "route_forward"]
        assert forwards, "bus(12,4) end-to-end traffic must cross routers"
        nid = forwards[0].nid
        path = tracer.events_of(nid)

        domains = {e.domain for e in path if e.kind == "stamp"}
        assert len(domains) >= 2, (
            f"nid {nid} should be re-stamped in each domain it crosses, "
            f"saw {domains}"
        )
        kinds = [e.kind for e in path]
        assert kinds[0] == "post"
        for expected in ("stamp", "transmit", "commit", "route_forward",
                         "enqueue_in", "reaction_start", "reaction_commit"):
            assert expected in kinds
        # one post at the origin, one final delivery at the target
        assert kinds.count("post") == 1
        assert kinds.count("reaction_commit") == 1

    def test_hop_events_chronological(self):
        mom, _ = make_pingpong_bus(bus_topology(12, 4), rounds=2)
        tracer = attach(mom)
        mom.start()
        mom.run_until_idle()
        for nid in {e.nid for e in tracer.events() if e.nid >= 0}:
            path = tracer.events_of(nid)
            assert [e.t for e in path] == sorted(e.t for e in path)
            assert [e.seq for e in path] == sorted(e.seq for e in path)

    def test_e2e_histogram_counts_remote_deliveries(self):
        mom, _ = make_pingpong_bus(bus_topology(12, 4), rounds=3)
        tracer = attach(mom)
        mom.start()
        mom.run_until_idle()
        # 3 pings + 3 pongs, all remote
        assert tracer.hist("e2e_delivery_ms").count == 6


class TestObservationOnly:
    def test_traced_run_bit_identical_to_untraced(self):
        bare, _ = run_jittery(7)
        traced, tracer = run_jittery(7, trace=True)
        assert traced.metrics.snapshot() == bare.metrics.snapshot()
        assert traced.sim.now == bare.sim.now
        assert tracer.ring.next_seq > 0

    def test_lossy_run_records_retransmits(self):
        _, tracer = run_jittery(7, trace=True)
        kinds = {e.kind for e in tracer.events()}
        assert "retransmit" in kinds

    def test_jittery_run_exercises_holdback(self):
        # seed chosen so out-of-order arrival actually happens
        _, tracer = run_jittery(7, trace=True)
        enters = sum(
            1 for e in tracer.events() if e.kind == "holdback_enter"
        )
        releases = sum(
            1 for e in tracer.events() if e.kind == "holdback_release"
        )
        assert enters == releases
        assert tracer.hist("holdback_dwell_ms").count == releases


class TestAttachDetach:
    def test_attach_is_idempotent(self):
        mom, _ = make_pingpong_bus(single_domain(4))
        tracer = attach(mom)
        assert attach(mom) is tracer

    def test_detach_restores_hooks(self):
        mom, driver = make_pingpong_bus(single_domain(4), rounds=2)
        tracer = attach(mom)
        detach(mom)
        mom.start()
        mom.run_until_idle()
        assert driver.mean_rtt > 0
        assert tracer.ring.next_seq == 0
        assert mom._tracer is None
        for server in mom.servers.values():
            assert server._tracer is None

    def test_install_patches_new_buses(self):
        if is_installed():
            pytest.skip("tracer globally installed via REPRO_TRACE=1")
        install()
        try:
            assert is_installed()
            mom, _ = make_pingpong_bus(single_domain(4), rounds=2)
            mom.start()
            mom.run_until_idle()
            assert mom._obs_tracer.ring.next_seq > 0
        finally:
            uninstall()
        assert not is_installed()

    def test_install_capacity_env(self, monkeypatch):
        if is_installed():
            pytest.skip("tracer globally installed via REPRO_TRACE=1")
        monkeypatch.setenv("REPRO_TRACE_CAPACITY", "128")
        install()
        try:
            mom, _ = make_pingpong_bus(single_domain(4))
            assert mom._obs_tracer.ring.capacity == 128
        finally:
            uninstall()
