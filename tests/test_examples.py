"""Smoke tests: every shipped example runs clean in-process.

Each example carries its own assertions (causality verdicts, delivery
orders), so "ran to completion" is a meaningful check, not just an import
test.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output, "examples must narrate what they do"


def test_all_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "stock_ticker",
        "collaborative_log",
        "mobile_cells",
        "theorem_demo",
    } <= names
