"""Engine-level tests: reaction scheduling, boot ordering, multi-agent
interleaving, persistence of QueueIN."""

import pytest

from repro.errors import AgentError
from repro.mom import BusConfig, FunctionAgent, MessageBus
from repro.mom.agent import Agent
from repro.mom.identifiers import AgentId
from repro.topology import single_domain


class Logger(Agent):
    def __init__(self, log, tag):
        super().__init__()
        self.log = log
        self.tag = tag

    def on_boot(self, ctx):
        self.log.append((self.tag, "boot", ctx.now))

    def react(self, ctx, sender, payload):
        self.log.append((self.tag, payload, ctx.now))

    def snapshot(self):
        return None

    def restore(self, snapshot):
        pass


class TestBootOrdering:
    def test_boot_hooks_run_in_deployment_order(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        log = []
        for tag in ("a", "b", "c"):
            mom.deploy(Logger(log, tag), 0)
        mom.start()
        mom.run_until_idle()
        assert [entry[0] for entry in log] == ["a", "b", "c"]

    def test_boot_sends_ordered_before_later_reactions(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        log = []
        receiver = Logger(log, "rx")
        receiver_id = mom.deploy(receiver, 0)

        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(receiver_id, "first")
            ctx.send(receiver_id, "second")

        sender.on_boot = boot
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        payloads = [entry[1] for entry in log if entry[0] == "rx"]
        assert payloads == ["boot", "first", "second"]


class TestReactionScheduling:
    def test_one_reaction_at_a_time_per_server(self):
        """Reactions on a server never overlap: each starts after the
        previous one's charged duration."""
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        log = []
        a = Logger(log, "a")
        b = Logger(log, "b")
        a_id = mom.deploy(a, 0)
        b_id = mom.deploy(b, 0)
        kicker = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            for _ in range(3):
                ctx.send(a_id, "ping")
                ctx.send(b_id, "ping")

        kicker.on_boot = boot
        mom.deploy(kicker, 0)
        mom.start()
        mom.run_until_idle()
        reaction_times = sorted(entry[2] for entry in log)
        cost = mom.config.cost_model.agent_reaction_ms
        for earlier, later in zip(reaction_times, reaction_times[1:]):
            assert later - earlier >= cost - 1e-9

    def test_interleaving_is_fifo_across_agents_of_one_server(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        log = []
        a_id = mom.deploy(Logger(log, "a"), 0)
        b_id = mom.deploy(Logger(log, "b"), 0)
        kicker = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(a_id, 1)
            ctx.send(b_id, 2)
            ctx.send(a_id, 3)

        kicker.on_boot = boot
        mom.deploy(kicker, 0)
        mom.start()
        mom.run_until_idle()
        reactions = [
            (tag, payload) for tag, payload, _ in log if payload != "boot"
        ]
        assert reactions == [("a", 1), ("b", 2), ("a", 3)]

    def test_unknown_target_agent_raises(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        bad = FunctionAgent(lambda ctx, s, p: None)
        # server 1 exists but has no agent 5
        bad.on_boot = lambda ctx: ctx.send(AgentId(1, 5), "void")
        mom.deploy(bad, 0)
        mom.start()
        with pytest.raises(AgentError):
            mom.run_until_idle()

    def test_reaction_exception_carries_context(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))

        def explode(ctx, sender, payload):
            raise AgentError("boom")

        bomb = FunctionAgent(explode)
        bomb_id = mom.deploy(bomb, 0)
        kicker = FunctionAgent(lambda ctx, s, p: None)
        kicker.on_boot = lambda ctx: ctx.send(bomb_id, "x")
        mom.deploy(kicker, 0)
        mom.start()
        with pytest.raises(AgentError, match="boom"):
            mom.run_until_idle()


class TestQueuePersistence:
    def test_queue_in_survives_crash_with_pending_work(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        log = []
        slow = Logger(log, "slow")
        slow_id = mom.deploy(slow, 0)
        kicker = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            for i in range(5):
                ctx.send(slow_id, i)

        kicker.on_boot = boot
        mom.deploy(kicker, 0)
        mom.start()
        # crash while several reactions are still queued
        mom.sim.schedule_at(3.5, lambda: mom.server(0).crash())
        mom.sim.schedule_at(50.0, lambda: mom.server(0).recover())
        mom.run_until_idle()
        payloads = [p for tag, p, _ in log if tag == "slow" and p != "boot"]
        assert payloads == [0, 1, 2, 3, 4]
