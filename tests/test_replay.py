"""Time-travel replay: the identity oracle and the cursor machinery.

The contract under test (docs/observability.md): for any sim-time ``T``,
:class:`repro.obs.replay.Replayer` seeked to ``T`` over a trace dump
produces *byte-identical* canonical JSON to a live bus of the same
configuration running ``run(until=T)`` and taking
:meth:`~repro.mom.bus.MessageBus.protocol_snapshot` — clock matrices,
hold-back queues, in-flight sets and delivered prefixes included. The
oracle is asserted for several scenario-zoo scenarios on sequential dumps
*and* on ``REPRO_PARALLEL=2`` merged-parallel dumps
(:func:`repro.obs.shardmon.merged_trace_dump`).
"""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.mom.agent import EchoAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.mom.parallel import ShardedBus, make_bus
from repro.mom.workloads import OpenLoopDriver, PingPongDriver, SinkAgent
from repro.obs import shardmon
from repro.obs.export import TraceDump
from repro.obs.replay import (
    Replayer,
    check_dump_complete,
    watch_deliverable,
    watch_holdback_exceeds,
)
from repro.obs.tracer import attach
from repro.topology import builders


@pytest.fixture(autouse=True)
def config_controls_parallel(monkeypatch):
    """Pin execution mode via the config field (the CI parallel job sets
    REPRO_PARALLEL suite-wide, which would shard the live oracle too)."""
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)


def _config(parallel="off"):
    return BusConfig(
        topology=builders.bus(12, 4),
        record_delivered_log=True,
        parallel=parallel,
        workers=2,
    )


# ----------------------------------------------------------------------
# Scenario zoo (mirrors tests/test_parallel_differential.py)
# ----------------------------------------------------------------------


def _pingpong(bus):
    echo_id = bus.deploy(EchoAgent(), 9)
    driver = PingPongDriver(10)
    driver.bind(echo_id)
    bus.deploy(driver, 0)
    return bus


def _churn(bus):
    for src, dst in [(0, 9), (9, 0), (4, 11)]:
        sink_id = bus.deploy(SinkAgent(), dst)
        driver = OpenLoopDriver(period_ms=7.0, count=15)
        driver.bind(sink_id)
        bus.deploy(driver, src)
    return bus


def _crash_failover(bus):
    _pingpong(bus)
    bus.schedule_crash(40.0, 5, 300.0)
    return bus


SCENARIOS = {
    "pingpong": _pingpong,
    "churn": _churn,
    "crash_failover": _crash_failover,
}

#: crash scenarios are not shard-eligible-relevant here — they are, but
#: the merged-dump matrix keeps to the steady-state scenarios plus one
#: failover to bound runtime
MERGED_SCENARIOS = ("pingpong", "churn", "crash_failover")


def _sequential_dump(populate):
    """Record one traced sequential run; returns (dump, end_time)."""
    bus = populate(MessageBus(_config()))
    tracer = attach(bus)
    bus.start()
    bus.run_until_idle()
    return TraceDump.from_tracer(tracer), bus.sim.now


def _merged_dump(populate, monkeypatch):
    """Record one REPRO_PARALLEL=2 sharded run; returns (dump, end)."""
    from repro.obs import install, is_installed, uninstall

    monkeypatch.setenv("REPRO_PARALLEL", "2")
    installed_here = not is_installed()
    if installed_here:
        install()
    try:
        bus = populate(make_bus(_config("auto")))
        assert isinstance(bus, ShardedBus), "scenario must be shard-eligible"
        bus.start()
        bus.run_until_idle()
        dump = shardmon.merged_trace_dump(bus)
        end = bus.sim.now
    finally:
        if installed_here:
            uninstall()
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    return dump, end


def _oracle_points(replay, end):
    """A spread of instants: fractions of the run plus exact event times
    (the boundary case — run(until=T) drains everything scheduled at T)."""
    events = replay.events
    points = sorted(
        {0.0, end * 0.25, end * 0.5, end * 0.75, end}
        | {events[len(events) // 3].t, events[(2 * len(events)) // 3].t}
    )
    return points


def _assert_identity(dump, populate, end):
    replay = Replayer(dump)
    live = populate(MessageBus(_config()))
    live.start()
    for t in _oracle_points(replay, end):
        live_json = json.dumps(live.snapshot_at(t), sort_keys=True)
        replay.seek(t)
        assert replay.snapshot_json() == live_json, (
            f"replayed state diverges from the live snapshot at t={t}"
        )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_replay_identity_sequential(scenario):
    """Byte-equality of replayed and live state on sequential dumps."""
    dump, end = _sequential_dump(SCENARIOS[scenario])
    _assert_identity(dump, SCENARIOS[scenario], end)


@pytest.mark.parametrize("scenario", sorted(MERGED_SCENARIOS))
def test_replay_identity_merged_parallel(scenario, monkeypatch):
    """Byte-equality holds replaying a REPRO_PARALLEL=2 merged dump —
    the merged ring carries exactly the sequential run's events, so the
    live oracle stays the (bit-identical) sequential bus."""
    dump, end = _merged_dump(SCENARIOS[scenario], monkeypatch)
    _assert_identity(dump, SCENARIOS[scenario], end)


# ----------------------------------------------------------------------
# Cursor: step_forward / step_back / seek
# ----------------------------------------------------------------------


def test_step_back_is_exact_inverse():
    dump, _ = _sequential_dump(_crash_failover)
    replay = Replayer(dump)
    replay.seek(math.inf)
    assert replay.cursor == len(replay.events)
    for back in (1, 7, 100):
        before = replay.cursor
        for _ in range(back):
            replay.step_back()
        mid_cursor = replay.cursor
        mid_state = replay.snapshot_json()
        for _ in range(back):
            replay.step_forward()
        assert replay.cursor == before
        for _ in range(back):
            replay.step_back()
        assert replay.cursor == mid_cursor
        assert replay.snapshot_json() == mid_state
        for _ in range(back):
            replay.step_forward()


def test_seek_backward_matches_fresh_replay():
    dump, end = _sequential_dump(_churn)
    replay = Replayer(dump)
    replay.seek(end)
    replay.seek(end * 0.3)
    fresh = Replayer(dump)
    fresh.seek(end * 0.3)
    assert replay.cursor == fresh.cursor
    assert replay.snapshot_json() == fresh.snapshot_json()


def test_step_forward_returns_events_in_order_and_ends_none():
    dump, _ = _sequential_dump(_pingpong)
    replay = Replayer(dump)
    seen = []
    while True:
        event = replay.step_forward()
        if event is None:
            break
        seen.append(event)
    assert seen == replay.events
    assert replay.step_forward() is None


# ----------------------------------------------------------------------
# Watchpoints
# ----------------------------------------------------------------------


def test_watch_holdback_exceeds_stops_at_first_crossing():
    dump, _ = _sequential_dump(_churn)
    probe = Replayer(dump)
    depths = {}
    while probe.step_forward() is not None:
        for event in [probe.events[probe.cursor - 1]]:
            if event.kind == "holdback_enter":
                depths.setdefault(event.server, []).append(
                    probe.holdback_depth(event.server)
                )
    assert depths, "churn scenario must exercise the hold-back store"
    server = max(depths, key=lambda s: max(depths[s]))
    threshold = max(depths[server]) - 1
    replay = Replayer(dump)
    hit = replay.run_until(watch_holdback_exceeds(server, threshold))
    assert hit is not None
    assert hit.kind == "holdback_enter" and hit.server == server
    assert replay.holdback_depth(server) == threshold + 1


def test_watch_deliverable_fires_before_the_commit():
    dump, _ = _sequential_dump(_churn)
    held_nids = {
        e.nid for e in dump.events if e.kind == "holdback_release"
    }
    assert held_nids, "churn scenario must hold something back"
    nid = sorted(held_nids)[0]
    replay = Replayer(dump)
    hit = replay.run_until(watch_deliverable(nid))
    assert hit is not None
    assert replay.is_deliverable(nid)
    committed = any(
        e.kind == "reaction_commit" and e.nid == nid
        for e in replay.events[: replay.cursor]
    )
    assert not committed, "watchpoint must fire before the final delivery"


def test_run_until_respects_limit():
    dump, end = _sequential_dump(_pingpong)
    replay = Replayer(dump)
    never = replay.run_until(lambda r, e: False, limit=end * 0.5)
    assert never is None
    assert replay.now <= end * 0.5


# ----------------------------------------------------------------------
# Refusals: wrapped rings, partial dumps
# ----------------------------------------------------------------------


def test_replay_refuses_wrapped_ring():
    dump, _ = _sequential_dump(_pingpong)
    dump.meta["dropped"] = 17
    with pytest.raises(ConfigurationError, match="wrapped ring"):
        Replayer(dump)


def test_check_dump_complete_names_the_missing_kind():
    dump, _ = _sequential_dump(_pingpong)
    partial = TraceDump(
        dict(dump.meta),
        [e for e in dump.events if e.kind != "arrive"],
        dump.cpu,
        dump.histograms,
    )
    with pytest.raises(ConfigurationError) as exc:
        check_dump_complete(partial)
    assert "missing event kind 'arrive'" in str(exc.value)
    assert "re-record with REPRO_TRACE=1 full hooks" in str(exc.value)


def test_check_dump_complete_accepts_full_and_wrapped_dumps():
    dump, _ = _sequential_dump(_churn)
    check_dump_complete(dump)  # full hooks: no raise
    wrapped = TraceDump(
        dict(dump.meta, dropped=3),
        [e for e in dump.events if e.kind != "arrive"],
        dump.cpu,
        dump.histograms,
    )
    check_dump_complete(wrapped)  # wraparound: degradation, not an error


# ----------------------------------------------------------------------
# Snapshot shape details
# ----------------------------------------------------------------------


def test_snapshot_without_delivered_matches_unlogged_live_bus():
    """include_delivered=False is the byte-shape of a live bus running
    without record_delivered_log."""
    populate = _pingpong
    dump, end = _sequential_dump(populate)
    config = _config()
    config.record_delivered_log = False
    live = populate(MessageBus(config))
    live.start()
    replay = Replayer(dump)
    replay.seek(end * 0.5)
    live_json = json.dumps(live.snapshot_at(end * 0.5), sort_keys=True)
    assert replay.snapshot_json(include_delivered=False) == live_json


def test_snapshot_at_refuses_time_travel_into_the_past():
    bus = _pingpong(MessageBus(_config()))
    bus.start()
    bus.run(until=100.0)
    with pytest.raises(ConfigurationError, match="already at"):
        bus.snapshot_at(50.0)


def test_delivered_prefix_matches_engine_log():
    dump, end = _sequential_dump(_churn)
    replay = Replayer(dump)
    replay.seek(end)
    live = _churn(MessageBus(_config()))
    live.start()
    live.run_until_idle()
    snapshot = replay.snapshot()
    for server_id, server in live.servers.items():
        log = server.engine.delivered_log
        assert snapshot["servers"][str(server_id)]["delivered"] == log
