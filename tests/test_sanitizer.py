"""Tests for the runtime sanitizer (:mod:`repro.analysis.sanitizer`).

Three obligations: (1) real violations — stamp mutation after publish,
FIFO skips, monotonicity regressions, causal-order breaks, holdback
leaks — raise :class:`SanitizerViolation` with a message naming the
culprit; (2) clean runs raise nothing (zero false positives); (3) a
sanitized run is observationally identical to a bare one — same simulated
end time, same metrics — because the sanitizer only watches.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.sanitizer import (
    BusSanitizer,
    ClockSanitizer,
    OrderChecker,
    SanitizerViolation,
    _StampRegistry,
    install,
    is_installed,
    uninstall,
)
from repro.clocks.matrix import MatrixClock
from repro.clocks.updates import UpdatesClock
from repro.mom.agent import Agent, EchoAgent, FunctionAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.mom.identifiers import AgentId
from repro.mom.payloads import Notification
from repro.mom.workloads import PingPongDriver
from repro.topology.builders import bus as bus_topology
from repro.topology.builders import from_domain_map


def wrapped_pair(clock_cls, size=3):
    """Two sanitized clocks of one domain sharing a stamp registry."""
    registry = _StampRegistry()
    sender = ClockSanitizer(clock_cls(size, 0), "server 0, domain 'X'", registry)
    receiver = ClockSanitizer(clock_cls(size, 1), "server 1, domain 'X'", registry)
    return sender, receiver


class TestStampFreeze:
    def test_mutating_published_matrix_stamp_names_clock_and_cell(self):
        sender, receiver = wrapped_pair(MatrixClock)
        stamp = sender.prepare_send(1)
        stamp._buf[2] = 99  # tamper with the COW-shared buffer
        with pytest.raises(SanitizerViolation) as excinfo:
            receiver.can_deliver(stamp)
        message = str(excinfo.value)
        assert "stamp-mutation" in message
        assert "server 0, domain 'X'" in message
        assert "cell (0, 2)" in message

    def test_mutating_updates_stamp_detected(self):
        sender, receiver = wrapped_pair(UpdatesClock)
        stamp = sender.prepare_send(1)
        stamp._updates = ()  # replace the published delta
        with pytest.raises(SanitizerViolation, match="stamp-mutation"):
            receiver.can_deliver(stamp)

    def test_untouched_stamp_flows_through(self):
        sender, receiver = wrapped_pair(MatrixClock)
        stamp = sender.prepare_send(1)
        assert receiver.can_deliver(stamp)
        receiver.deliver(stamp)
        assert receiver.cell(0, 1) == 1

    def test_quiesce_reverifies_every_retained_stamp(self):
        registry = _StampRegistry()
        clock = ClockSanitizer(MatrixClock(3, 0), "server 0", registry)
        stamps = [clock.prepare_send(1) for _ in range(5)]
        stamps[2]._buf[0] = 41
        with pytest.raises(SanitizerViolation, match="stamp-mutation"):
            registry.verify_all()


class TestClockChecks:
    def test_fifo_skip_raises_before_clock_error(self):
        sender, receiver = wrapped_pair(MatrixClock)
        sender.prepare_send(1)  # first message never delivered
        second = sender.prepare_send(1)
        with pytest.raises(SanitizerViolation, match="fifo"):
            receiver.deliver(second)

    def test_monotonicity_regression_detected(self):
        registry = _StampRegistry()
        clock = ClockSanitizer(MatrixClock(3, 0), "server 0", registry)
        clock.prepare_send(1)
        clock.inner._buf[clock.inner._size * 0 + 1] = 0  # regress a cell
        with pytest.raises(SanitizerViolation, match="monotonicity"):
            clock.prepare_send(2)

    def test_restore_rebaselines_instead_of_flagging(self):
        registry = _StampRegistry()
        clock = ClockSanitizer(MatrixClock(3, 0), "server 0", registry)
        image = clock.sync_image()
        clock.prepare_send(1)
        clock.restore(image)  # legal rollback to the persisted image
        clock.prepare_send(1)  # must not raise

    def test_delegation_preserves_protocol_surface(self):
        sender, _ = wrapped_pair(UpdatesClock)
        assert sender.size == 3
        assert sender.owner == 0
        stamp = sender.prepare_send(1)
        assert sender.dirty_cells() == 1
        sender.clear_dirty()
        assert sender.dirty_cells() == 0
        assert stamp.wire_cells >= 1


def note(nid, sender, target, now=0.0):
    return Notification(
        nid=nid, sender=sender, target=target, payload=None, sent_at=now
    )


class TestOrderChecker:
    def test_out_of_order_delivery_raises(self):
        a, b, c = AgentId(0, 0), AgentId(1, 0), AgentId(2, 0)
        checker = OrderChecker()
        m1 = note(1, a, c)
        m3 = note(2, a, b)
        checker.on_send(m1)
        checker.on_send(m3)
        checker.on_receive(m3)
        m2 = note(3, b, c)  # sent by b after receiving m3: m1 ≺ m2
        checker.on_send(m2)
        with pytest.raises(SanitizerViolation, match="causal-order"):
            checker.on_receive(m2)  # delivered at c while m1 still pending

    def test_causal_order_respected_is_silent(self):
        a, b, c = AgentId(0, 0), AgentId(1, 0), AgentId(2, 0)
        checker = OrderChecker()
        m1 = note(1, a, c)
        m3 = note(2, a, b)
        checker.on_send(m1)
        checker.on_send(m3)
        checker.on_receive(m3)
        m2 = note(3, b, c)
        checker.on_send(m2)
        checker.on_receive(m1)  # FIFO-consistent order
        checker.on_receive(m2)

    def test_concurrent_messages_any_order(self):
        a, b, c = AgentId(0, 0), AgentId(1, 0), AgentId(2, 0)
        checker = OrderChecker()
        m1 = note(1, a, c)
        m2 = note(2, b, c)  # concurrent with m1
        checker.on_send(m1)
        checker.on_send(m2)
        checker.on_receive(m2)
        checker.on_receive(m1)

    def test_self_sends_ignored(self):
        a = AgentId(0, 0)
        checker = OrderChecker()
        checker.on_send(note(1, a, a))
        checker.on_receive(note(1, a, a))


def build_pingpong(**config_kwargs):
    topology = bus_topology(9, 3)
    mom = MessageBus(BusConfig(topology=topology, **config_kwargs))
    echo_id = mom.deploy(EchoAgent(), 8)
    driver = PingPongDriver(5)
    driver.bind(echo_id)
    mom.deploy(driver, 0)
    return mom, driver


class _RelayAgent(Agent):
    def __init__(self):
        super().__init__()
        self.next_hop = None

    def react(self, ctx, sender, payload):
        if self.next_hop is not None:
            ctx.send(self.next_hop, payload)


def build_cyclic_race(seed=4):
    """The theorem test's Figure-4(a) race on a cyclic ring topology."""
    topology = from_domain_map({"d0": [0, 1], "d1": [1, 2], "d2": [2, 0]})
    mom = MessageBus(BusConfig(topology=topology, validate=False, seed=seed))
    sink_order = []
    sink = FunctionAgent(lambda ctx, s, p: sink_order.append(p))
    sink_id = mom.deploy(sink, 2)
    relay = _RelayAgent()
    relay_id = mom.deploy(relay, 1)
    relay.next_hop = sink_id
    starter = FunctionAgent(lambda ctx, s, p: None)

    def boot(ctx):
        ctx.send(sink_id, "n-direct")
        ctx.send(relay_id, "m-chain")

    starter.on_boot = boot
    mom.deploy(starter, 0)
    mom.network.partition(0, 2)
    mom.sim.schedule_at(500.0, mom.network.heal, 0, 2)
    return mom, sink_order


class TestBusSanitizer:
    def test_clean_run_is_silent_and_reaches_quiescence(self):
        mom, driver = build_pingpong()
        BusSanitizer(mom).attach()
        mom.start()
        mom.run_until_idle()
        assert driver.mean_rtt > 0

    def test_sanitized_run_observationally_identical(self):
        bare, bare_driver = build_pingpong(seed=7)
        bare.start()
        bare.run_until_idle()

        sanitized, san_driver = build_pingpong(seed=7)
        BusSanitizer(sanitized).attach()
        sanitized.start()
        sanitized.run_until_idle()

        assert sanitized.sim.now == bare.sim.now
        assert san_driver.mean_rtt == bare_driver.mean_rtt
        assert sanitized.metrics.snapshot() == bare.metrics.snapshot()

    def test_holdback_leak_flagged_at_quiesce(self):
        mom, _ = build_pingpong()
        sanitizer = BusSanitizer(mom).attach()
        mom.start()
        mom.run_until_idle()
        store = next(iter(mom.servers[4].channel._holdback.values()))
        store.count = 1  # fake a stuck held-back envelope
        with pytest.raises(SanitizerViolation, match="holdback-leak"):
            sanitizer.check_quiesce()

    def test_crashed_server_suspends_quiesce_hygiene(self):
        mom, _ = build_pingpong()
        sanitizer = BusSanitizer(mom).attach()
        mom.start()
        mom.run_until_idle()
        store = next(iter(mom.servers[4].channel._holdback.values()))
        store.count = 1
        mom.servers[4].crash()
        sanitizer.check_quiesce()  # held-back is legitimate while down
        mom.servers[4].recover()
        store.count = 0
        mom.run_until_idle()

    def test_cyclic_mom_violation_caught_online(self):
        mom, _ = build_cyclic_race()
        BusSanitizer(mom, force_order_check=True).attach()
        mom.start()
        with pytest.raises(SanitizerViolation, match="causal-order"):
            mom.run_until_idle()

    def test_cyclic_mom_without_forcing_is_tolerated(self):
        # validate=False topologies promise nothing; the theorem tests
        # depend on observing the violation, not on a sanitizer crash
        mom, sink_order = build_cyclic_race()
        BusSanitizer(mom).attach()
        mom.start()
        mom.run_until_idle()
        assert sink_order == ["m-chain", "n-direct"]
        assert not mom.check_app_causality().respects_causality


@pytest.mark.skipif(
    os.environ.get("REPRO_SANITIZE") == "1",
    reason="install()/uninstall() would toggle the suite-wide sanitizer",
)
class TestInstall:
    def test_install_instruments_new_buses(self):
        assert not is_installed()
        install()
        try:
            assert is_installed()
            mom, driver = build_pingpong()
            assert isinstance(mom._sanitizer, BusSanitizer)
            mom.start()
            mom.run_until_idle()
            assert driver.mean_rtt > 0
        finally:
            uninstall()
        assert not is_installed()
        mom, _ = build_pingpong()
        assert not hasattr(mom, "_sanitizer")

    def test_install_is_idempotent(self):
        install()
        install()
        try:
            mom, _ = build_pingpong()
            assert isinstance(mom._sanitizer, BusSanitizer)
        finally:
            uninstall()
            uninstall()

    def test_fifo_buses_not_clock_wrapped(self):
        install()
        try:
            topology = bus_topology(6, 3)
            mom = MessageBus(
                BusConfig(topology=topology, clock_algorithm="fifo")
            )
            assert mom._sanitizer.clocks == []
        finally:
            uninstall()
