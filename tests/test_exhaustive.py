"""Exhaustive model-checking tests of the clock protocol kernel.

Where the property tests sample, these enumerate: every admissible
delivery interleaving of small scenarios, for both clock algorithms,
including a deliberately broken clock as a negative control proving the
checker can actually see violations.
"""

import pytest

from repro.causality.exhaustive import ExplorationResult, Send, explore
from repro.clocks.matrix import MatrixClock
from repro.clocks.updates import UpdatesClock
from repro.errors import ConfigurationError


class BrokenMatrixClock(MatrixClock):
    """A clock whose delivery test forgets the transitive condition
    (W[k][me] <= M[k][me]) — the classic implementation mistake. Delivery
    still counts the per-sender FIFO cell, so executions complete (no
    deadlock) and the causality break is observable."""

    def can_deliver(self, stamp):
        me = self.owner
        sender = stamp.sender
        return stamp.entry(sender, me) == self.cell(sender, me) + 1

    def deliver(self, stamp):
        me = self.owner
        sender = stamp.sender
        # _own_buf: the copy-on-write accessor for the flat cell buffer.
        self._own_buf()[sender * self.size + me] = stamp.entry(sender, me)


RELAY_SCENARIO = dict(
    size=3,
    initial_sends=[Send(0, 2, "n"), Send(0, 1, "m1")],
    react=lambda receiver, tag: (
        [Send(1, 2, "m2")] if (receiver, tag) == (1, "m1") else []
    ),
)


class TestExhaustiveMatrix:
    def test_concurrent_senders_all_interleavings_causal(self):
        result = explore(
            size=3,
            initial_sends=[Send(0, 2, "a"), Send(1, 2, "b")],
        )
        assert result.executions == 2  # a-then-b, b-then-a
        assert result.all_causal

    def test_fifo_pair_has_single_execution(self):
        result = explore(
            size=2,
            initial_sends=[Send(0, 1, "first"), Send(0, 1, "second")],
        )
        assert result.executions == 1
        assert result.all_causal

    def test_triangle_relay_never_violates(self):
        result = explore(**RELAY_SCENARIO)
        assert result.executions >= 1
        assert result.all_causal, "matrix clock must block the relay race"

    def test_four_server_diamond(self):
        """0 fans out to 1 and 2; each relays to 3 — all interleavings of
        two independent relay chains plus a direct message."""

        def react(receiver, tag):
            if tag == "fan" and receiver in (1, 2):
                return [Send(receiver, 3, f"relay{receiver}")]
            return []

        result = explore(
            size=4,
            initial_sends=[
                Send(0, 3, "direct"),
                Send(0, 1, "fan"),
                Send(0, 2, "fan"),
            ],
            react=react,
        )
        assert result.executions > 10
        assert result.all_causal

    def test_longer_fifo_burst(self):
        result = explore(
            size=3,
            initial_sends=[Send(0, 2, str(i)) for i in range(4)]
            + [Send(1, 2, "x")],
        )
        # the burst is totally ordered; only x floats: 5 positions
        assert result.executions == 5
        assert result.all_causal


class TestExhaustiveUpdates:
    def test_triangle_relay_never_violates(self):
        result = explore(clock_cls=UpdatesClock, **RELAY_SCENARIO)
        assert result.all_causal

    def test_same_execution_count_as_matrix(self):
        """The two algorithms admit exactly the same executions — they are
        one protocol with two wire formats."""
        matrix = explore(**RELAY_SCENARIO)
        updates = explore(clock_cls=UpdatesClock, **RELAY_SCENARIO)
        assert matrix.executions == updates.executions

    def test_diamond_equivalence(self):
        def react(receiver, tag):
            if tag == "fan" and receiver in (1, 2):
                return [Send(receiver, 3, f"relay{receiver}")]
            return []

        scenario = dict(
            size=4,
            initial_sends=[
                Send(0, 3, "direct"),
                Send(0, 1, "fan"),
                Send(0, 2, "fan"),
            ],
            react=react,
        )
        matrix = explore(**scenario)
        updates = explore(clock_cls=UpdatesClock, **scenario)
        assert matrix.executions == updates.executions
        assert updates.all_causal


class TestNegativeControl:
    def test_broken_clock_is_caught(self):
        """Dropping the transitive condition must produce a violating
        execution in the relay scenario — proving the checker has teeth."""
        result = explore(clock_cls=BrokenMatrixClock, **RELAY_SCENARIO)
        assert result.violations > 0
        assert result.witness is not None

    def test_witness_is_a_real_violation(self):
        from repro.causality import check_trace

        result = explore(clock_cls=BrokenMatrixClock, **RELAY_SCENARIO)
        report = check_trace(result.witness)
        assert not report.respects_causality


class TestGuards:
    def test_explosion_guard(self):
        sends = [Send(src, 4, str(i)) for i, src in enumerate([0, 1, 2, 3] * 4)]
        with pytest.raises(ConfigurationError):
            explore(size=5, initial_sends=sends, max_executions=50)
