"""Tests for the space-time diagram and timeline renderers."""

import pytest

from repro.causality import (
    Membership,
    Message,
    Trace,
    build_violation_trace,
    find_cycle_path,
    render_space_time,
    render_timeline,
)
from repro.causality.trace import EventKind
from repro.errors import TraceError


def simple_trace():
    m1 = Message("m1", "p", "q")
    m2 = Message("m2", "q", "p")
    trace = Trace()
    trace.record_send(m1)
    trace.record_receive(m1)
    trace.record_send(m2)
    trace.record_receive(m2)
    return trace, m1, m2


class TestSpaceTime:
    def test_one_lane_per_process(self):
        trace, *_ = simple_trace()
        diagram = render_space_time(trace)
        lines = diagram.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("p:")
        assert lines[1].startswith("q:")

    def test_markers_present(self):
        trace, *_ = simple_trace()
        diagram = render_space_time(trace)
        assert "[m1>q]" in diagram
        assert "[>m1]" in diagram
        assert "[m2>p]" in diagram

    def test_send_column_precedes_receive_column(self):
        trace, *_ = simple_trace()
        diagram = render_space_time(trace)
        p_lane, q_lane = diagram.splitlines()
        assert p_lane.index("[m1>q]") < q_lane.index("[>m1]")
        assert q_lane.index("[m2>p]") < p_lane.index("[>m2]")

    def test_lanes_are_column_aligned(self):
        trace, *_ = simple_trace()
        lines = render_space_time(trace).splitlines()
        assert len(set(len(line) for line in lines)) == 1

    def test_custom_labels(self):
        trace, *_ = simple_trace()
        diagram = render_space_time(trace, label=lambda e: "*")
        assert "*" in diagram
        assert "[m1>q]" not in diagram

    def test_violation_trace_renders_with_anomaly_visible(self):
        membership = Membership(
            {"d0": {"r0", "r2"}, "d1": {"r0", "r1"}, "d2": {"r1", "r2"}}
        )
        path = find_cycle_path(membership)
        trace, direct, chain = build_violation_trace(path, membership)
        diagram = render_space_time(trace)
        target_lane = next(
            line for line in diagram.splitlines()
            if line.startswith(f"{path[-1]}:")
        )
        # the chain's last hop is received before the direct message n
        assert target_lane.index("violation/m") < target_lane.index(
            "[>violation/n]"
        )

    def test_incorrect_trace_rejected(self):
        l = Message("l", "p", "q")
        m = Message("m", "q", "p")
        trace = Trace.from_histories(
            {
                "p": [(EventKind.RECEIVE, m), (EventKind.SEND, l)],
                "q": [(EventKind.RECEIVE, l), (EventKind.SEND, m)],
            }
        )
        with pytest.raises(TraceError):
            render_space_time(trace)


class TestTimeline:
    def test_numbered_lines(self):
        trace, *_ = simple_trace()
        timeline = render_timeline(trace)
        lines = timeline.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("1.")

    def test_send_before_receive(self):
        trace, *_ = simple_trace()
        timeline = render_timeline(trace)
        assert timeline.index("sends 'm1'") < timeline.index("receives 'm1'")

    def test_empty_trace(self):
        assert render_timeline(Trace()) == ""
        assert render_space_time(Trace()) == ""
