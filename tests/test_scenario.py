"""Tests for the declarative scenario runner and its CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.mom.__main__ import main as mom_main
from repro.mom.scenario import run_scenario


def base_scenario(**overrides):
    scenario = {
        "topology": {"kind": "bus", "servers": 9, "domain_size": 3},
        "seed": 3,
        "agents": [
            {"name": "echo", "server": 7, "kind": "echo"},
            {
                "name": "driver",
                "server": 0,
                "kind": "pingpong",
                "target": "echo",
                "rounds": 5,
            },
        ],
    }
    scenario.update(overrides)
    return scenario


class TestRunScenario:
    def test_pingpong_scenario_completes(self):
        result = run_scenario(base_scenario())
        assert result.causal_ok
        driver = result.agents["driver"]
        assert driver.completed == 5
        assert result.metrics["bus.notifications"] == 10

    def test_explicit_domain_map(self):
        scenario = base_scenario(
            topology={
                "domains": {"A": [0, 1, 2], "B": [2, 3], "C": [3, 4, 5, 6, 7]}
            }
        )
        result = run_scenario(scenario)
        assert result.causal_ok

    def test_scripted_sends(self):
        scenario = {
            "topology": {"kind": "flat", "servers": 3},
            "agents": [
                {"name": "sink", "server": 2, "kind": "collector"},
                {"name": "src", "server": 0, "kind": "collector"},
            ],
            "sends": [
                {"at": 5.0, "from": "src", "to": "sink", "payload": "a"},
                {"at": 10.0, "from": "src", "to": "sink", "payload": "b"},
            ],
        }
        result = run_scenario(scenario)
        assert result.agents["sink"].log == ["a", "b"]

    def test_failures_applied(self):
        scenario = base_scenario(
            failures=[
                {"kind": "crash", "at": 50.0, "server": 7, "down_for": 150.0},
                {
                    "kind": "partition",
                    "at": 300.0,
                    "between": [0, 2],
                    "duration": 50.0,
                },
            ]
        )
        result = run_scenario(scenario)
        assert result.causal_ok
        assert result.agents["driver"].completed == 5
        assert result.bus.metrics.counter("server.crashes").value == 1

    def test_broadcast_agent(self):
        scenario = {
            "topology": {"kind": "flat", "servers": 4},
            "agents": [
                {"name": "e0", "server": 0, "kind": "echo"},
                {"name": "e1", "server": 1, "kind": "echo"},
                {"name": "e2", "server": 2, "kind": "echo"},
                {
                    "name": "blaster",
                    "server": 3,
                    "kind": "broadcast",
                    "rounds": 2,
                    "targets": ["e0", "e1", "e2"],
                },
            ],
        }
        result = run_scenario(scenario)
        assert result.agents["blaster"].completed == 2

    def test_uniform_latency_spec(self):
        scenario = base_scenario(
            latency={"kind": "uniform", "low": 0.1, "high": 20.0}
        )
        assert run_scenario(scenario).causal_ok

    def test_loads_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(base_scenario()))
        assert run_scenario(str(path)).causal_ok

    def test_duplicate_agent_names_rejected(self):
        scenario = base_scenario()
        scenario["agents"].append(
            {"name": "echo", "server": 1, "kind": "echo"}
        )
        with pytest.raises(ConfigurationError, match="unique name"):
            run_scenario(scenario)

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(base_scenario(topology={"kind": "torus", "servers": 9}))
        scenario = base_scenario()
        scenario["agents"][0]["kind"] = "oracle"
        with pytest.raises(ConfigurationError):
            run_scenario(scenario)

    def test_pingpong_without_target_rejected(self):
        scenario = base_scenario()
        del scenario["agents"][1]["target"]
        with pytest.raises(ConfigurationError, match="target"):
            run_scenario(scenario)

    def test_run_false_returns_wired_bus(self):
        result = run_scenario(base_scenario(), run=False)
        assert result.bus.sim.now == 0.0
        result.bus.start()
        result.bus.run_until_idle()
        assert result.bus.check_app_causality().respects_causality


class TestShippedScenario:
    def test_router_outage_scenario_runs_clean(self):
        import pathlib

        path = (
            pathlib.Path(__file__).parent.parent
            / "examples"
            / "scenario_router_outage.json"
        )
        result = run_scenario(str(path))
        assert result.causal_ok
        assert result.agents["driver"].completed == 25
        assert result.agents["observer"].log == ["checkpoint-1", "checkpoint-2"]
        assert result.bus.metrics.counter("server.crashes").value == 1


class TestScenarioCli:
    def test_cli_runs_and_reports(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(base_scenario()))
        assert mom_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "causal delivery OK" in out

    def test_cli_stats_and_trace(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(base_scenario()))
        trace_path = tmp_path / "trace.jsonl"
        assert mom_main([str(path), "--stats", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "server" in out and "disk cells" in out
        assert trace_path.read_text().count("\n") >= 10

    def test_cli_exit_code_on_violation(self, tmp_path, capsys):
        """A cyclic topology with validate=False can violate; the CLI must
        signal it through the exit code."""
        scenario = {
            "topology": {"domains": {"d0": [0, 1], "d1": [1, 2], "d2": [2, 0]}},
            "validate": False,
            "agents": [
                {"name": "a", "server": 0, "kind": "collector"},
                {"name": "b", "server": 2, "kind": "collector"},
            ],
            "sends": [
                {"at": 0.0, "from": "a", "to": "b", "payload": "x"},
            ],
        }
        path = tmp_path / "cyclic.json"
        path.write_text(json.dumps(scenario))
        # this particular schedule doesn't violate (single message), so
        # exit code is 0 — but the scenario loads and runs unvalidated
        assert mom_main([str(path)]) == 0

    def test_cli_bad_file_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"topology": {"kind": "torus", "servers": 3}}))
        assert mom_main([str(path)]) == 2
