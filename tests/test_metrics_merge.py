"""Shard-state merge edge cases: ``Registry.merge_state``,
``LogHistogram.merge_state`` and the shardmon histogram fold.

The parallel kernel's merge step (``repro.mom.parallel``) reassembles
one read surface from per-shard instrument dumps; docs/parallel.md
promises the fold is associative and commutative, so *any* merge order
reproduces the sequential instrument bit for bit. These tests pin the
edges of that promise: empty shards, single-bucket geometries, and
3+-shard permutations of the integer-quanta running sums.
"""

import itertools
import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics.histogram import LogHistogram
from repro.metrics.instruments import Counter, EwmaRate, Gauge
from repro.metrics.registry import Registry
from repro.obs.shardmon import merge_histogram_states


def _hist(values=(), **kwargs):
    hist = LogHistogram("lat", **kwargs)
    for value in values:
        hist.record(value)
    return hist


class TestHistogramMerge:
    def test_empty_shard_is_identity(self):
        target = _hist([0.5, 3.0, 700.0])
        before = target.dump_state()
        target.merge_state(_hist().dump_state())
        assert target.dump_state() == before

    def test_empty_into_empty_stays_empty(self):
        target = _hist()
        target.merge_state(_hist().dump_state())
        assert target.count == 0
        assert math.isnan(target.mean)
        assert math.isnan(target.minimum)
        assert math.isnan(target.percentile(99))
        assert list(target.buckets()) == []

    def test_single_bucket_geometry(self):
        # low=1, high=10, per_decade=1: one real bucket plus the
        # under/overflow pair — the smallest legal geometry
        kwargs = {"low": 1.0, "high": 10.0, "per_decade": 1}
        target = _hist([2.0, 0.1], **kwargs)
        target.merge_state(_hist([5.0, 42.0], **kwargs).dump_state())
        assert target.count == 4
        assert target.minimum == 0.1
        assert target.maximum == 42.0
        buckets = list(target.buckets())
        assert [count for (_, _, count) in buckets] == [1, 2, 1]
        lo, hi = target.percentile_bounds(50)
        assert lo <= 2.0 <= 5.0 <= hi

    def test_three_shard_sum_associative_in_any_order(self):
        # values chosen so the float sum is order-sensitive in IEEE
        # arithmetic; the integer 2**-20 quanta must not be
        shard_values = [
            [0.1, 0.2, 0.30000000000000004],
            [1e6, 1e-3, 7.7],
            [3.14159, 2.71828, 123.456],
        ]
        sequential = _hist(
            [v for values in shard_values for v in values]
        )
        reference = None
        for order in itertools.permutations(range(3)):
            target = _hist()
            for index in order:
                target.merge_state(_hist(shard_values[index]).dump_state())
            state = target.dump_state()
            if reference is None:
                reference = state
            assert state == reference, f"merge order {order} diverged"
            assert state == sequential.dump_state()
            assert target.total == sequential.total  # bitwise, not approx

    def test_incompatible_geometry_rejected(self):
        target = _hist()
        foreign = _hist(per_decade=8)
        with pytest.raises(ConfigurationError):
            target.merge_state(foreign.dump_state())


class TestInstrumentMerge:
    def test_counter_adds(self):
        counter = Counter()
        counter.inc(3)
        counter.merge_state(4)
        assert counter.value == 7

    def test_counter_rejects_negative_state(self):
        with pytest.raises(ConfigurationError):
            Counter().merge_state(-1)

    def test_gauge_adopts_value_and_folds_high_water(self):
        gauge = Gauge()
        gauge.set(9.0)
        gauge.set(2.0)
        shard = Gauge()
        shard.set(5.0)
        shard.set(4.0)
        gauge.merge_state(shard.dump_state())
        assert gauge.value == 4.0
        assert gauge.max_value == 9.0

    def test_rate_zero_state_is_bitwise_noop(self):
        rate = EwmaRate(tau_ms=100.0)
        rate.mark(50.0)
        rate.mark(60.0)
        before = rate.dump_state()
        rate.merge_state(EwmaRate(tau_ms=100.0).dump_state())
        # a never-marked shard decays to the marked shard's last_ms and
        # contributes rate += 0.0 — every bit unchanged
        assert rate.dump_state() == before

    def test_rate_adopted_into_fresh_instrument(self):
        marked = EwmaRate(tau_ms=100.0)
        marked.mark(50.0)
        fresh = EwmaRate(tau_ms=100.0)
        fresh.merge_state(marked.dump_state())
        assert fresh.per_second(75.0) == marked.per_second(75.0)

    def test_rate_window_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            EwmaRate(tau_ms=100.0).merge_state(
                EwmaRate(tau_ms=200.0).dump_state()
            )


def _shard_registry(server, deliveries, latencies):
    registry = Registry()
    registry.counter("deliveries_total").inc(deliveries)
    registry.gauge(
        "queue_depth", {"server": str(server)}
    ).set(float(server))
    hist = registry.histogram("sojourn_ms", {"server": str(server)})
    for value in latencies:
        hist.record(value)
    return registry


class TestRegistryMerge:
    def test_empty_rows_are_a_noop(self):
        registry = Registry()
        registry.merge_state([])
        assert len(registry) == 0

    def test_three_shards_merge_order_free(self):
        shards = [
            _shard_registry(0, 5, [1.0, 2.0]),
            _shard_registry(1, 7, [0.5]),
            _shard_registry(2, 11, [300.0, 0.001, 9.9]),
        ]
        dumps = [shard.dump_state() for shard in shards]
        reference = None
        for order in itertools.permutations(range(3)):
            merged = Registry()
            for index in order:
                merged.merge_state(dumps[index])
            snap = merged.snapshot(now=100.0)
            if reference is None:
                reference = snap
            assert snap == reference, f"merge order {order} diverged"
        shared = reference["instruments"][0]
        assert shared["name"] == "deliveries_total"
        assert shared["value"] == 23
        per_server = [
            row
            for row in reference["instruments"]
            if row["name"] == "sojourn_ms"
        ]
        assert len(per_server) == 3  # label-disjoint: one per shard

    def test_kind_collision_rejected(self):
        shard = Registry()
        shard.counter("mixed").inc(1)
        target = Registry()
        target.gauge("mixed")
        with pytest.raises(ConfigurationError):
            target.merge_state(shard.dump_state())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Registry().merge_state(
                [{"kind": "summary", "name": "x", "labels": [],
                  "help": "", "state": None}]
            )


class TestShardmonHistogramFold:
    def test_fold_is_order_free_and_matches_sequential(self):
        shard_values = [
            {"a": [1.0, 2.0], "b": [5.0]},
            {"a": [0.25]},
            {"b": [700.0, 0.001], "a": [9.0]},
        ]
        states = [
            {
                name: _hist(values).dump_state()
                for name, values in shard.items()
            }
            for shard in shard_values
        ]
        sequential = {
            name: _hist(
                [v for shard in shard_values for v in shard.get(name, [])]
            )
            for name in ("a", "b")
        }
        for order in itertools.permutations(range(3)):
            merged = merge_histogram_states([states[i] for i in order])
            assert sorted(merged) == ["a", "b"]
            for name, hist in merged.items():
                assert hist.dump_state() == sequential[name].dump_state()

    def test_no_shards_no_histograms(self):
        assert merge_histogram_states([]) == {}
