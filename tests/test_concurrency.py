"""Tests for the fork/pipe happens-before model behind R013–R017.

Two layers: unit tests of :mod:`repro.analysis.concurrency` — fork
topology, pipe flows and picklability on both the real ``src/`` tree
and small synthetic projects — and seeded-bug checks that re-introduce
the two historical concurrency bugs into copies of the real sources
and assert the rules catch them (with unmodified copies staying clean,
so the detections are the surgery's doing and not background noise).
"""

from __future__ import annotations

import ast
import shutil
from pathlib import Path

import pytest

from repro.analysis.callgraph import ModuleInfo, Project
from repro.analysis.concurrency import (
    fork_model,
    is_pipe_handle,
    local_bindings,
    module_level_names,
)
from repro.analysis.lint import iter_python_files, lint_paths, module_name

REPO_SRC = Path(__file__).parent.parent / "src"


def build_project(*named_sources):
    modules = [
        ModuleInfo(
            module=module,
            path=f"{module.replace('.', '/')}.py",
            tree=ast.parse(source),
            source=source,
        )
        for module, source in named_sources
    ]
    return Project(modules)


@pytest.fixture(scope="module")
def src_model():
    """The fork model of the real src/ tree, shared per module."""
    modules = []
    for path in iter_python_files([REPO_SRC]):
        text = path.read_text(encoding="utf-8")
        modules.append(
            ModuleInfo(
                module=module_name(path) or str(path),
                path=str(path),
                tree=ast.parse(text),
                source=text,
            )
        )
    return fork_model(Project(modules))


class TestForkTopologyOnSrc:
    def test_worker_main_is_the_only_entry(self, src_model):
        assert src_model.worker_entries == ["repro.mom.parallel._worker_main"]

    def test_sync_server_runs_in_the_worker(self, src_model):
        assert src_model.is_worker("repro.simulation.sync.serve")

    def test_parent_side_sync_does_not(self, src_model):
        assert not src_model.is_worker("repro.mom.parallel.ShardedBus._sync")

    def test_worker_path_explains_the_closure(self, src_model):
        path = src_model.worker_path("repro.simulation.sync.serve")
        assert path[0] == "repro.mom.parallel._worker_main"
        assert path[-1] == "repro.simulation.sync.serve"

    def test_stamps_are_shipped_classes(self, src_model):
        shipped = {cls.qualname for cls in src_model.shipped_classes()}
        assert "repro.clocks.matrix.MatrixStamp" in shipped
        assert "repro.clocks.updates.UpdateStamp" in shipped

    def test_src_has_no_worker_module_writes(self, src_model):
        assert src_model.worker_module_writes() == []


class TestForkTopologySynthetic:
    SOURCE = """\
from multiprocessing import Pipe, Process

_RESULTS: dict = {}


def _worker(conn, shard_id):
    _RESULTS[shard_id] = shard_id
    conn.send(("done", shard_id))


def _helper(conn):
    conn.send(("ping",))


def launch():
    parent_conn, child_conn = Pipe()
    proc = Process(target=_worker, args=(child_conn, 0))
    proc.start()
    return parent_conn


def report():
    return dict(_RESULTS)
"""

    def test_entries_writes_and_readers(self):
        project = build_project(("repro.mom.synth", self.SOURCE))
        model = fork_model(project)
        assert model.worker_entries == ["repro.mom.synth._worker"]
        (write,) = model.worker_module_writes()
        assert write.name == "_RESULTS" and write.how == "item write"
        readers = model.parent_readers("repro.mom.synth", "_RESULTS")
        assert [fn.qualname for fn in readers] == ["repro.mom.synth.report"]

    def test_pipe_sends_cover_both_sides(self):
        project = build_project(("repro.mom.synth", self.SOURCE))
        model = fork_model(project)
        handles = sorted(send.handle for send in model.pipe_sends())
        assert handles == ["conn", "conn"]

    def test_fork_model_is_memoized_per_project(self):
        project = build_project(("repro.mom.synth", self.SOURCE))
        assert fork_model(project) is fork_model(project)


class TestPicklability:
    SOURCE = """\
import threading
from multiprocessing import Process


class Payload:
    def __init__(self):
        self.rows = []
        self.merge = lambda a, b: a + b
        self.guard = threading.Lock()
        self.pump = (x for x in range(3))
        self.callback = self.close
        self.nested = [1, threading.Event()]

    def close(self):
        pass


def _worker(conn):
    conn.send(Payload())


def launch(conn):
    Process(target=_worker, args=(conn,)).start()
"""

    def test_every_reason_is_found(self):
        project = build_project(("repro.mom.payloads", self.SOURCE))
        model = fork_model(project)
        (cls,) = model.shipped_classes()
        assert cls.name == "Payload"
        reasons = {
            field: why for _, field, why in model.unpicklable_fields(cls)
        }
        assert reasons == {
            "merge": "a lambda",
            "guard": "a thread lock",
            "pump": "a generator expression",
            "callback": "the bound method self.close",
            "nested": "a thread event",
        }

    def test_plain_data_has_no_reason(self):
        project = build_project(("repro.mom.payloads", self.SOURCE))
        model = fork_model(project)
        assert model.unpicklable_reason(ast.parse("[1, 2]").body[0].value) is None
        assert model.unpicklable_reason(ast.parse("dict(a=1)").body[0].value) is None


class TestHelpers:
    def test_module_level_names_skip_defs_and_imports(self):
        tree = ast.parse(
            "import os\n"
            "X = 1\n"
            "Y: int = 2\n"
            "def f():\n    pass\n"
            "class C:\n    pass\n"
        )
        assert module_level_names(tree) == frozenset({"X", "Y"})

    def test_local_bindings_cover_binding_forms(self):
        fn = ast.parse(
            "def f(a, *args, **kw):\n"
            "    b = 1\n"
            "    for c in range(3):\n"
            "        pass\n"
            "    with open('x') as d:\n"
            "        pass\n"
        ).body[0]
        assert {"a", "args", "kw", "b", "c", "d"} <= set(local_bindings(fn))

    def test_global_escapes_local_bindings(self):
        fn = ast.parse("def f():\n    global g\n    g = 1\n").body[0]
        assert "g" not in local_bindings(fn)

    def test_pipe_handle_heuristic(self):
        assert is_pipe_handle("conn")
        assert is_pipe_handle("parent_conn")
        assert is_pipe_handle("self._conn")
        assert not is_pipe_handle("channel")
        assert not is_pipe_handle("socket")
        assert not is_pipe_handle(None)


# ----------------------------------------------------------------------
# Seeded bugs: re-introduce the two historical races into copies of the
# real sources and prove the rules catch exactly them.
# ----------------------------------------------------------------------

EPOCH_BUMP = "            self._log = []\n            self._log_epoch += 1\n"
WORKER_WRITE = "    bus.start()\n"
PARENT_ANCHOR = "        states = self._coordinator.collect()\n"


def seeded_tree(tmp_path: Path, *rel_paths: str) -> Path:
    root = tmp_path / "repro"
    for rel in rel_paths:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO_SRC / "repro" / rel, target)
    return root


class TestSeededEpochBug:
    """Reverting the PR-6 epoch bump in ``MatrixClock._trim_log`` — the
    exact bug the window-merge protocol guards against — must trip R015."""

    def test_unmodified_copy_is_clean(self, tmp_path):
        root = seeded_tree(tmp_path, "clocks/matrix.py")
        assert lint_paths([root], select=["R015"]) == []

    def test_reverted_epoch_bump_fires(self, tmp_path):
        root = seeded_tree(tmp_path, "clocks/matrix.py")
        target = root / "clocks" / "matrix.py"
        source = target.read_text()
        assert EPOCH_BUMP in source, "matrix.py no longer matches the surgery"
        target.write_text(
            source.replace(EPOCH_BUMP, "            self._log = []\n")
        )
        findings = lint_paths([root], select=["R015"])
        assert [d.rule for d in findings] == ["R015"]
        assert "_trim_log" not in findings[0].message  # message names the chain
        assert "_log_epoch" in findings[0].message


class TestSeededLostUpdateBug:
    """A worker writing module state the parent later reads is the
    canonical fork-boundary lost update; R013 must catch the surgery."""

    REL_PATHS = ("mom/parallel.py", "simulation/sync.py")

    def test_unmodified_copy_is_clean(self, tmp_path):
        root = seeded_tree(tmp_path, *self.REL_PATHS)
        assert lint_paths([root], select=["R013"]) == []

    def test_worker_side_write_fires(self, tmp_path):
        root = seeded_tree(tmp_path, *self.REL_PATHS)
        target = root / "mom" / "parallel.py"
        source = target.read_text()
        assert WORKER_WRITE in source and PARENT_ANCHOR in source
        source = source.replace(
            '_PARTITION = "partition"\n',
            '_PARTITION = "partition"\n_WORKER_LOG: list = []\n',
        )
        source = source.replace(
            WORKER_WRITE, "    bus.start()\n    _WORKER_LOG.append(shard_id)\n"
        )
        source = source.replace(
            PARENT_ANCHOR, PARENT_ANCHOR + "        len(_WORKER_LOG)\n"
        )
        target.write_text(source)
        findings = lint_paths([root], select=["R013"])
        assert [d.rule for d in findings] == ["R013"]
        assert "_WORKER_LOG" in findings[0].message
        assert "_worker_main" in findings[0].message
