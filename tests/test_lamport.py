"""Unit tests for scalar Lamport clocks."""

import pytest

from repro.clocks import LamportClock
from repro.clocks.lamport import LamportStamp
from repro.errors import ClockError


class TestLamportClock:
    def test_starts_at_zero(self):
        clock = LamportClock(owner=3)
        assert clock.time == 0
        assert clock.owner == 3

    def test_tick_increments(self):
        clock = LamportClock(0)
        assert clock.tick() == LamportStamp(1, 0)
        assert clock.tick() == LamportStamp(2, 0)

    def test_stamp_send_is_a_tick(self):
        clock = LamportClock(1)
        stamp = clock.stamp_send()
        assert stamp == LamportStamp(1, 1)
        assert clock.time == 1

    def test_observe_advances_past_received(self):
        clock = LamportClock(0)
        stamp = clock.observe(LamportStamp(10, 1))
        assert stamp == LamportStamp(11, 0)
        assert clock.time == 11

    def test_observe_older_timestamp_still_ticks(self):
        clock = LamportClock(0)
        clock.observe(LamportStamp(5, 1))
        stamp = clock.observe(LamportStamp(2, 1))
        assert stamp.time == 7

    def test_observe_rejects_negative(self):
        clock = LamportClock(0)
        with pytest.raises(ClockError):
            clock.observe(LamportStamp(-1, 1))

    def test_negative_owner_rejected(self):
        with pytest.raises(ClockError):
            LamportClock(-1)


class TestLamportStampOrdering:
    def test_time_dominates(self):
        assert LamportStamp(1, 5) < LamportStamp(2, 0)

    def test_process_breaks_ties(self):
        assert LamportStamp(3, 0) < LamportStamp(3, 1)
        assert not LamportStamp(3, 1) < LamportStamp(3, 0)

    def test_le_reflexive(self):
        assert LamportStamp(3, 1) <= LamportStamp(3, 1)

    def test_total_order_on_send_chain(self):
        """Lamport's property: a causal message chain has increasing stamps."""
        a, b, c = LamportClock(0), LamportClock(1), LamportClock(2)
        s1 = a.stamp_send()
        r1 = b.observe(s1)
        s2 = b.stamp_send()
        r2 = c.observe(s2)
        assert s1 < r1 < s2 < r2
