"""Unit tests for messages, events and traces (§4.2 structures)."""

import pytest

from repro.causality import Message, Trace
from repro.causality.trace import EventKind
from repro.errors import TraceError


def msg(mid, src, dst):
    return Message(mid, src, dst)


class TestMessage:
    def test_endpoints_must_differ(self):
        with pytest.raises(TraceError):
            Message(1, "p", "p")

    def test_between_allocates_fresh_ids(self):
        a = Message.between("p", "q")
        b = Message.between("p", "q")
        assert a.mid != b.mid

    def test_payload_not_part_of_identity(self):
        assert Message(1, "p", "q", payload="x") == Message(1, "p", "q", payload="y")


class TestRecording:
    def test_send_then_receive(self):
        trace = Trace()
        m = msg(1, "p", "q")
        trace.record_send(m)
        trace.record_receive(m)
        assert trace.was_received(m)
        assert len(trace) == 2

    def test_receive_before_send_rejected(self):
        trace = Trace()
        with pytest.raises(TraceError):
            trace.record_receive(msg(1, "p", "q"))

    def test_double_send_rejected(self):
        trace = Trace()
        m = msg(1, "p", "q")
        trace.record_send(m)
        with pytest.raises(TraceError):
            trace.record_send(m)

    def test_double_receive_rejected(self):
        trace = Trace()
        m = msg(1, "p", "q")
        trace.record_send(m)
        trace.record_receive(m)
        with pytest.raises(TraceError):
            trace.record_receive(m)

    def test_receive_with_mismatched_endpoints_rejected(self):
        trace = Trace()
        trace.record_send(msg(1, "p", "q"))
        with pytest.raises(TraceError):
            trace.record_receive(msg(1, "p", "r"))


class TestLocalOrder:
    def test_local_order_follows_recording(self):
        trace = Trace()
        m1, m2 = msg(1, "p", "q"), msg(2, "p", "q")
        trace.record_send(m1)
        trace.record_send(m2)
        assert trace.locally_before("p", m1, m2)
        assert not trace.locally_before("p", m2, m1)

    def test_send_and_receive_interleave_in_local_order(self):
        trace = Trace()
        out = msg(1, "p", "q")
        back = msg(2, "q", "p")
        trace.record_send(out)
        trace.record_receive(out)
        trace.record_send(back)
        trace.record_receive(back)
        assert trace.locally_before("p", out, back)
        assert trace.locally_before("q", out, back)

    def test_unknown_message_at_process_rejected(self):
        trace = Trace()
        m = msg(1, "p", "q")
        trace.record_send(m)
        with pytest.raises(TraceError):
            trace.local_index("r", m)

    def test_received_in_order(self):
        trace = Trace()
        m1, m2 = msg(1, "a", "q"), msg(2, "b", "q")
        trace.record_send(m1)
        trace.record_send(m2)
        trace.record_receive(m2)
        trace.record_receive(m1)
        assert trace.received_in_order("q") == [m2, m1]

    def test_sent_in_order(self):
        trace = Trace()
        m1, m2 = msg(1, "p", "a"), msg(2, "p", "b")
        trace.record_send(m1)
        trace.record_send(m2)
        assert trace.sent_in_order("p") == [m1, m2]


class TestFromHistories:
    def test_builds_equivalent_trace(self):
        m = msg(1, "p", "q")
        trace = Trace.from_histories(
            {
                "p": [(EventKind.SEND, m)],
                "q": [(EventKind.RECEIVE, m)],
            }
        )
        assert trace.was_received(m)
        assert trace.locally_before is not None

    def test_receive_without_send_rejected(self):
        m = msg(1, "p", "q")
        with pytest.raises(TraceError):
            Trace.from_histories({"q": [(EventKind.RECEIVE, m)]})

    def test_event_at_wrong_process_rejected(self):
        m = msg(1, "p", "q")
        with pytest.raises(TraceError):
            Trace.from_histories({"r": [(EventKind.SEND, m)]})

    def test_receives_may_precede_sends_across_processes(self):
        """from_histories imposes no inter-process recording order."""
        m = msg(1, "p", "q")
        trace = Trace.from_histories(
            {
                "q": [(EventKind.RECEIVE, m)],
                "p": [(EventKind.SEND, m)],
            }
        )
        assert trace.was_received(m)


class TestRestrict:
    def test_restriction_drops_other_messages(self):
        trace = Trace()
        keep = msg(1, "p", "q")
        drop = msg(2, "p", "r")
        trace.record_send(keep)
        trace.record_send(drop)
        trace.record_receive(keep)
        trace.record_receive(drop)
        restricted = trace.restrict([keep])
        assert [m.mid for m in restricted.messages] == [1]
        assert restricted.was_received(keep)

    def test_restriction_preserves_relative_local_order(self):
        trace = Trace()
        m1 = msg(1, "p", "q")
        mid = msg(2, "p", "r")
        m3 = msg(3, "p", "q")
        for m in (m1, mid, m3):
            trace.record_send(m)
        restricted = trace.restrict([m1, m3])
        assert restricted.locally_before("p", m1, m3)

    def test_restrict_unknown_message_rejected(self):
        trace = Trace()
        with pytest.raises(TraceError):
            trace.restrict([msg(9, "p", "q")])
