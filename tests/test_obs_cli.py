"""The ``python -m repro.obs`` CLI, end to end through ``main(argv)``."""

import json
import os

import pytest

from repro.obs.__main__ import main


@pytest.fixture(scope="module")
def dump_dir(tmp_path_factory):
    """One recorded demo run shared by all CLI tests."""
    root = tmp_path_factory.mktemp("obs-cli")
    code = main(
        [
            "record",
            "--servers", "10",
            "--domain-size", "4",
            "--rounds", "5",
            "--seed", "0",
            "-o", str(root),
        ]
    )
    assert code == 0
    (artifact,) = os.listdir(root)
    return str(root / artifact)


def test_record_produces_full_artifact(dump_dir):
    assert sorted(os.listdir(dump_dir)) == [
        "events.jsonl", "state.json", "trace.json",
    ]


def test_summary(dump_dir, capsys):
    assert main(["summary", dump_dir]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    for kind in ("post", "stamp", "commit", "reaction_commit"):
        assert kind in out
    assert "e2e_delivery_ms" in out


def routed_nid(dump_dir):
    """A nid that crossed a router (has a route_forward event)."""
    with open(os.path.join(dump_dir, "events.jsonl")) as stream:
        for line in stream:
            row = json.loads(line)
            if row.get("record") == "event" and row["kind"] == "route_forward":
                return row["nid"]
    raise AssertionError("demo run produced no routed message")


def test_trace_shows_per_hop_path(dump_dir, capsys):
    nid = routed_nid(dump_dir)
    assert main(["trace", str(nid), dump_dir]) == 0
    out = capsys.readouterr().out
    assert f"nid {nid}" in out or f"msg {nid}" in out or str(nid) in out
    assert "hop" in out
    assert "route_forward" in out
    assert "reaction_commit" in out


def test_trace_unknown_nid_fails(dump_dir, capsys):
    assert main(["trace", "999999", dump_dir]) != 0


def test_slowest(dump_dir, capsys):
    assert main(["slowest", dump_dir, "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "ms" in out
    assert len([l for l in out.splitlines() if l.strip()]) >= 2


def test_export_chrome(dump_dir, tmp_path, capsys):
    out_path = str(tmp_path / "trace.json")
    assert main(["export", dump_dir, "--chrome", "-o", out_path]) == 0
    with open(out_path) as stream:
        doc = json.load(stream)
    assert "traceEvents" in doc
    assert doc["otherData"]["source"] == "repro.obs"
    assert any(e["ph"] == "i" for e in doc["traceEvents"])


def test_loads_events_file_directly(dump_dir, capsys):
    assert main(["summary", os.path.join(dump_dir, "events.jsonl")]) == 0
    assert "events" in capsys.readouterr().out


def test_missing_dump_is_a_clean_error(tmp_path, capsys):
    assert main(["summary", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


@pytest.fixture(scope="module")
def jittery_dump(tmp_path_factory):
    """A lossy, jittery run that actually exercises hold-back, dumped."""
    from repro.mom.agent import EchoAgent, FunctionAgent
    from repro.mom.bus import MessageBus
    from repro.mom.config import BusConfig
    from repro.obs import attach, flight_recorder
    from repro.simulation.network import UniformLatency
    from repro.topology.builders import bus as bus_topology

    mom = MessageBus(
        BusConfig(
            topology=bus_topology(12, 4),
            seed=7,
            latency=UniformLatency(0.1, 20.0),
            loss_rate=0.1,
        )
    )
    tracer = attach(mom)
    echo_id = mom.deploy(EchoAgent(), 9)
    sender = FunctionAgent(lambda ctx, s, p: None)

    def boot(ctx):
        for i in range(10):
            ctx.send(echo_id, i)

    sender.on_boot = boot
    mom.deploy(sender, 0)
    mom.start()
    mom.run_until_idle()

    held = sorted(
        {e.nid for e in tracer.events() if e.kind == "holdback_enter"}
    )
    assert held, "seed 7 must exercise hold-back (see test_obs_tracing)"
    root = tmp_path_factory.mktemp("obs-why")
    old = os.environ.get("REPRO_OBS_DIR")
    os.environ["REPRO_OBS_DIR"] = str(root)
    try:
        path = flight_recorder.dump(tracer, "whytest")
    finally:
        if old is None:
            os.environ.pop("REPRO_OBS_DIR", None)
        else:
            os.environ["REPRO_OBS_DIR"] = old
    unheld = sorted(
        {e.nid for e in tracer.events() if e.nid > 0} - set(held)
    )
    return path, held, unheld


def test_why_names_the_blocking_dependency(jittery_dump, capsys):
    path, held, _ = jittery_dump
    assert main(["why", str(held[0]), path]) == 0
    out = capsys.readouterr().out
    assert "held back" in out
    assert "released by the commit of message" in out
    assert "causal wait total" in out


def test_why_reports_no_wait_for_unheld_message(jittery_dump, capsys):
    path, _, unheld = jittery_dump
    assert unheld, "some messages must go through without hold-back"
    assert main(["why", str(unheld[0]), path]) == 0
    out = capsys.readouterr().out
    assert "never held back" in out


def test_why_unknown_nid_fails(jittery_dump, capsys):
    path, _, _ = jittery_dump
    assert main(["why", "999999", path]) == 1


# ----------------------------------------------------------------------
# Partial dumps: one-line exit-2 diagnosis, not a traceback
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def partial_dump(dump_dir, tmp_path_factory):
    """The demo dump with every ``arrive`` event stripped — the shape of
    a recording made with partial hooks."""
    root = tmp_path_factory.mktemp("obs-partial")
    path = str(root / "events.jsonl")
    with open(os.path.join(dump_dir, "events.jsonl")) as stream:
        rows = [json.loads(line) for line in stream]
    with open(path, "w") as stream:
        for row in rows:
            if row.get("record") == "event" and row["kind"] == "arrive":
                continue
            stream.write(json.dumps(row) + "\n")
    return path


@pytest.mark.parametrize(
    "argv",
    [
        ["summary"],
        ["why", "1099511627776"],
        ["critpath", "1099511627776"],
        ["critpath", "--run"],
    ],
    ids=["summary", "why", "critpath", "critpath-run"],
)
def test_partial_dump_is_a_one_line_exit_2(partial_dump, argv, capsys):
    assert main(argv + [partial_dump]) == 2
    captured = capsys.readouterr()
    assert captured.err.count("\n") == 1, "diagnosis must be one line"
    assert (
        "error: dump is missing event kind 'arrive' — re-record with "
        "REPRO_TRACE=1 full hooks"
    ) in captured.err


def test_full_dump_still_passes_the_completeness_gate(dump_dir, capsys):
    assert main(["summary", dump_dir]) == 0


# ----------------------------------------------------------------------
# replay / diff subcommands, end to end
# ----------------------------------------------------------------------


def test_replay_renders_state_table(dump_dir, capsys):
    assert main(["replay", dump_dir]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out
    assert "delivered" in out
    assert "S0" in out


def test_replay_at_json_is_the_protocol_snapshot_shape(dump_dir, capsys):
    assert main(["replay", dump_dir, "--at", "100.0", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    entry = snapshot["servers"]["0"]
    for key in (
        "crashed", "epoch", "hop_seq", "unacked", "holdback",
        "pending", "queued", "clocks", "delivered",
    ):
        assert key in entry
    assert main(["replay", dump_dir, "--json", "--no-delivered"]) == 0
    bare = json.loads(capsys.readouterr().out)
    assert "delivered" not in bare["servers"]["0"]


def test_replay_watch_deliverable_stops_early(dump_dir, capsys):
    nid = routed_nid(dump_dir)
    assert main(["replay", dump_dir, "--watch-deliverable", str(nid)]) == 0
    out = capsys.readouterr().out
    assert "watchpoint hit" in out


def test_replay_watchpoint_never_triggering_exits_1(dump_dir, capsys):
    assert main(["replay", dump_dir, "--watch-holdback", "0:99999"]) == 1
    assert "never triggered" in capsys.readouterr().out


def test_replay_bad_watch_syntax_exits_2(dump_dir, capsys):
    assert main(["replay", dump_dir, "--watch-holdback", "three:five"]) == 2
    assert "SERVER:DEPTH" in capsys.readouterr().err


def test_replay_partial_dump_exits_2(partial_dump, capsys):
    assert main(["replay", partial_dump]) == 2
    assert "missing event kind" in capsys.readouterr().err


def test_diff_of_a_dump_with_itself_is_clean(dump_dir, capsys):
    assert main(["diff", dump_dir, dump_dir]) == 0
    assert "causally identical" in capsys.readouterr().out


def test_why_blocker_is_causally_consistent(jittery_dump, capsys):
    """The named blocker must have committed at the same server/domain
    strictly before our release — re-derive it from the raw events."""
    path, held, _ = jittery_dump
    nid = held[0]
    assert main(["why", str(nid), path]) == 0
    out = capsys.readouterr().out
    import re

    blockers = [
        int(m.group(1))
        for m in re.finditer(r"commit of message (\d+)", out)
    ]
    assert blockers
    with open(os.path.join(path, "events.jsonl")) as stream:
        rows = [json.loads(line) for line in stream]
    events = [r for r in rows if r.get("record") == "event"]
    releases = [
        e for e in events
        if e["kind"] == "holdback_release" and e["nid"] == nid
    ]
    assert releases
    for blocker in blockers:
        commits = [
            e for e in events
            if e["kind"] == "commit" and e["nid"] == blocker
        ]
        assert any(
            c["seq"] < r["seq"]
            and c["server"] == r["server"]
            and c["domain"] == r["domain"]
            for c in commits
            for r in releases
        )
