"""The ``python -m repro.obs`` CLI, end to end through ``main(argv)``."""

import json
import os

import pytest

from repro.obs.__main__ import main


@pytest.fixture(scope="module")
def dump_dir(tmp_path_factory):
    """One recorded demo run shared by all CLI tests."""
    root = tmp_path_factory.mktemp("obs-cli")
    code = main(
        [
            "record",
            "--servers", "10",
            "--domain-size", "4",
            "--rounds", "5",
            "--seed", "0",
            "-o", str(root),
        ]
    )
    assert code == 0
    (artifact,) = os.listdir(root)
    return str(root / artifact)


def test_record_produces_full_artifact(dump_dir):
    assert sorted(os.listdir(dump_dir)) == [
        "events.jsonl", "state.json", "trace.json",
    ]


def test_summary(dump_dir, capsys):
    assert main(["summary", dump_dir]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    for kind in ("post", "stamp", "commit", "reaction_commit"):
        assert kind in out
    assert "e2e_delivery_ms" in out


def routed_nid(dump_dir):
    """A nid that crossed a router (has a route_forward event)."""
    with open(os.path.join(dump_dir, "events.jsonl")) as stream:
        for line in stream:
            row = json.loads(line)
            if row.get("record") == "event" and row["kind"] == "route_forward":
                return row["nid"]
    raise AssertionError("demo run produced no routed message")


def test_trace_shows_per_hop_path(dump_dir, capsys):
    nid = routed_nid(dump_dir)
    assert main(["trace", str(nid), dump_dir]) == 0
    out = capsys.readouterr().out
    assert f"nid {nid}" in out or f"msg {nid}" in out or str(nid) in out
    assert "hop" in out
    assert "route_forward" in out
    assert "reaction_commit" in out


def test_trace_unknown_nid_fails(dump_dir, capsys):
    assert main(["trace", "999999", dump_dir]) != 0


def test_slowest(dump_dir, capsys):
    assert main(["slowest", dump_dir, "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "ms" in out
    assert len([l for l in out.splitlines() if l.strip()]) >= 2


def test_export_chrome(dump_dir, tmp_path, capsys):
    out_path = str(tmp_path / "trace.json")
    assert main(["export", dump_dir, "--chrome", "-o", out_path]) == 0
    with open(out_path) as stream:
        doc = json.load(stream)
    assert "traceEvents" in doc
    assert doc["otherData"]["source"] == "repro.obs"
    assert any(e["ph"] == "i" for e in doc["traceEvents"])


def test_loads_events_file_directly(dump_dir, capsys):
    assert main(["summary", os.path.join(dump_dir, "events.jsonl")]) == 0
    assert "events" in capsys.readouterr().out


def test_missing_dump_is_a_clean_error(tmp_path, capsys):
    assert main(["summary", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err
