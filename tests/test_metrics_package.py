"""Unit tests for the :mod:`repro.metrics` primitives.

Instruments (Counter/Gauge/EwmaRate), the labeled Registry with its
snapshot-time collectors, and the exposition layer (Prometheus text,
strict JSON, snapshot queries). The end-to-end accounting behavior is in
``test_metrics_accounting.py``; this file pins the building blocks.
"""

import io
import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    Counter,
    EwmaRate,
    Gauge,
    LogHistogram,
    Registry,
    label_values,
    read_json,
    select,
    to_prometheus,
    total,
    write_json,
)


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(41)
        assert c.value == 42
        with pytest.raises(ConfigurationError, match="decrease"):
            c.inc(-1)
        assert c.value == 42

    def test_zero_inc_allowed(self):
        c = Counter()
        c.inc(0)
        assert c.value == 0


class TestGauge:
    def test_high_water_mark_survives_dec(self):
        g = Gauge()
        g.inc(5)
        g.dec(3)
        assert g.value == 2.0
        assert g.max_value == 5.0
        g.set(1.0)
        assert g.max_value == 5.0
        g.set(9.0)
        assert g.max_value == 9.0


class TestEwmaRate:
    def test_steady_stream_converges_to_true_rate(self):
        # One event per ms == 1000 events/s; after many tau the EWMA
        # must sit on it.
        r = EwmaRate(tau_ms=100.0)
        for t in range(1, 2001):
            r.mark(float(t))
        assert r.per_second(2000.0) == pytest.approx(1000.0, rel=0.01)

    def test_decays_when_idle(self):
        r = EwmaRate(tau_ms=100.0)
        for t in range(1, 501):
            r.mark(float(t))
        busy = r.per_second(500.0)
        idle = r.per_second(500.0 + 5 * 100.0)
        assert idle == pytest.approx(busy * math.exp(-5), rel=1e-9)

    def test_reads_do_not_mutate(self):
        r = EwmaRate(tau_ms=50.0)
        r.mark(10.0)
        first = r.per_second(60.0)
        assert r.per_second(60.0) == first

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            EwmaRate(tau_ms=0.0)


class TestRegistry:
    def test_handles_are_interned_per_name_and_labels(self):
        reg = Registry()
        a = reg.counter("hops", {"server": "1", "domain": "D0"})
        b = reg.counter("hops", {"domain": "D0", "server": "1"})
        c = reg.counter("hops", {"server": "2", "domain": "D0"})
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_kind_collision_rejected(self):
        reg = Registry()
        reg.counter("depth")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("depth")

    def test_collectors_run_in_order_at_snapshot(self):
        reg = Registry()
        g = reg.gauge("pulled")
        order = []
        reg.add_collector(lambda: (order.append("a"), g.set(7.0)))
        reg.add_collector(lambda: order.append("b"))
        snapshot = reg.snapshot(now=123.0)
        assert order == ["a", "b"]
        assert total(snapshot, "pulled") == 7.0
        assert snapshot["sim_now_ms"] == 123.0

    def test_snapshot_is_sorted_and_strict_json(self):
        reg = Registry()
        reg.counter("zz")
        reg.counter("aa", {"server": "3"})
        reg.gauge("aa_depth").set(float("nan"))  # must not leak into JSON
        snapshot = reg.snapshot()
        names = [row["name"] for row in snapshot["instruments"]]
        assert names == sorted(names)
        out = io.StringIO()
        write_json(snapshot, out)  # allow_nan=False would raise on NaN
        assert "NaN" not in out.getvalue()

    def test_histogram_snapshot_row(self):
        reg = Registry()
        h = reg.histogram("lat_ms")
        assert isinstance(h, LogHistogram)
        for v in (1.0, 2.0, 4.0, 8.0):
            h.record(v)
        row = select(reg.snapshot(), "lat_ms")[0]
        assert row["count"] == 4
        assert row["sum"] == 15.0
        assert row["min"] == 1.0 and row["max"] == 8.0
        assert sum(count for _lo, _hi, count in row["buckets"]) == 4


class TestPrometheusExposition:
    def _snapshot(self):
        reg = Registry()
        reg.counter(
            "stamp_bytes_total", {"server": "0", "domain": "D0"},
            help="wire bytes of clock stamps",
        ).inc(1800)
        reg.counter("stamp_bytes_total", {"server": "1", "domain": "D0"})
        depth = reg.gauge("holdback_depth", {"server": "0"})
        depth.inc(3)
        depth.dec(3)
        reg.rate("reactions", tau_ms=100.0).mark(5.0)
        reg.histogram("dwell_ms").record(2.5)
        return reg.snapshot(now=10.0)

    def test_families_and_samples(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_stamp_bytes_total counter" in text
        assert (
            'repro_stamp_bytes_total{domain="D0",server="0"} 1800' in text
        )
        # One header per family even with several labeled samples.
        assert text.count("# TYPE repro_stamp_bytes_total") == 1
        assert "# HELP repro_stamp_bytes_total wire bytes" in text

    def test_gauge_exports_peak_companion(self):
        text = to_prometheus(self._snapshot())
        assert 'repro_holdback_depth{server="0"} 0' in text
        assert 'repro_holdback_depth_peak{server="0"} 3' in text

    def test_rate_is_a_gauge_not_a_counter(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_reactions gauge" in text

    def test_histogram_cumulative_buckets(self):
        text = to_prometheus(self._snapshot())
        assert 'repro_dwell_ms_bucket{le="+Inf"} 1' in text
        assert "repro_dwell_ms_sum 2.5" in text
        assert "repro_dwell_ms_count 1" in text

    def test_label_escaping(self):
        reg = Registry()
        reg.counter("odd", {"k": 'a"b\\c'}).inc()
        text = to_prometheus(reg.snapshot())
        assert 'k="a\\"b\\\\c"' in text

    def test_rejects_foreign_documents(self):
        with pytest.raises(ConfigurationError, match="not a repro.metrics"):
            to_prometheus({"format": "something/else"})


class TestSnapshotQueries:
    def _snapshot(self):
        reg = Registry()
        reg.counter("hops", {"server": "0", "domain": "D0"}).inc(3)
        reg.counter("hops", {"server": "1", "domain": "D1"}).inc(4)
        reg.counter("other").inc(100)
        return reg.snapshot()

    def test_select_and_total(self):
        snap = self._snapshot()
        assert total(snap, "hops") == 7.0
        assert total(snap, "hops", domain="D1") == 4.0
        assert total(snap, "absent") == 0.0
        assert len(select(snap, "hops", server="0")) == 1

    def test_label_values(self):
        assert label_values(self._snapshot(), "domain") == ["D0", "D1"]

    def test_json_roundtrip(self):
        snap = self._snapshot()
        out = io.StringIO()
        write_json(snap, out)
        again = read_json(io.StringIO(out.getvalue()))
        assert again == snap
        # Deterministic bytes: dumping the reloaded dict matches.
        out2 = io.StringIO()
        write_json(again, out2)
        assert out2.getvalue() == out.getvalue()

    def test_read_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            read_json(io.StringIO(json.dumps({"instruments": []})))
