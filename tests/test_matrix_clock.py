"""Unit tests for full-matrix clocks: the RST delivery test, merging,
duplicates, persistence snapshots."""

import pytest

from repro.clocks import MatrixClock
from repro.errors import ClockError


def make_group(size):
    return [MatrixClock(size, i) for i in range(size)]


class TestBasics:
    def test_initial_cells_zero(self):
        clock = MatrixClock(3, 0)
        assert all(clock.cell(i, j) == 0 for i in range(3) for j in range(3))

    def test_prepare_send_bumps_own_cell(self):
        clock = MatrixClock(3, 0)
        stamp = clock.prepare_send(2)
        assert clock.cell(0, 2) == 1
        assert stamp.entry(0, 2) == 1
        assert stamp.sender == 0
        assert stamp.dest == 2

    def test_stamp_is_full_matrix(self):
        clock = MatrixClock(5, 0)
        stamp = clock.prepare_send(1)
        assert stamp.wire_cells == 25

    def test_self_send_rejected(self):
        clock = MatrixClock(3, 1)
        with pytest.raises(ClockError):
            clock.prepare_send(1)

    def test_bad_dest_rejected(self):
        clock = MatrixClock(3, 0)
        with pytest.raises(ClockError):
            clock.prepare_send(3)

    def test_bad_owner_rejected(self):
        with pytest.raises(ClockError):
            MatrixClock(3, 5)

    def test_stamp_immutable_after_later_sends(self):
        clock = MatrixClock(3, 0)
        first = clock.prepare_send(1)
        clock.prepare_send(1)
        assert first.entry(0, 1) == 1


class TestDelivery:
    def test_direct_message_deliverable(self):
        a, b, _ = make_group(3)
        stamp = a.prepare_send(1)
        assert b.can_deliver(stamp)
        b.deliver(stamp)
        assert b.cell(0, 1) == 1

    def test_fifo_per_sender(self):
        a, b, _ = make_group(3)
        first = a.prepare_send(1)
        second = a.prepare_send(1)
        assert not b.can_deliver(second)
        b.deliver(first)
        assert b.can_deliver(second)

    def test_causal_transitivity_enforced(self):
        """a→b then b→c: c must hold back b's message until... here b's
        message to c does not mention a's message to c, so it goes through;
        but if a also sent to c *before* messaging b, the knowledge rides
        b's stamp and c must wait."""
        a, b, c = make_group(3)
        to_c = a.prepare_send(2)          # a -> c  (slow message)
        to_b = a.prepare_send(1)          # a -> b
        b.deliver(to_b)                   # b now knows a sent 1 msg to c
        from_b = b.prepare_send(2)        # b -> c
        assert not c.can_deliver(from_b)  # must wait for a's message
        c.deliver(to_c)
        assert c.can_deliver(from_b)
        c.deliver(from_b)

    def test_concurrent_messages_any_order(self):
        a, b, c = make_group(3)
        from_a = a.prepare_send(2)
        from_b = b.prepare_send(2)
        assert c.can_deliver(from_b)
        c.deliver(from_b)
        assert c.can_deliver(from_a)
        c.deliver(from_a)

    def test_deliver_undeliverable_raises(self):
        a, b, _ = make_group(3)
        a.prepare_send(1)
        second = a.prepare_send(1)
        with pytest.raises(ClockError):
            b.deliver(second)

    def test_merge_takes_cellwise_max(self):
        a, b, c = make_group(3)
        a_stamp = a.prepare_send(1)       # a knows (0,1)=1
        b.deliver(a_stamp)
        b_stamp = b.prepare_send(2)       # carries (0,1)=1 and (1,2)=1
        c.deliver(b_stamp)
        assert c.cell(0, 1) == 1
        assert c.cell(1, 2) == 1

    def test_size_mismatch_rejected(self):
        a = MatrixClock(3, 0)
        other = MatrixClock(4, 0)
        stamp = other.prepare_send(1)
        b = MatrixClock(3, 1)
        with pytest.raises(ClockError):
            b.can_deliver(stamp)


class TestDuplicates:
    def test_fresh_message_not_duplicate(self):
        a, b, _ = make_group(3)
        stamp = a.prepare_send(1)
        assert not b.is_duplicate(stamp)

    def test_delivered_message_is_duplicate(self):
        a, b, _ = make_group(3)
        stamp = a.prepare_send(1)
        b.deliver(stamp)
        assert b.is_duplicate(stamp)

    def test_older_retransmission_is_duplicate(self):
        a, b, _ = make_group(3)
        first = a.prepare_send(1)
        second = a.prepare_send(1)
        b.deliver(first)
        b.deliver(second)
        assert b.is_duplicate(first)


class TestPersistence:
    def test_snapshot_restore_roundtrip(self):
        a, b, _ = make_group(3)
        b.deliver(a.prepare_send(1))
        snapshot = b.snapshot()
        fresh = MatrixClock(3, 1)
        fresh.restore(snapshot)
        assert fresh.cell(0, 1) == 1

    def test_snapshot_is_isolated_from_future_mutation(self):
        a, b, _ = make_group(3)
        snapshot = b.snapshot()
        b.deliver(a.prepare_send(1))
        assert snapshot[0][1] == 0

    def test_restore_wrong_shape_rejected(self):
        clock = MatrixClock(3, 0)
        with pytest.raises(ClockError):
            clock.restore([[0, 0], [0, 0]])

    def test_dirty_cell_accounting(self):
        a, b, _ = make_group(3)
        assert a.dirty_cells() == 0
        stamp = a.prepare_send(1)
        assert a.dirty_cells() == 1
        a.clear_dirty()
        assert a.dirty_cells() == 0
        b.deliver(stamp)
        assert b.dirty_cells() == 1  # only (0,1) actually changed

    def test_crash_recovery_preserves_dedup(self):
        """After restore, previously delivered stamps are still duplicates
        — the property channel recovery relies on."""
        a, b, _ = make_group(3)
        stamp = a.prepare_send(1)
        b.deliver(stamp)
        snapshot = b.snapshot()
        recovered = MatrixClock(3, 1)
        recovered.restore(snapshot)
        assert recovered.is_duplicate(stamp)
