"""Tests for the markdown report generator."""

import pytest

from repro.bench.figures import local_unicast_table, state_size_table
from repro.bench.report import generate_report, _markdown_table
from repro.bench.__main__ import main as bench_main


class TestMarkdownTable:
    def test_table_shape(self):
        result = local_unicast_table(ns=[10, 20], rounds=2)
        table = _markdown_table(result)
        lines = table.splitlines()
        assert lines[0].startswith("| n |")
        assert lines[1].startswith("|---")
        assert len([l for l in lines if l.startswith("| 1") or l.startswith("| 2")]) == 2

    def test_notes_become_blockquotes(self):
        result = local_unicast_table(ns=[10, 20], rounds=2)
        table = _markdown_table(result)
        assert "> constant in n" in table


class TestGenerateReport:
    def test_small_report(self):
        sections = (
            ("Local", lambda: local_unicast_table(ns=[10], rounds=2)),
            ("State", lambda: state_size_table(ns=[10, 20])),
        )
        report = generate_report(sections)
        assert "# Reproduction report" in report
        assert "## Local" in report
        assert "## State" in report
        assert "wall time" in report

    def test_cli_report_subcommand(self, capsys):
        assert bench_main(["report"]) == 0
        out = capsys.readouterr().out
        assert "## Figure 7" in out
        assert "## Figure 11" in out
        assert "paper_ms" in out
