"""Log-scaled histograms vs a sorted-list oracle.

The contract (docstring of :class:`LogHistogram`): ``percentile(q)`` is
deterministic and bracketed — the exact rank-``q`` order statistic lies
within ``percentile_bounds(q)``, whose width is one geometric bucket
(a factor of ``10**(1/per_decade)``).
"""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.obs.histogram import LogHistogram


def oracle_percentile(values, q):
    """Exact rank-based percentile: the value at ceil(q/100 * n)."""
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [50, 90, 95, 99, 100])
    def test_exact_value_within_bounds(self, seed, q):
        rng = random.Random(seed)
        values = [rng.lognormvariate(1.0, 2.0) for _ in range(2000)]
        hist = LogHistogram("t")
        for v in values:
            hist.record(v)
        exact = oracle_percentile(values, q)
        lo, hi = hist.percentile_bounds(q)
        assert lo <= exact <= hi
        # bracket width is one geometric bucket
        assert hi / max(lo, 1e-12) <= 10 ** (1 / 32) * 1.0001

    @pytest.mark.parametrize("q", [50, 95, 99])
    def test_point_estimate_within_one_bucket_of_exact(self, q):
        rng = random.Random(7)
        values = [rng.uniform(0.5, 500.0) for _ in range(1000)]
        hist = LogHistogram("t")
        for v in values:
            hist.record(v)
        exact = oracle_percentile(values, q)
        estimate = hist.percentile(q)
        ratio = estimate / exact
        width = 10 ** (1 / 32)
        assert 1 / width / 1.0001 <= ratio <= width * 1.0001

    def test_deterministic(self):
        values = [1.0, 2.5, 2.5, 40.0, 0.003, 77777.0]
        a, b = LogHistogram("a"), LogHistogram("b")
        for v in values:
            a.record(v)
            b.record(v)
        for q in (1, 25, 50, 75, 99):
            assert a.percentile(q) == b.percentile(q)


class TestEdges:
    def test_single_value_percentiles_collapse(self):
        hist = LogHistogram("t")
        hist.record(42.0)
        for q in (0, 50, 100):
            assert hist.percentile(q) == 42.0

    def test_estimate_clamped_to_observed_extrema(self):
        hist = LogHistogram("t")
        for v in (3.0, 4.0, 5.0):
            hist.record(v)
        assert hist.percentile(100) <= 5.0
        assert hist.percentile(0) >= 3.0

    def test_under_and_overflow_still_counted(self):
        hist = LogHistogram("t", low=1.0, high=100.0)
        hist.record(1e-9)
        hist.record(1e9)
        assert hist.count == 2
        assert hist.minimum == 1e-9
        assert hist.maximum == 1e9
        # clamping keeps percentiles inside what was actually observed;
        # the underflow bucket only brackets down to ``low``
        assert hist.percentile(100) == 1e9
        assert 1e-9 <= hist.percentile(1) <= hist.low

    def test_rejects_non_finite(self):
        hist = LogHistogram("t")
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                hist.record(bad)
        assert hist.count == 0

    def test_empty_snapshot(self):
        snap = LogHistogram("t").snapshot()
        assert snap["count"] == 0

    def test_snapshot_keys(self):
        hist = LogHistogram("t")
        for v in (1.0, 10.0, 100.0):
            hist.record(v)
        snap = hist.snapshot()
        assert set(snap) == {
            "count", "mean", "min", "max", "p50", "p90", "p95", "p99",
        }
        assert snap["count"] == 3
        assert snap["mean"] == pytest.approx(37.0)

    def test_buckets_cover_all_in_range_counts(self):
        hist = LogHistogram("t")
        for v in (1.0, 1.0, 50.0, 1234.5):
            hist.record(v)
        assert sum(count for _, _, count in hist.buckets()) == 4
        for lo, hi, _ in hist.buckets():
            assert lo < hi
