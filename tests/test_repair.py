"""Tests for topology repair (cycle breaking with minimal membership cuts)."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology import from_domain_map, ring, validate_topology
from repro.topology.repair import (
    DomainAbsorption,
    RepairAction,
    repair_topology,
)


class TestAlreadyValid:
    def test_valid_topology_untouched(self, figure2_topology):
        repaired, actions = repair_topology(figure2_topology)
        assert actions == []
        assert [d.servers for d in repaired.domains] == [
            d.servers for d in figure2_topology.domains
        ]

    def test_single_domain_untouched(self):
        topo = from_domain_map({"D": [0, 1, 2]})
        repaired, actions = repair_topology(topo)
        assert actions == []


class TestCycleBreaking:
    def test_ring_becomes_acyclic(self):
        topo = ring(4, 3)
        with pytest.raises(TopologyError):
            validate_topology(topo)
        repaired, actions = repair_topology(topo)
        validate_topology(repaired)  # no raise
        assert len(actions) >= 1

    def test_every_server_keeps_a_home(self):
        topo = ring(5, 4)
        repaired, actions = repair_topology(topo)
        assert repaired.server_count == topo.server_count
        for server in repaired.servers:
            assert repaired.domains_of(server)

    def test_actions_describe_removals(self):
        topo = ring(3, 3)
        repaired, actions = repair_topology(topo)
        surviving = set(repaired.domain_ids)
        for action in actions:
            assert action.describe()
            if isinstance(action, RepairAction):
                if action.domain_id in surviving:
                    domain = repaired.domain(action.domain_id)
                    assert action.server not in domain.servers
            else:
                assert isinstance(action, DomainAbsorption)
                assert action.domain_id not in surviving

    def test_minimal_cut_for_simple_ring(self):
        """A 3-domain ring of 2-server domains has exactly one redundant
        adjacency; one membership cut breaks it, and the domain it shrinks
        collapses into its superset."""
        topo = from_domain_map({"d0": [0, 1], "d1": [1, 2], "d2": [2, 0]})
        repaired, actions = repair_topology(topo)
        validate_topology(repaired)
        cuts = [a for a in actions if isinstance(a, RepairAction)]
        assert len(cuts) == 1

    def test_double_shared_pair_thinned(self):
        """Two domains sharing two servers: keep one shared router."""
        topo = from_domain_map({"a": [0, 1, 2], "b": [1, 2, 3]})
        repaired, actions = repair_topology(topo)
        validate_topology(repaired)
        assert len(actions) == 1
        shared = set(repaired.domain("a").servers) & set(
            repaired.domain("b").servers
        )
        assert len(shared) == 1

    def test_disconnected_not_repairable(self):
        topo = from_domain_map({"a": [0, 1], "b": [2, 3]})
        with pytest.raises(TopologyError, match="disconnected"):
            repair_topology(topo)


class TestRepairProperties:
    @given(
        domain_count=st.integers(min_value=3, max_value=7),
        domain_size=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_rings_always_repairable(self, domain_count, domain_size):
        topo = ring(domain_count, domain_size)
        repaired, actions = repair_topology(topo)
        validate_topology(repaired)
        assert actions
        # repair removes memberships (and possibly collapses nested
        # domains) but never removes servers
        assert repaired.server_count == topo.server_count
        assert set(repaired.domain_ids) <= set(topo.domain_ids)
        for domain in repaired.domains:
            original = topo.domain(domain.domain_id)
            assert set(domain.servers) <= set(original.servers)
