"""Soak tests: long mixed workloads with failures, checked end to end.

One big scenario per configuration: dozens of agents, relaying chatter,
pub/sub fan-out, open-loop load, crashes, partitions and packet loss, all
at once — then every invariant at the end: exactly-once, causal order
(app level and per domain), quiescent queues, conserved message counts.
"""

import random as pyrandom

import pytest

from repro.bench import OpenLoopDriver, SinkAgent
from repro.mom import BusConfig, FailureInjector, MessageBus
from repro.mom.agent import Agent
from repro.pubsub import Delivery, Publish, Subscribe, TopicAgent
from repro.simulation.network import UniformLatency
from repro.topology import bus as bus_topology
from repro.topology import daisy, tree


class ChatterAgent(Agent):
    """Talks to scripted peers; forwards a hop-counter; logs everything."""

    def __init__(self, seed):
        super().__init__()
        self.seed = seed
        self.peers = []
        self.received = []
        self.sent_count = 0

    def on_boot(self, ctx):
        rng = pyrandom.Random(self.seed)
        for _ in range(3):
            target = rng.choice(self.peers)
            if target != ctx.my_id:
                self.sent_count += 1
                ctx.send(target, ("chat", 2, self.sent_count))

    def react(self, ctx, sender, payload):
        if isinstance(payload, Delivery):
            self.received.append(("pub", payload.body))
            return
        kind, hops, token = payload
        self.received.append((sender, hops, token))
        if hops > 0:
            rng = pyrandom.Random(self.seed * 31 + hops * 7 + token)
            target = rng.choice(self.peers)
            if target != ctx.my_id:
                self.sent_count += 1
                ctx.send(target, ("chat", hops - 1, token))


def build_soak(topology, seed, with_failures=True):
    config = BusConfig(
        topology=topology,
        seed=seed,
        latency=UniformLatency(0.2, 18.0),
        loss_rate=0.05,
        clock_algorithm="updates" if seed % 2 else "matrix",
        record_hop_trace=True,
    )
    mom = MessageBus(config)
    rng = pyrandom.Random(seed)

    agents = []
    ids = []
    for server in topology.servers:
        agent = ChatterAgent(seed * 97 + server)
        ids.append(mom.deploy(agent, server))
        agents.append(agent)
    for agent in agents:
        agent.peers = ids

    topic = TopicAgent()
    topic_id = mom.deploy(topic, rng.choice(list(topology.servers)))
    publisher_server = rng.choice(list(topology.servers))

    class Publisher(Agent):
        def on_boot(self, ctx):
            for agent_id in ids[::3]:
                ctx.send(topic_id, Subscribe(agent_id))
            for i in range(4):
                ctx.send(topic_id, Publish(("tick", i)))

        def react(self, ctx, sender, payload):
            pass

    mom.deploy(Publisher(), publisher_server)

    sink = SinkAgent()
    sink_id = mom.deploy(sink, topology.servers[-1])
    driver = OpenLoopDriver(period_ms=40.0, count=15)
    driver.bind(sink_id)
    mom.deploy(driver, topology.servers[0])

    if with_failures:
        injector = FailureInjector(mom)
        victims = rng.sample(list(topology.servers), k=2)
        injector.crash_at(120.0, victims[0], down_for=180.0)
        injector.crash_at(450.0, victims[1], down_for=150.0)
        pair = rng.sample(list(topology.servers), k=2)
        injector.partition_at(250.0, pair[0], pair[1], duration=200.0)

    return mom, agents, sink, driver


def assert_soak_invariants(mom, agents, sink, driver):
    # liveness: everything drained
    for server in mom.servers.values():
        assert not server.is_crashed
        assert server.channel.unacked_count == 0
        assert server.channel.heldback_count == 0
        assert server.engine.queued == 0
    # exactly-once at the app level: every recorded send was delivered once
    trace = mom.app_trace
    for message in trace.messages:
        assert trace.was_received(message), f"{message!r} lost"
    # open-loop stream complete
    assert sink.received == driver.count
    # causal order, globally and per domain
    assert mom.check_app_causality().respects_causality
    for report in mom.check_domain_causality().values():
        assert report.respects_causality, report.summary()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_bus_topology(seed):
    topology = bus_topology(16, 4)
    mom, agents, sink, driver = build_soak(topology, seed)
    mom.start()
    mom.run_until_idle()
    assert_soak_invariants(mom, agents, sink, driver)


def test_soak_daisy_topology():
    topology = daisy(13, 4)
    mom, agents, sink, driver = build_soak(topology, seed=7)
    mom.start()
    mom.run_until_idle()
    assert_soak_invariants(mom, agents, sink, driver)


def test_soak_tree_topology():
    topology = tree(13, fanout=2, domain_size=4)
    mom, agents, sink, driver = build_soak(topology, seed=11)
    mom.start()
    mom.run_until_idle()
    assert_soak_invariants(mom, agents, sink, driver)


def test_soak_without_failures_is_also_clean():
    topology = bus_topology(16, 4)
    mom, agents, sink, driver = build_soak(topology, seed=5, with_failures=False)
    mom.start()
    mom.run_until_idle()
    assert_soak_invariants(mom, agents, sink, driver)
