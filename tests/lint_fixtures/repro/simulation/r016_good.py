"""R016 good twin: the flush dominates every grant send."""


class R016GoodCoordinator:
    def __init__(self, conns):
        self._conns = list(conns)
        self._pending = [[] for _ in self._conns]

    def advance(self, bound, budget):
        granted, self._pending = self._pending, [[] for _ in self._conns]
        for conn, arrivals in zip(self._conns, granted):
            conn.send(("grant", bound, arrivals, budget))
        for index, conn in enumerate(self._conns):
            entry = conn.recv()
            if entry is not None:
                self._pending[0].append(entry)

    def finish(self):
        for conn in self._conns:
            conn.send(("finish",))
