"""R002 fixture: ambient nondeterminism outside rng.py (5 hits)."""

import os
import random
import time
from datetime import datetime
from random import randint


def jitter():
    a = random.random()  # hit: global RNG
    b = randint(0, 9)  # hit: global RNG via from-import
    c = time.time()  # hit: wall clock
    d = datetime.now()  # hit: wall clock
    e = os.urandom(4)  # hit: OS entropy
    return a, b, c, d, e
