"""R006 fixture: a shard-kernel module importing upward (2 hits).

The sharded-parallel kernel (``repro.simulation.shard``/``sync``) must
stay MOM-agnostic: the simulation layer may never import the layers it
hosts, or the conservative sync would grow protocol knowledge the
sequential kernel does not have.
"""

import repro.mom.parallel  # hit: simulation -> mom
from repro.topology.shardplan import build_shard_plan  # hit: simulation -> topology


def use():
    return repro.mom.parallel, build_shard_plan
