"""R016 noqa twin: the early grant is explicitly waived."""


class R016WaivedCoordinator:
    def __init__(self, conns):
        self._conns = list(conns)
        self._pending = [[] for _ in self._conns]

    def advance(self, bound, budget):
        for conn in self._conns:
            conn.send(("grant", bound, [], budget))  # noqa: R016
        granted, self._pending = self._pending, [[] for _ in self._conns]
        for conn, arrivals in zip(self._conns, granted):
            conn.send(("grant", bound, arrivals, budget))
