"""R002 fixture: this path *is* simulation/rng.py — the one exempt module."""

import random


def entropy():
    return random.random()  # allowed only here
