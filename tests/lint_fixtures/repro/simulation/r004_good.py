"""R004 fixture: ordered comparisons and non-time equality are fine."""


def poll(sim, event, deadline, count):
    if sim.now >= deadline:  # ordered comparison
        return True
    if count == 3:  # not a timestamp
        return False
    return event.sent_at <= sim.now
