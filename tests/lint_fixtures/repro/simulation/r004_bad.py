"""R004 fixture: float equality on virtual timestamps (3 hits)."""


def poll(sim, event, deadline):
    if sim.now == deadline:  # hit
        return True
    if event.sent_at != 0.0:  # hit
        return False
    done = event.busy_until == sim.now  # hit (either side matches)
    return done
