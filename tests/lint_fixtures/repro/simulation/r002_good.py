"""R002 fixture: seeded RNGs and non-clock APIs are fine."""

import random
import time


def seeded(seed):
    rng = random.Random(seed)  # seeded: deterministic
    rng2 = random.Random(0)
    t = time.perf_counter()  # wall-clock *benchmarking* is not simulated time
    return rng.random() + rng2.random() + t
