"""R016 fixture: an LBTS grant escapes before the arrival flush."""


class R016Coordinator:
    def __init__(self, conns):
        self._conns = list(conns)
        self._pending = [[] for _ in self._conns]

    def advance(self, bound, budget):
        if budget <= 0:
            for conn in self._conns:
                conn.send(("grant", bound, [], budget))  # not flushed
            return
        granted, self._pending = self._pending, [[] for _ in self._conns]
        for conn, arrivals in zip(self._conns, granted):
            conn.send(("grant", bound, arrivals, budget))
