"""R003 fixture: bench/ is outside the rule's scope — no hits."""


def summarize(rows):
    return [row for row in set(rows)]
