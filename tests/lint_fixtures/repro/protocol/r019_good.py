"""R019 twin: a registered core that matches the contract exactly."""

from typing import Tuple

from repro.protocol.core_defs import (
    CausalCore,
    DemoClock,
    DemoStamp,
    register_core,
)


class PoliteCore(CausalCore):
    name = "polite"
    clock_cls = DemoClock
    stamp_cls = DemoStamp

    def create_clock(self, size: int, owner: int) -> DemoClock:
        return DemoClock(size, owner)

    def deliverable(self, clock: DemoClock, stamp: DemoStamp) -> bool:
        return clock.can_deliver(stamp) and not clock.is_duplicate(stamp)

    def encode_stamp(self, stamp: DemoStamp) -> Tuple[int, ...]:
        return (stamp.sender,) + tuple(stamp.entries)


register_core(PoliteCore())
