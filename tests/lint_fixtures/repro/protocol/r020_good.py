"""R020 twin: a pure guard, plus the sanctioned lazy-memo idiom."""

from typing import Optional, Tuple

from repro.protocol.core_defs import (
    CausalClock,
    CausalCore,
    Stamp,
    register_core,
)


class MemoStamp(Stamp):
    def __init__(self, sender: int, entries: Tuple[int, ...]) -> None:
        self.sender = sender
        self.entries = entries
        self._top: Optional[int] = None

    def top_entry(self) -> int:
        if self._top is None:
            self._top = max(self.entries)  # memo of a pure computation
        return self._top


class MemoClock(CausalClock):
    def __init__(self, size: int, owner: int) -> None:
        self._row = [0] * size
        self._owner = owner

    def can_deliver(self, stamp: MemoStamp) -> bool:
        return stamp.top_entry() <= self._row[stamp.sender] + 1

    def is_duplicate(self, stamp: MemoStamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]


class MemoCore(CausalCore):
    name = "memo"
    clock_cls = MemoClock
    stamp_cls = MemoStamp

    def create_clock(self, size: int, owner: int) -> MemoClock:
        return MemoClock(size, owner)

    def deliverable(self, clock: MemoClock, stamp: MemoStamp) -> bool:
        return clock.can_deliver(stamp)

    def encode_stamp(self, stamp: MemoStamp) -> Tuple[int, ...]:
        return (stamp.sender,) + tuple(stamp.entries)


register_core(MemoCore())
