"""R023 noqa twin: the missing registration is explicitly waived."""

from repro.protocol.core_defs import CausalClock


class WaivedRogueClock(CausalClock):  # noqa: R023
    def __init__(self, size: int, owner: int) -> None:
        self._row = [0] * size
        self._owner = owner

    def can_deliver(self, stamp) -> bool:
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]
