"""R020 fixture: a deliverability guard that mutates clock state."""

from typing import Tuple

from repro.protocol.core_defs import (
    CausalClock,
    CausalCore,
    DemoStamp,
    register_core,
)


class CountingClock(CausalClock):
    def __init__(self, size: int, owner: int) -> None:
        self._row = [0] * size
        self._owner = owner
        self._probes = 0

    def can_deliver(self, stamp: DemoStamp) -> bool:
        self._probes += 1  # state change on a speculative probe
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp: DemoStamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]


class CountingCore(CausalCore):
    name = "counting"
    clock_cls = CountingClock
    stamp_cls = DemoStamp

    def create_clock(self, size: int, owner: int) -> CountingClock:
        return CountingClock(size, owner)

    def deliverable(self, clock: CountingClock, stamp: DemoStamp) -> bool:
        return clock.can_deliver(stamp)

    def encode_stamp(self, stamp: DemoStamp) -> Tuple[int, ...]:
        return (stamp.sender,) + tuple(stamp.entries)


register_core(CountingCore())
