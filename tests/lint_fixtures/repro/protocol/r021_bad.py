"""R021 fixture: a registered stamp type that cannot cross the pipe."""

import threading
from typing import Tuple

from repro.protocol.core_defs import (
    CausalClock,
    CausalCore,
    DemoClock,
    Stamp,
    register_core,
)


class LockedStamp:
    def __init__(self, sender: int, entries: Tuple[int, ...]) -> None:
        self.sender = sender
        self.entries = entries
        self._guard = threading.Lock()


class LockedCore(CausalCore):
    name = "locked"
    clock_cls = DemoClock
    stamp_cls = LockedStamp

    def create_clock(self, size: int, owner: int) -> DemoClock:
        return DemoClock(size, owner)

    def deliverable(self, clock: CausalClock, stamp: Stamp) -> bool:
        return clock.can_deliver(stamp)

    def encode_stamp(self, stamp: Stamp) -> Tuple[int, ...]:
        return (stamp.sender, *stamp.entries)


register_core(LockedCore())
