"""R019 fixture: a registered core drifts from the CausalCore surface."""

from repro.protocol.core_defs import (
    CausalCore,
    DemoClock,
    DemoStamp,
    register_core,
)


class DriftingCore(CausalCore):
    name = "drifting"
    clock_cls = DemoClock
    stamp_cls = DemoStamp

    def create_clock(self, size: int, owner: int) -> DemoClock:
        return DemoClock(size, owner)

    def deliverable(self, clock: DemoClock) -> bool:  # dropped the stamp
        return clock is not None

    # encode_stamp is missing entirely


register_core(DriftingCore())
