"""R020 noqa twin: a guard-side counter is explicitly waived."""

from typing import Tuple

from repro.protocol.core_defs import (
    CausalClock,
    CausalCore,
    DemoStamp,
    register_core,
)


class TallyClock(CausalClock):
    def __init__(self, size: int, owner: int) -> None:
        self._row = [0] * size
        self._hits = 0

    def can_deliver(self, stamp: DemoStamp) -> bool:
        self._hits += 1  # noqa: R020
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp: DemoStamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]


class TallyCore(CausalCore):
    name = "tally"
    clock_cls = TallyClock
    stamp_cls = DemoStamp

    def create_clock(self, size: int, owner: int) -> TallyClock:
        return TallyClock(size, owner)

    def deliverable(self, clock: TallyClock, stamp: DemoStamp) -> bool:
        return clock.can_deliver(stamp)

    def encode_stamp(self, stamp: DemoStamp) -> Tuple[int, ...]:
        return (stamp.sender,) + tuple(stamp.entries)


register_core(TallyCore())
