"""R021 noqa twin: one unpicklable stamp field is explicitly waived."""

from typing import Tuple

from repro.protocol.core_defs import (
    CausalClock,
    CausalCore,
    DemoClock,
    Stamp,
    register_core,
)


class WaivedStamp:
    def __init__(self, sender: int, entries: Tuple[int, ...]) -> None:
        self.sender = sender
        self.entries = entries
        self._fmt = lambda e: str(e)  # noqa: R021


class WaivedPickleCore(CausalCore):
    name = "waived-pickle"
    clock_cls = DemoClock
    stamp_cls = WaivedStamp

    def create_clock(self, size: int, owner: int) -> DemoClock:
        return DemoClock(size, owner)

    def deliverable(self, clock: CausalClock, stamp: Stamp) -> bool:
        return clock.can_deliver(stamp)

    def encode_stamp(self, stamp: Stamp) -> Tuple[int, ...]:
        return (stamp.sender, *stamp.entries)


register_core(WaivedPickleCore())
