"""R019 noqa twin: a known-incomplete core is explicitly waived."""

from repro.protocol.core_defs import (
    CausalCore,
    DemoClock,
    DemoStamp,
    register_core,
)


class WaivedCore(CausalCore):  # noqa: R019
    name = "waived"
    clock_cls = DemoClock
    stamp_cls = DemoStamp

    def create_clock(self, size: int, owner: int) -> DemoClock:
        return DemoClock(size, owner)

    def deliverable(self, clock: DemoClock, stamp: DemoStamp) -> bool:
        return clock.can_deliver(stamp)

    # encode_stamp intentionally missing; the waiver acknowledges it


register_core(WaivedCore())
