"""R021 twin: a registered stamp made only of picklable fields."""

from typing import Tuple

from repro.protocol.core_defs import (
    CausalClock,
    CausalCore,
    DemoClock,
    Stamp,
    register_core,
)


class PlainStamp(Stamp):
    def __init__(self, sender: int, entries: Tuple[int, ...]) -> None:
        self.sender = sender
        self.entries = tuple(entries)
        self.hops = 0


class PlainCore(CausalCore):
    name = "plain"
    clock_cls = DemoClock
    stamp_cls = PlainStamp

    def create_clock(self, size: int, owner: int) -> DemoClock:
        return DemoClock(size, owner)

    def deliverable(self, clock: CausalClock, stamp: Stamp) -> bool:
        return clock.can_deliver(stamp)

    def encode_stamp(self, stamp: Stamp) -> Tuple[int, ...]:
        return (stamp.sender, *stamp.entries)


register_core(PlainCore())
