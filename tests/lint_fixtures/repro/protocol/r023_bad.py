"""R023 fixture: a bootable clock nobody registered or exempted."""

from repro.protocol.core_defs import CausalClock


class RogueClock(CausalClock):
    def __init__(self, size: int, owner: int) -> None:
        self._row = [0] * size
        self._owner = owner

    def can_deliver(self, stamp) -> bool:
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]
