"""Shared scaffolding for the R018–R023 contract-rule fixtures.

Miniature stand-ins for the real ``repro.protocol`` surface: the
``Stamp``/``CausalClock``/``CausalCore`` bases, a registry stub, and one
conformant registered core (``DemoCore``).  The contract rules discover
all of this statically — by class *name* and ``register_core`` call
sites — exactly as they do for the real package, so the fixtures never
import the production code.
"""

import abc
from typing import Tuple


class Stamp(abc.ABC):
    """Fixture stand-in for the protocol stamp base."""


class CausalClock(abc.ABC):
    """Fixture stand-in for the causal-clock base."""

    @abc.abstractmethod
    def can_deliver(self, stamp):
        raise NotImplementedError

    @abc.abstractmethod
    def is_duplicate(self, stamp):
        raise NotImplementedError


class CausalCore(abc.ABC):
    """Fixture stand-in for the plug-in core contract."""

    name: str
    clock_cls: type
    stamp_cls: type
    causal = True

    @abc.abstractmethod
    def create_clock(self, size: int, owner: int) -> "CausalClock":
        raise NotImplementedError

    @abc.abstractmethod
    def deliverable(self, clock: "CausalClock", stamp: "Stamp") -> bool:
        raise NotImplementedError

    @abc.abstractmethod
    def encode_stamp(self, stamp: "Stamp") -> Tuple[int, ...]:
        raise NotImplementedError


_REGISTRY = {}


def register_core(core):
    _REGISTRY[core.name] = core
    return core


class DemoStamp(Stamp):
    def __init__(self, sender: int, entries: Tuple[int, ...]) -> None:
        self.sender = sender
        self.entries = entries


class DemoClock(CausalClock):
    def __init__(self, size: int, owner: int) -> None:
        self._row = [0] * size
        self._owner = owner

    def can_deliver(self, stamp: "DemoStamp") -> bool:
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp: "DemoStamp") -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]


class DemoCore(CausalCore):
    name = "demo"
    clock_cls = DemoClock
    stamp_cls = DemoStamp

    def create_clock(self, size: int, owner: int) -> DemoClock:
        return DemoClock(size, owner)

    def deliverable(self, clock: DemoClock, stamp: DemoStamp) -> bool:
        return clock.can_deliver(stamp)

    def encode_stamp(self, stamp: DemoStamp) -> Tuple[int, ...]:
        return (stamp.sender,) + tuple(stamp.entries)


register_core(DemoCore())
