"""R008 fixture: a tracer hook whose call path mutates protocol state."""


class R008TracerBad:
    def __init__(self) -> None:
        self.events = 0

    def on_send(self, channel: "R008Channel", mid: str) -> None:
        self.events += 1  # observer-local state: fine
        _bump(channel)  # ...but this helper touches the channel


def _bump(channel: "R008Channel") -> None:
    channel.sent += 1  # mutates protocol state from a hook path
