"""R008 fixture: an acknowledged hook-path mutation, suppressed."""


class R008TracerNoqa:
    def on_send(self, channel: "R008Channel", mid: str) -> None:
        channel.sent += 1  # noqa: R008
