"""R008 fixture: a pure tracer hook — reads protocol state, writes own."""


class R008TracerGood:
    def __init__(self) -> None:
        self.events = 0
        self.last_seen = ""

    def on_send(self, channel: "R008Channel", mid: str) -> None:
        self.events += 1
        self.last_seen = mid
        _observe(channel)


def _observe(channel: "R008Channel") -> int:
    return channel.sent  # reading is always fine
