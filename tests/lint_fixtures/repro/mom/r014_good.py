"""R014 good twin: shipped types carry only plain data."""


class R014GoodReport:
    def __init__(self, rows):
        self.rows = list(rows)
        self.total = len(self.rows)


class R014LocalScratch:
    """Never crosses a pipe, so a callable field is fine."""

    def __init__(self):
        self.reduce = lambda a, b: a + b


def ship_good(conn, rows):
    conn.send(("state", R014GoodReport(rows)))
