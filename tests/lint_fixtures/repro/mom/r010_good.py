"""R010 fixture: every path closes the transaction or hands it off."""


class R010Paired:
    def __init__(self, processor) -> None:
        self._pending_commits = set()
        self._processor = processor

    def close_on_both_arms(self, mid: str) -> None:
        self._pending_commits.add(mid)
        if self._ready(mid):
            self._pending_commits.discard(mid)
        else:
            self._pending_commits.clear()

    def handoff(self, mid: str, cost: float) -> None:
        self._pending_commits.add(mid)
        self._processor.submit(cost, self._commit, mid)

    def close_in_finally(self, mid: str) -> None:
        self._pending_commits.add(mid)
        try:
            self._apply(mid)
        finally:
            self._pending_commits.discard(mid)

    def _ready(self, mid: str) -> bool:
        return True

    def _apply(self, mid: str) -> None:
        pass

    def _commit(self, mid: str) -> None:
        self._pending_commits.discard(mid)
