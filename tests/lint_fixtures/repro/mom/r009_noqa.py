"""R009 fixture: a deliberate unguarded hook call, suppressed."""

from typing import Optional


class R009Suppressed:
    _tracer: Optional[object]

    def __init__(self) -> None:
        self._tracer = None

    def always_traced(self, mid: str) -> None:
        self._tracer.on_send(mid)  # noqa: R009
