"""R013 good twin: results cross the fork boundary through the pipe."""

from multiprocessing import Pipe, Process

_SHARD_RESULTS: dict = {}


def _r013_good_worker(conn, shard_id):
    conn.send(("report", shard_id, "done"))


def launch_good(shard_ids):
    conns = []
    for shard_id in shard_ids:
        parent_conn, child_conn = Pipe()
        proc = Process(target=_r013_good_worker, args=(child_conn, shard_id))
        proc.start()
        conns.append(parent_conn)
    return conns


def merge(conns):
    for conn in conns:
        tag, shard_id, status = conn.recv()
        _SHARD_RESULTS[shard_id] = status
    return _SHARD_RESULTS
