"""R005 fixture: bare/swallowing exception handlers (3 hits)."""


def risky(channel, stamp):
    try:
        channel.deliver(stamp)
    except:  # hit: bare except
        pass
    try:
        channel.deliver(stamp)
    except ClockError:  # hit: protocol error swallowed, no raise
        log_it()
    try:
        channel.deliver(stamp)
    except Exception:  # hit: broad catch with empty body
        pass


def log_it():
    return None
