"""R014 fixture: unpicklable fields in a type shipped over the pipe."""

import threading


class R014Report:
    def __init__(self, rows):
        self.rows = list(rows)
        self.reduce = lambda a, b: a + b  # lambda cannot be pickled
        self.guard = threading.Lock()  # neither can a lock


def ship(conn, rows):
    conn.send(("state", R014Report(rows)))
