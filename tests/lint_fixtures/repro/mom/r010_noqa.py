"""R010 fixture: a transaction intentionally left open, suppressed."""


class R010Suppressed:
    def __init__(self) -> None:
        self._pending_commits = set()

    def open_forever(self, mid: str) -> None:
        self._pending_commits.add(mid)  # noqa: R010
