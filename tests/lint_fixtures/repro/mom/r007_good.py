"""R007 fixture: stream draws that stay local never fire."""

from repro.simulation.rng import RngFactory


class R007Clean:
    def __init__(self, rng: RngFactory) -> None:
        self._rng = rng  # the factory itself is not a stream value
        self.count = 0

    def deliver(self, mid: str) -> float:
        draw = self._rng.stream("domain").random()
        self.count += 1  # untainted write is fine
        return draw  # returning taint is fine; *storing* it is not
