"""R003 fixture: sorted or insertion-ordered iteration is fine."""


def fanout(servers, table):
    for server in sorted(set(servers)):  # sorted: deterministic
        server.send()
    for key, value in table.items():  # dict order is insertion order
        value.flush()
    for server in servers:  # plain sequence
        server.poke()
