"""R012 fixture: exception paths that clean up the hold-back entry."""


class R012Paired:
    def __init__(self, holdback) -> None:
        self._holdback = holdback

    def enqueue_handler_cleans(self, envelope, item) -> None:
        self._holdback.add(envelope)
        try:
            self._process(envelope, item)
        except ValueError:
            self._holdback.remove(envelope)
            return
        self._holdback.remove(envelope)

    def enqueue_finally_cleans(self, envelope, item) -> None:
        self._holdback.add(envelope)
        try:
            self._process(envelope, item)
        finally:
            self._holdback.remove(envelope)

    def no_enclosing_try(self, envelope) -> None:
        # an uncaught exception crashes loudly — that is R005's domain,
        # not a silent leak
        self._holdback.add(envelope)
        self._holdback.remove(envelope)

    def _process(self, envelope, item) -> None:
        raise ValueError(envelope)
