"""R013 fixture: worker writes module state the parent later reads."""

from multiprocessing import Pipe, Process

_SHARD_RESULTS: dict = {}
_EVENT_COUNT = 0


def _r013_worker(conn, shard_id):
    global _EVENT_COUNT
    _EVENT_COUNT = _EVENT_COUNT + 1  # lost at the fork boundary
    _SHARD_RESULTS[shard_id] = "done"  # the parent never sees this
    conn.send(("report", shard_id))


def launch(shard_ids):
    procs = []
    conns = []
    for shard_id in shard_ids:
        parent_conn, child_conn = Pipe()
        proc = Process(target=_r013_worker, args=(child_conn, shard_id))
        proc.start()
        procs.append(proc)
        conns.append(parent_conn)
    return procs, conns


def summary():
    return len(_SHARD_RESULTS), _EVENT_COUNT
