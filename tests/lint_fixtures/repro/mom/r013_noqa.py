"""R013 noqa twin: the lost-update write is explicitly waived."""

from multiprocessing import Pipe, Process

_WAIVED_RESULTS: dict = {}


def _r013_waived_worker(conn, shard_id):
    _WAIVED_RESULTS[shard_id] = "done"  # noqa: R013
    conn.send(("report", shard_id))


def launch_waived(shard_ids):
    conns = []
    for shard_id in shard_ids:
        parent_conn, child_conn = Pipe()
        proc = Process(target=_r013_waived_worker, args=(child_conn, shard_id))
        proc.start()
        conns.append(parent_conn)
    return conns


def waived_summary():
    return dict(_WAIVED_RESULTS)
