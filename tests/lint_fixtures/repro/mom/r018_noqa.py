"""R018 noqa twin: one private peek is explicitly waived."""

from repro.protocol.core_defs import DemoClock


class R018Waived:
    def __init__(self, size: int, owner: int) -> None:
        self.clock = DemoClock(size, owner)

    def snapshot(self) -> list:
        return list(self.clock._row)  # noqa: R018
