"""R018 fixture: the messaging layer reaches past the core boundary."""

from repro.protocol.core_defs import DemoClock, DemoStamp


class R018Channel:
    def __init__(self, size: int, owner: int) -> None:
        self.clock = DemoClock(size, owner)

    def force_advance(self, stamp: DemoStamp) -> None:
        row = self.clock._row  # private read of core state
        row[stamp.sender] = stamp.entries[stamp.sender]

    def hijack_owner(self) -> None:
        self.clock._owner = 0  # direct write to core state
