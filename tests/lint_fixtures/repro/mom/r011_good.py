"""R011 fixture: the sanctioned persistence API, and look-alikes."""


class R011Clean:
    def __init__(self, server) -> None:
        self._server = server
        self._data = {}  # not a store: no store segment in the chain

    def save(self, key: str, value: int, store) -> int:
        self._server.store.put_entry("cell", key, value)  # the API
        self._data[key] = value  # unrelated local dict
        return store.writes  # reading counters is fine
