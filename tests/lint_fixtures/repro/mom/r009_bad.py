"""R009 fixture: hook calls that dodge the is-not-None guard."""

from typing import Optional


class R009Channel:
    _tracer: Optional[object]

    def __init__(self) -> None:
        self._tracer = None

    def unguarded(self, mid: str) -> None:
        self._tracer.on_send(mid)  # no guard at all

    def one_armed(self, mid: str, fast: bool) -> None:
        if fast:
            if self._tracer is not None:
                self._tracer.on_send(mid)
        else:
            self._tracer.on_send(mid)  # this branch is unguarded

    def stale_guard(self, mid: str) -> None:
        if self._tracer is not None:
            self._tracer = self._fresh()
            self._tracer.on_send(mid)  # rebinding killed the fact

    def _fresh(self) -> Optional[object]:
        return None
