"""R017 noqa twin: the shared stream name is explicitly waived."""

from multiprocessing import Process


def _r017_waived_worker(conn, factory):
    stream = factory.stream("network")  # noqa: R017
    conn.send(("seeded", stream.random()))


def spawn_r017_waived(conns, factory):
    for conn in conns:
        proc = Process(target=_r017_waived_worker, args=(conn, factory))
        proc.start()
