"""R018 twin: the messaging layer stays on the core's public surface."""

from repro.protocol.core_defs import DemoClock, DemoStamp


class R018CleanChannel:
    def __init__(self, size: int, owner: int) -> None:
        self.clock = DemoClock(size, owner)

    def deliverable(self, stamp: DemoStamp) -> bool:
        return self.clock.can_deliver(stamp)

    def duplicate(self, stamp: DemoStamp) -> bool:
        return self.clock.is_duplicate(stamp)
