"""R009 fixture: every accepted guard idiom for hook handles."""

from typing import Optional


class R009Guarded:
    _tracer: Optional[object]

    def __init__(self) -> None:
        self._tracer = None
        self.acct = None

    def direct(self, mid: str) -> None:
        if self._tracer is not None:
            self._tracer.on_send(mid)

    def early_return(self, mid: str) -> None:
        if self._tracer is None:
            return
        self._tracer.on_send(mid)

    def local_alias(self, mid: str) -> None:
        tracer = self._tracer
        if tracer is not None:
            tracer.on_send(mid)

    def ternary(self, server_id: str) -> None:
        self.handle = (
            self.acct.server(server_id) if self.acct is not None else None
        )

    def short_circuit(self, mid: str) -> bool:
        return self._tracer is not None and self._tracer.on_send(mid)

    def truthiness(self, mid: str) -> None:
        if self._tracer:
            self._tracer.on_send(mid)
