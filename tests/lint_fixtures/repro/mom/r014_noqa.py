"""R014 noqa twin: the unpicklable field is explicitly waived."""


class R014WaivedReport:
    def __init__(self, rows):
        self.rows = list(rows)
        self.reduce = lambda a, b: a + b  # noqa: R014


def ship_waived(conn, rows):
    conn.send(("state", R014WaivedReport(rows)))
