"""R012 fixture: a hold-back entry that survives a swallowed error."""


class R012Channel:
    def __init__(self, holdback) -> None:
        self._holdback = holdback

    def enqueue(self, envelope, item) -> None:
        self._holdback.add(envelope)
        try:
            self._process(envelope, item)
        except ValueError:
            return  # swallowed: the entry above is never removed
        self._holdback.remove(envelope)

    def _process(self, envelope, item) -> None:
        raise ValueError(envelope)
