"""R005 fixture: re-raising, exit-code boundaries, narrow catches — fine."""

import sys


def careful(channel, stamp):
    try:
        channel.deliver(stamp)
    except ClockError:
        cleanup()
        raise  # re-raised: not swallowed
    try:
        channel.deliver(stamp)
    except ValueError:  # narrow, non-protocol: allowed even if trivial
        pass


def cli_main(run):
    try:
        return run()
    except ReproError as error:  # CLI boundary: converted to an exit code
        print(f"error: {error}", file=sys.stderr)
        return 2


def cleanup():
    return None
