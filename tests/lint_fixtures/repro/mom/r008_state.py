"""R008 fixture host: protocol state + guarded hook call sites.

This file itself is clean; it exists so the r008_* tracer fixtures in
``repro/obs/`` are reachable from a protocol module's hook call sites
(the way ``Channel`` calls ``self._tracer``).
"""

from typing import Optional


class R008Channel:
    _tracer: Optional["R008TracerBad"]
    _good_tracer: Optional["R008TracerGood"]
    _quiet_tracer: Optional["R008TracerNoqa"]

    def __init__(self) -> None:
        self.sent = 0
        self._tracer = None
        self._good_tracer = None
        self._quiet_tracer = None

    def transmit(self, mid: str) -> None:
        self.sent += 1
        if self._tracer is not None:
            self._tracer.on_send(self, mid)
        if self._good_tracer is not None:
            self._good_tracer.on_send(self, mid)
        if self._quiet_tracer is not None:
            self._quiet_tracer.on_send(self, mid)
