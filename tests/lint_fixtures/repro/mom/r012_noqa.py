"""R012 fixture: a known-leaky insert, suppressed."""


class R012Suppressed:
    def __init__(self, holdback) -> None:
        self._holdback = holdback

    def enqueue(self, envelope, item) -> None:
        self._holdback.add(envelope)  # noqa: R012
        try:
            self._process(envelope, item)
        except ValueError:
            return

    def _process(self, envelope, item) -> None:
        raise ValueError(envelope)
