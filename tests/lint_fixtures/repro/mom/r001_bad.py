"""R001 fixture: mutating clock internals outside repro/clocks (4 hits)."""


def corrupt(clock, item, stamp):
    clock._buf[0] = 7  # hit: subscript assignment
    stamp._log.append((0, 1))  # hit: mutating method call
    clock._shared = False  # hit: attribute assignment
    del item._image  # hit: delete
    value = clock._buf[0]  # reads are fine (the sanitizer reads buffers)
    return value
