"""R017 good twin: shard-scoped stream names (or sequential-only)."""

from multiprocessing import Process


def _r017_good_worker(conn, factory, shard):
    if shard is None:
        stream = factory.stream("network")  # sequential-only branch
    else:
        stream = factory.stream(f"network/shard{shard}")
    conn.send(("seeded", stream.random()))


def spawn_r017_good(conns, factory, shards):
    for conn, shard in zip(conns, shards):
        proc = Process(target=_r017_good_worker, args=(conn, factory, shard))
        proc.start()
