"""R011 fixture: writes that bypass the persistence API."""


class R011Recovery:
    def __init__(self, server) -> None:
        self._server = server

    def poke(self, key: str, value: int, store) -> None:
        self._server.store._data[key] = value  # direct cell write
        store.writes += 1  # forged write counter
        store._data.update({key: value})  # mutator on the data dict
