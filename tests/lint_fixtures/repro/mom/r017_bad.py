"""R017 fixture: constant stream names drawn inside shard workers."""

from multiprocessing import Process


def _r017_worker(conn, factory, shard_id):
    jitter = factory.stream("network")  # same stream in every worker
    conn.send(("seeded", shard_id, jitter.random()))


def spawn_r017(conns, factory):
    for shard_id, conn in enumerate(conns):
        proc = Process(target=_r017_worker, args=(conn, factory, shard_id))
        proc.start()
