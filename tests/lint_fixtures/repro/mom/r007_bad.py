"""R007 fixture: rng stream values flowing into protocol state."""

from repro.simulation.rng import RngFactory


class R007Domain:
    def __init__(self, rng: RngFactory) -> None:
        self._rng = rng
        self.delivered_at = 0.0
        self.noise = 0.0

    def deliver(self, mid: str) -> None:
        jitter = self._pick()
        self.delivered_at = jitter  # taint returned by a callee

    def _pick(self) -> float:
        return self._rng.stream("domain").random()

    def record(self, value: float) -> None:
        self.noise = value

    def sample(self) -> None:
        # taint passed into a parameter that reaches protocol state
        self.record(self._rng.stream("domain").random())
