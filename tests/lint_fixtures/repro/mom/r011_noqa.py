"""R011 fixture: a test-only backdoor write, suppressed."""


class R011Suppressed:
    def corrupt(self, store, key: str) -> None:
        store._data[key] = None  # noqa: R011
