"""R007 fixture: an acknowledged sink, suppressed with noqa."""

from repro.simulation.rng import RngFactory


class R007Suppressed:
    def __init__(self, rng: RngFactory) -> None:
        self._rng = rng
        self.jitter = 0.0

    def deliver(self, mid: str) -> None:
        self.jitter = self._rng.stream("domain").random()  # noqa: R007
