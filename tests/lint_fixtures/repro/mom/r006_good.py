"""R006 fixture: importing at or below your own layer is fine."""

from typing import TYPE_CHECKING

from repro.clocks.base import CausalClock  # mom (6) -> clocks (2): down
from repro.errors import ClockError  # mom (6) -> errors (0): down
from repro.mom.identifiers import AgentId  # same layer

if TYPE_CHECKING:
    from repro.bench.harness import ExperimentResult  # annotation-only: exempt


def use(result: "ExperimentResult") -> tuple:
    return CausalClock, ClockError, AgentId, result
