"""R003 fixture: hash-ordered iteration in mom/ (4 hits)."""


def fanout(servers, table):
    for server in set(servers):  # hit: bare set
        server.send()
    for key in table.keys():  # hit: keys() view
        table[key].flush()
    order = [item for item in {1, 2, 3}]  # hit: set literal in comprehension
    for entry in list({s for s in servers}):  # hit: list(set) doesn't help
        entry.poke()
    return order
