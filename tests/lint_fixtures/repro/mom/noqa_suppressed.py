"""noqa fixture: suppressions silence specific or all rules per line."""


def suppressed(clock, servers, sim, deadline):
    clock._buf[0] = 1  # noqa: R001
    clock._buf[1] = 2  # noqa
    for server in set(servers):  # noqa: R003, R004
        server.send()
    return sim.now == deadline  # noqa: R001,R004
