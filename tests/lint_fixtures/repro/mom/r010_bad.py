"""R010 fixture: commit transactions that can leak open."""


class R010Channel:
    def __init__(self) -> None:
        self._pending_commits = set()

    def fall_through(self, mid: str) -> None:
        self._pending_commits.add(mid)
        if self._ready(mid):
            self._pending_commits.discard(mid)
        # the not-ready path exits with the transaction still open

    def early_return(self, mid: str) -> None:
        self._pending_commits.add(mid)
        if not self._validate(mid):
            return  # leaks the open transaction
        self._pending_commits.discard(mid)

    def _ready(self, mid: str) -> bool:
        return True

    def _validate(self, mid: str) -> bool:
        return True
