"""R022 noqa twin: one rng-seeded core field is explicitly waived."""


class WaivedTaintClock(CausalClock):  # parsed-only: base resolves by name
    # R023: fixture variant, deliberately unregistered.
    protocol_exempt = "lint fixture, not a bootable protocol"

    def __init__(self, size: int, rng) -> None:
        self._row = [0] * size
        self.skew = rng.stream("clock").random()  # noqa: R022

    def can_deliver(self, stamp) -> bool:
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]
