"""R022 fixture: rng jitter leaking into a plug-in core's clock state.

Self-contained on purpose: baselines sits *below* the protocol package
in the layer order, so this fixture cannot import the shared core_defs
scaffolding.  The contract rules match the ``CausalClock`` base by
name — fixtures are parsed, never executed, so the bare name suffices.
"""


class TaintClock(CausalClock):  # parsed-only: base resolves by name
    # R023: fixture variant, deliberately unregistered.
    protocol_exempt = "lint fixture, not a bootable protocol"

    def __init__(self, size: int, rng) -> None:
        self._row = [0] * size
        jitter = rng.stream("clock").random()
        skew = jitter * 2.0
        self.skew = skew  # transitive taint into core state

    def can_deliver(self, stamp) -> bool:
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]
