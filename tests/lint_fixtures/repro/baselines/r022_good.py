"""R022 twin: randomness stays in the harness, outside core state."""


class CleanJitterClock(CausalClock):  # parsed-only: base resolves by name
    # R023: fixture variant, deliberately unregistered.
    protocol_exempt = "lint fixture, not a bootable protocol"

    def __init__(self, size: int) -> None:
        self._row = [0] * size
        self.skew = 0.0  # deterministic initial state

    def can_deliver(self, stamp) -> bool:
        return stamp.entries[stamp.sender] == self._row[stamp.sender] + 1

    def is_duplicate(self, stamp) -> bool:
        return stamp.entries[stamp.sender] <= self._row[stamp.sender]


def sample_latency(rng) -> float:
    # rng draws feeding the *network* model are fine — only core state
    # must stay deterministic
    draw = rng.stream("latency").random()
    return draw * 2.0
