"""R015 noqa twin: the unbumped rebind is explicitly waived."""


class R015WaivedClock:
    def __init__(self):
        self._log = []
        self._log_epoch = 0

    def reset(self):
        self._log = []  # noqa: R015
