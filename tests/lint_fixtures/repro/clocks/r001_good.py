"""R001 fixture: the same mutations are legal inside repro/clocks."""


class FakeClock:
    def bump(self):
        self._buf[0] = 7
        self._log.append((0, 1))
        self._shared = True
