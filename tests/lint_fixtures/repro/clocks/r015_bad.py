"""R015 fixture: change-log rebound without bumping the epoch."""


class R015Clock:
    def __init__(self, size):
        self._log = []
        self._log_epoch = 0
        self._size = size

    def compact(self, limit):
        if len(self._log) > limit:
            self._log = []  # no epoch write anywhere

    def snapshot_restore(self, entries):
        self._log = list(entries)  # epoch bumped only on one branch
        if entries:
            self._log_epoch += 1
