"""R006 fixture: clocks (layer 2) importing upward (3 hits)."""

import repro.mom.channel  # hit: clocks -> mom
from repro.bench.harness import run_broadcast  # hit: clocks -> bench
from repro import MessageBus  # hit: root aggregator from inside a layer


def use():
    return repro.mom.channel, run_broadcast, MessageBus
