"""R015 good twin: every rebinding of the log writes the epoch."""


class R015GoodClock:
    def __init__(self, size):
        self._log = []
        self._log_epoch = 0
        self._size = size

    def compact(self, limit):
        if len(self._log) > limit:
            self._log = []
            self._log_epoch += 1

    def record(self, entry):
        log = self._log
        log.append(entry)  # in-place append: identity preserved, exempt

    def swap(self, entries):
        self._log, self._log_epoch = list(entries), self._log_epoch + 1
