"""Unit tests for paths, chains, minimality, cycles and the Lemma-1
reduction (§4.2, Appendix B)."""

import pytest

from repro.causality import (
    Chain,
    Membership,
    Message,
    Trace,
    is_cycle,
    is_direct_path,
    is_minimal_path,
    is_path,
    reduce_to_direct_chain,
)
from repro.errors import TopologyError, TraceError


@pytest.fixture
def figure2_membership():
    """The paper's Figure 2 structure (servers S1..S8 as strings)."""
    return Membership(
        {
            "A": {"S1", "S2", "S3"},
            "B": {"S4", "S5"},
            "C": {"S7", "S8"},
            "D": {"S3", "S5", "S6", "S7"},
        }
    )


class TestMembership:
    def test_routers_are_multi_domain_processes(self, figure2_membership):
        assert sorted(figure2_membership.routers()) == ["S3", "S5", "S7"]

    def test_share_domain(self, figure2_membership):
        assert figure2_membership.share_domain("S1", "S3")
        assert not figure2_membership.share_domain("S1", "S8")

    def test_common_domains(self, figure2_membership):
        assert figure2_membership.common_domains("S3", "S5") == frozenset({"D"})

    def test_empty_domain_rejected(self):
        with pytest.raises(TopologyError):
            Membership({"A": set()})

    def test_unknown_domain_rejected(self, figure2_membership):
        with pytest.raises(TopologyError):
            figure2_membership.members("Z")


class TestPaths:
    def test_figure2_route_is_a_path(self, figure2_membership):
        assert is_path(["S1", "S3", "S7", "S8"], figure2_membership)

    def test_non_adjacent_hop_is_not_a_path(self, figure2_membership):
        assert not is_path(["S1", "S8"], figure2_membership)

    def test_empty_sequence_is_not_a_path(self, figure2_membership):
        assert not is_path([], figure2_membership)

    def test_direct_requires_distinct(self, figure2_membership):
        assert is_direct_path(["S1", "S3", "S7"], figure2_membership)
        assert not is_direct_path(["S1", "S3", "S1"], figure2_membership)

    def test_minimal_rejects_lingering(self, figure2_membership):
        # S1-S2-S3 lingers in A (S1 and S3 share A)
        assert not is_minimal_path(["S1", "S2", "S3"], figure2_membership)
        assert is_minimal_path(["S1", "S3", "S7", "S8"], figure2_membership)

    def test_figure2_has_no_cycles(self, figure2_membership):
        # spot check a few candidate paths
        assert not is_cycle(["S3", "S5", "S7"], figure2_membership)
        assert not is_cycle(["S1", "S3"], figure2_membership)

    def test_cycle_in_ring_membership(self):
        ring = Membership(
            {
                "d0": {"r0", "r2"},
                "d1": {"r0", "r1"},
                "d2": {"r1", "r2"},
            }
        )
        assert is_cycle(["r0", "r1", "r2"], ring)

    def test_all_in_one_domain_is_not_a_cycle(self):
        mem = Membership({"d0": {"a", "b", "c"}})
        assert not is_cycle(["a", "b", "c"], mem)


class TestChains:
    def test_endpoints_and_path(self):
        chain = Chain.of(
            Message(1, "S1", "S3"),
            Message(2, "S3", "S7"),
            Message(3, "S7", "S8"),
        )
        assert chain.source == "S1"
        assert chain.destination == "S8"
        assert chain.path() == ("S1", "S3", "S7", "S8")
        assert len(chain) == 3

    def test_broken_relay_rejected(self):
        with pytest.raises(TraceError):
            Chain.of(Message(1, "a", "b"), Message(2, "c", "d"))

    def test_empty_chain_rejected(self):
        with pytest.raises(TraceError):
            Chain(())

    def test_local_validity_in_trace(self):
        m1 = Message(1, "a", "b")
        m2 = Message(2, "b", "c")
        trace = Trace()
        trace.record_send(m1)
        trace.record_receive(m1)
        trace.record_send(m2)
        chain = Chain.of(m1, m2)
        assert chain.is_valid_in(trace)

    def test_local_invalidity_detected(self):
        """b sends m2 BEFORE receiving m1 — structurally a chain, but not
        valid in this trace."""
        m1 = Message(1, "a", "b")
        m2 = Message(2, "b", "c")
        trace = Trace()
        trace.record_send(m2)
        trace.record_send(m1)
        trace.record_receive(m1)
        chain = Chain.of(m1, m2)
        assert not chain.is_valid_in(trace)

    def test_minimality_against_membership(self, figure2_membership):
        chain = Chain.of(
            Message(1, "S1", "S3"),
            Message(2, "S3", "S7"),
            Message(3, "S7", "S8"),
        )
        assert chain.is_minimal(figure2_membership)


class TestLemma1Reduction:
    def build_trace(self, messages):
        """Record sends/receives in chain order (a correct simple trace)."""
        trace = Trace()
        for m in messages:
            trace.record_send(m)
            trace.record_receive(m)
        return trace

    def test_direct_chain_unchanged(self):
        m1, m2 = Message(1, "a", "b"), Message(2, "b", "c")
        trace = Trace()
        trace.record_send(m1)
        trace.record_receive(m1)
        trace.record_send(m2)
        trace.record_receive(m2)
        chain = Chain.of(m1, m2)
        assert reduce_to_direct_chain(chain, trace).messages == (m1, m2)

    def test_loop_through_intermediate_removed(self):
        """a → b → c → b → d reduces to a → b → d."""
        m1 = Message(1, "a", "b")
        m2 = Message(2, "b", "c")
        m3 = Message(3, "c", "b")
        m4 = Message(4, "b", "d")
        trace = Trace()
        for m in (m1, m2, m3, m4):
            trace.record_send(m)
            trace.record_receive(m)
        # interleave properly: b's history is recv m1, send m2, recv m3, send m4
        chain = Chain.of(m1, m2, m3, m4)
        reduced = reduce_to_direct_chain(chain, trace)
        assert reduced.source == "a"
        assert reduced.destination == "d"
        path = reduced.path()
        assert len(set(path)) == len(path)

    def test_source_repeat_trims_prefix(self):
        """a → b → a → c reduces to the tail a → c."""
        m1 = Message(1, "a", "b")
        m2 = Message(2, "b", "a")
        m3 = Message(3, "a", "c")
        trace = Trace()
        for m in (m1, m2, m3):
            trace.record_send(m)
            trace.record_receive(m)
        reduced = reduce_to_direct_chain(Chain.of(m1, m2, m3), trace)
        assert reduced.messages == (m3,)

    def test_same_endpoints_rejected(self):
        m1 = Message(1, "a", "b")
        m2 = Message(2, "b", "a")
        trace = Trace()
        for m in (m1, m2):
            trace.record_send(m)
            trace.record_receive(m)
        with pytest.raises(TraceError):
            reduce_to_direct_chain(Chain.of(m1, m2), trace)

    def test_lemma1_inequalities_hold(self):
        """m1 ≤p n1 and nL ≤q mk: the reduced chain starts no earlier and
        ends no later (here: the destination-side repeat case)."""
        m1 = Message(1, "a", "b")
        m2 = Message(2, "b", "d")
        m3 = Message(3, "d", "e")
        m4 = Message(4, "e", "d")
        trace = Trace()
        for m in (m1, m2, m3, m4):
            trace.record_send(m)
            trace.record_receive(m)
        # chain a→b→d→e→d: path repeats d; reduction should cut the d-e-d loop
        reduced = reduce_to_direct_chain(Chain.of(m1, m2, m3, m4), trace)
        assert reduced.source == "a"
        assert reduced.destination == "d"
        # first message unchanged => m1 ≤p n1 trivially holds
        assert reduced.messages[0] == m1
        # last message is m2, received by d before m4 => nL ≤q mk
        assert trace.locally_before("d", reduced.messages[-1], m4)
