"""Shard-runtime telemetry (``REPRO_SHARDMON``) and its read side.

The contract under test (docs/parallel.md): the merged payload keeps a
**deterministic** ``sim`` section — byte-identical across repeated runs
of the same scenario, the part ``tools/bench_gate.py`` bands — strictly
separated from the **non-deterministic** ``wallclock`` section, and a
monitored run stays bit-identical to a bare one. The worker-crash path
rides along: a shard worker that dies ships its flight record over the
pipe, and the re-raised error names the artifact.
"""

import json
import re

import pytest

from repro.errors import ConfigurationError
from repro.mom.agent import Agent, EchoAgent
from repro.mom.config import BusConfig
from repro.mom.parallel import ShardedBus, make_bus
from repro.mom.workloads import PingPongDriver
from repro.obs import install as obs_install
from repro.obs import is_installed as obs_is_installed
from repro.obs import shardmon
from repro.obs import uninstall as obs_uninstall
from repro.obs.__main__ import main
from repro.simulation.telemetry import FORMAT, sync_overhead_fraction
from repro.topology import builders


@pytest.fixture(autouse=True)
def config_controls_parallel(monkeypatch):
    """Pin the execution mode via the config field (the CI parallel job
    sets ``REPRO_PARALLEL`` suite-wide) and keep telemetry on."""
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_SHARDMON", raising=False)


def _sharded_run(*, seed=0, rounds=10, workers=4, traced=False):
    """A routed ping-pong on the sharded kernel; returns the bus."""
    config = BusConfig(
        topology=builders.bus(12, 4), seed=seed,
        parallel="auto", workers=workers,
    )
    # never uninstall a hook this test did not install: a REPRO_TRACE=1
    # suite run owns the global tracer hook, and removing it here would
    # silently untrace every test that follows
    installed_here = traced and not obs_is_installed()
    if installed_here:
        obs_install()
    try:
        bus = make_bus(config)
        assert isinstance(bus, ShardedBus)
        echo_id = bus.deploy(EchoAgent(), 9)
        driver = PingPongDriver(rounds)
        driver.bind(echo_id)
        bus.deploy(driver, 0)
        bus.start()
        bus.run_until_idle()
    finally:
        if installed_here:
            obs_uninstall()
    return bus


@pytest.fixture(scope="module")
def payload():
    # module-scoped fixtures are set up before the function-scoped
    # autouse env cleanup, so pin the env here too (a suite-level
    # REPRO_PARALLEL=2 would otherwise change the shard plan)
    with pytest.MonkeyPatch.context() as mp:
        mp.delenv("REPRO_PARALLEL", raising=False)
        mp.delenv("REPRO_SHARDMON", raising=False)
        telemetry = _sharded_run().shard_telemetry()
    assert telemetry is not None
    return telemetry


class TestPayload:
    def test_shape_and_sections(self, payload):
        assert payload["format"] == FORMAT
        workers = payload["workers"]
        assert workers >= 2
        assert payload["lookahead_ms"] > 0
        sim = payload["sim"]
        assert sim["grants"] > 0
        assert sim["events_total"] > 0
        assert len(sim["events_per_shard"]) == workers
        assert len(sim["arrivals_per_shard"]) == workers
        assert len(sim["packets_out_per_shard"]) == workers
        assert sum(sim["events_per_shard"]) == sim["events_total"]
        # routed ping-pong must cross shard borders
        assert sim["cross_shard"]["messages"] > 0
        assert sim["cross_shard"]["bytes"] > 0
        for pair, stats in sim["cross_shard"]["pairs"].items():
            src, dst = pair.split("->")
            assert src != dst
            assert stats["messages"] > 0
        width = sim["window_width_ms"]
        assert width["count"] == sim["grants"]
        assert 0 < width["min"] <= width["max"]
        # every granted window is at most the lookahead wide (float
        # noise aside, which the recorded max itself exposes)
        assert width["max"] == pytest.approx(payload["lookahead_ms"])

    def test_wallclock_section_separated(self, payload):
        wall = payload["wallclock"]
        assert len(wall["per_shard"]) == payload["workers"]
        for row in wall["per_shard"]:
            assert row["compute_s"] >= 0.0
            assert row["blocked_on_grant_s"] >= 0.0
            assert row["pipe_io_s"] >= 0.0
        assert 0.0 <= wall["sync_overhead_fraction"] <= 1.0
        # no wall-clock key leaks into the gated sim section
        assert not any(key.endswith("_s") for key in payload["sim"])

    def test_grant_timeline_covers_the_run(self, payload):
        timeline = payload["sim"]["grant_timeline"]
        assert timeline
        assert len(timeline) <= payload["sim"]["grants"]
        for (lbts, bound, fired) in timeline:
            assert bound > lbts
            assert fired >= 0
        # rounds are granted in nondecreasing LBTS order
        starts = [row[0] for row in timeline]
        assert starts == sorted(starts)

    def test_sim_section_is_byte_deterministic(self, payload):
        again = _sharded_run().shard_telemetry()
        assert json.dumps(again["sim"], sort_keys=True) == json.dumps(
            payload["sim"], sort_keys=True
        )

    def test_kill_switch_disables_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDMON", "0")
        bus = _sharded_run(rounds=3)
        assert bus.shard_telemetry() is None

    def test_sync_overhead_fraction(self):
        assert sync_overhead_fraction([]) == 0.0
        dumps = [
            {"wallclock": {"compute_s": 3.0, "blocked_on_grant_s": 1.0,
                           "pipe_io_s": 0.0}},
            {"wallclock": {"compute_s": 3.0, "blocked_on_grant_s": 0.0,
                           "pipe_io_s": 1.0}},
        ]
        assert sync_overhead_fraction(dumps) == pytest.approx(0.25)
        idle = [{"wallclock": {"compute_s": 0.0}}]
        assert sync_overhead_fraction(idle) == 0.0


class TestRenderAndLoad:
    def test_render_keeps_the_sections_apart(self, payload):
        report = shardmon.render(payload)
        assert "  sim observables (deterministic, gated):" in report
        assert "  wallclock (non-deterministic, unguarded):" in report
        assert report.index("sim observables") < report.index("wallclock")
        assert "grant rounds" in report
        assert "messages, " in report and "bytes on the worker pipes" in report
        assert "rounds retained" in report
        assert "sync overhead" in report
        assert f"shard runtime ({FORMAT})" in report

    def test_render_rejects_foreign_payloads(self):
        with pytest.raises(ConfigurationError):
            shardmon.render({"format": "something/else"})

    def test_load_round_trips(self, payload, tmp_path):
        path = tmp_path / "telemetry.json"
        path.write_text(json.dumps(payload))
        assert shardmon.load(str(path)) == json.loads(json.dumps(payload))

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ConfigurationError):
            shardmon.load(str(path))


class TestCli:
    def test_shards_from_file(self, payload, tmp_path, capsys):
        path = tmp_path / "telemetry.json"
        path.write_text(json.dumps(payload))
        assert main(["shards", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sim observables (deterministic, gated):" in out
        assert "wallclock (non-deterministic, unguarded):" in out

    def test_shards_needs_a_source(self, capsys):
        assert main(["shards"]) == 2
        assert "telemetry JSON path" in capsys.readouterr().err

    def test_shards_demo(self, monkeypatch, capsys):
        # the demo mutates REPRO_PARALLEL/REPRO_SHARDMON directly;
        # registering them with monkeypatch restores them afterwards
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert main(
            ["shards", "--demo", "--servers", "10", "--domain-size", "4",
             "--rounds", "3", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        assert "sim observables (deterministic, gated):" in out


class TestMergedTraceDump:
    def test_sequential_shaped_dump_from_sharded_bus(self):
        bus = _sharded_run(traced=True)
        dump = shardmon.merged_trace_dump(bus)
        events = dump.events
        assert events
        # globally re-sequenced: seq is the (t, shard, seq) order
        assert [e.seq for e in events] == list(range(len(events)))
        assert [e.t for e in events] == sorted(e.t for e in events)
        assert dump.meta["now"] == bus.sim.now
        assert dump.meta["server_ids"] == sorted(
            bus.config.topology.servers
        )
        assert dump.histograms, "worker tracers must ship histograms"

    def test_untraced_bus_is_rejected(self):
        # a REPRO_TRACE=1 suite run traces every worker bus; force the
        # untraced case either way
        was_installed = obs_is_installed()
        if was_installed:
            obs_uninstall()
        try:
            bus = _sharded_run(rounds=3)
        finally:
            if was_installed:
                obs_install()
        with pytest.raises(ConfigurationError):
            shardmon.merged_trace_dump(bus)


class _Exploder(Agent):
    """Dies on its first delivery — inside a forked shard worker."""

    def react(self, ctx, sender, payload):
        raise RuntimeError("exploder died on purpose")


class TestWorkerCrashFlightRecord:
    def test_error_names_the_artifact(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        config = BusConfig(
            topology=builders.bus(12, 4), seed=0,
            parallel="auto", workers=2,
        )
        installed_here = not obs_is_installed()
        if installed_here:
            obs_install()
        try:
            bus = make_bus(config)
            assert isinstance(bus, ShardedBus)
            victim = bus.deploy(_Exploder(), 9)
            driver = PingPongDriver(3)
            driver.bind(victim)
            bus.deploy(driver, 0)
            bus.start()
            with pytest.raises(RuntimeError) as excinfo:
                bus.run_until_idle()
        finally:
            if installed_here:
                obs_uninstall()
            bus.close()
        message = str(excinfo.value)
        assert "exploder died on purpose" in message
        match = re.search(r"\[flight record: (.+?)\]", message)
        assert match, f"error must name the flight record: {message!r}"
        path = match.group(1)
        assert bus.flight_records == [path]
        assert str(tmp_path) in path
        rows = [
            json.loads(line)
            for line in open(f"{path}/events.jsonl")
        ]
        kinds = {row["kind"] for row in rows if row["record"] == "event"}
        # the worker's ring holds its own shard's events only; the one
        # certainty is the reaction the crash interrupted
        assert "reaction_start" in kinds, (
            "the ring tail must reach the artifact"
        )

    def test_autodump_kill_switch(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_OBS_AUTODUMP", "0")
        config = BusConfig(
            topology=builders.bus(12, 4), seed=0,
            parallel="auto", workers=2,
        )
        installed_here = not obs_is_installed()
        if installed_here:
            obs_install()
        try:
            bus = make_bus(config)
            victim = bus.deploy(_Exploder(), 9)
            driver = PingPongDriver(3)
            driver.bind(victim)
            bus.deploy(driver, 0)
            bus.start()
            with pytest.raises(RuntimeError) as excinfo:
                bus.run_until_idle()
        finally:
            if installed_here:
                obs_uninstall()
            bus.close()
        assert "[flight record:" not in str(excinfo.value)
        assert bus.flight_records == []
