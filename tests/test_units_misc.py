"""Unit tests for the smaller supporting modules: identifiers, payloads,
config, the agent base class, seeded RNG streams, and counterexample
edge cases."""

import pytest

from repro.causality import Membership, find_cycle_path, build_violation_trace
from repro.errors import (
    CausalityViolationError,
    ClockError,
    ConfigurationError,
    CyclicDomainGraphError,
    ReproError,
    TopologyError,
    TraceError,
)
from repro.mom.agent import Agent, EchoAgent, FunctionAgent, ReactionContext
from repro.mom.config import BusConfig
from repro.mom.identifiers import AgentId
from repro.mom.payloads import ChannelAck, Envelope, Notification
from repro.clocks.matrix import MatrixClock
from repro.simulation.rng import RngFactory
from repro.topology import single_domain
from repro.errors import AgentError


class TestAgentId:
    def test_ordering_and_equality(self):
        assert AgentId(0, 1) == AgentId(0, 1)
        assert AgentId(0, 1) < AgentId(1, 0)
        assert AgentId(2, 0) > AgentId(1, 9)

    def test_repr_is_compact(self):
        assert repr(AgentId(3, 7)) == "A3.7"

    def test_negative_components_rejected(self):
        with pytest.raises(ConfigurationError):
            AgentId(-1, 0)
        with pytest.raises(ConfigurationError):
            AgentId(0, -1)

    def test_hashable(self):
        assert len({AgentId(0, 0), AgentId(0, 0), AgentId(0, 1)}) == 2


class TestPayloads:
    def make_notification(self):
        return Notification(
            nid=1,
            sender=AgentId(0, 0),
            target=AgentId(2, 0),
            payload="data",
            sent_at=5.0,
        )

    def test_dest_server_derived_from_target(self):
        assert self.make_notification().dest_server == 2

    def test_envelope_final_dest_and_hop_mid(self):
        clock = MatrixClock(3, 0)
        stamp = clock.prepare_send(1)
        envelope = Envelope(
            notification=self.make_notification(),
            src_server=0,
            dst_server=1,
            domain_id="D0",
            stamp=stamp,
            hop_seq=9,
        )
        assert envelope.final_dest == 2
        assert envelope.hop_mid() == ("hop", 0, 9)

    def test_channel_ack_is_value_like(self):
        assert ChannelAck(3) == ChannelAck(3)


class TestBusConfig:
    def test_unknown_clock_rejected(self):
        with pytest.raises(ConfigurationError, match="clock"):
            BusConfig(topology=single_domain(2), clock_algorithm="quantum")

    def test_bad_loss_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            BusConfig(topology=single_domain(2), loss_rate=1.0)

    def test_clock_cls_resolution(self):
        from repro.clocks import MatrixClock, UpdatesClock

        assert BusConfig(topology=single_domain(2)).clock_cls is MatrixClock
        assert (
            BusConfig(
                topology=single_domain(2), clock_algorithm="updates"
            ).clock_cls
            is UpdatesClock
        )

    def test_default_latency_model_uses_cost_model(self):
        config = BusConfig(topology=single_domain(2))
        model = config.latency_model()
        import random

        assert model.sample(random.Random(0)) == config.cost_model.latency_ms


class TestAgentBase:
    def test_agent_id_before_deploy_rejected(self):
        agent = EchoAgent()
        with pytest.raises(AgentError):
            agent.agent_id

    def test_default_snapshot_excludes_identity(self):
        agent = EchoAgent()
        agent._deployed(AgentId(0, 0))
        agent.echoed = 5
        snapshot = agent.snapshot()
        assert snapshot == {"echoed": 5}

    def test_restore_roundtrip(self):
        agent = EchoAgent()
        agent.echoed = 7
        fresh = EchoAgent()
        fresh.restore(agent.snapshot())
        assert fresh.echoed == 7

    def test_snapshot_is_deep(self):
        class Holder(Agent):
            def __init__(self):
                super().__init__()
                self.items = []

            def react(self, ctx, sender, payload):
                pass

        agent = Holder()
        snapshot = agent.snapshot()
        agent.items.append("later")
        assert snapshot == {"items": []}

    def test_function_agent_has_trivial_snapshot(self):
        agent = FunctionAgent(lambda ctx, s, p: None)
        assert agent.snapshot() is None
        agent.restore(None)  # no-op

    def test_reaction_context_rejects_bad_target(self):
        ctx = ReactionContext(AgentId(0, 0), now=0.0)
        with pytest.raises(AgentError):
            ctx.send("somewhere", 1)
        with pytest.raises(AgentError):
            ctx.send_after(1.0, 42, 1)

    def test_reaction_context_buffers(self):
        ctx = ReactionContext(AgentId(0, 0), now=3.0)
        ctx.send(AgentId(1, 0), "a")
        ctx.send_after(5.0, AgentId(1, 0), "b")
        assert ctx.outbox == [(AgentId(1, 0), "a")]
        assert ctx.timers == [(5.0, AgentId(1, 0), "b")]
        assert ctx.now == 3.0
        assert ctx.my_id == AgentId(0, 0)


class TestRngFactory:
    def test_streams_are_deterministic(self):
        a = RngFactory(42).stream("network")
        b = RngFactory(42).stream("network")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        factory = RngFactory(42)
        net = factory.stream("network")
        fail = factory.stream("failures")
        assert [net.random() for _ in range(3)] != [
            fail.random() for _ in range(3)
        ]

    def test_same_name_returns_same_stream(self):
        factory = RngFactory(1)
        assert factory.stream("x") is factory.stream("x")

    def test_different_seeds_diverge(self):
        a = RngFactory(1).stream("s")
        b = RngFactory(2).stream("s")
        assert a.random() != b.random()


class TestCounterexampleEdges:
    def test_single_domain_has_no_cycle(self):
        membership = Membership({"only": {"a", "b", "c"}})
        assert find_cycle_path(membership) is None

    def test_shared_hub_process_is_not_a_cycle(self):
        """One process in all three domains makes the domain graph a
        triangle, but no §4.2 cycle path exists through a single body."""
        membership = Membership(
            {"d0": {"hub", "a"}, "d1": {"hub", "b"}, "d2": {"hub", "c"}}
        )
        assert find_cycle_path(membership) is None

    def test_non_cycle_path_rejected_by_builder(self):
        membership = Membership({"d0": {"a", "b"}, "d1": {"b", "c"}})
        with pytest.raises(TopologyError):
            build_violation_trace(("a", "b", "c"), membership)


class TestErrorHierarchy:
    def test_specific_errors_are_repro_errors(self):
        for error_cls in (
            ConfigurationError,
            TopologyError,
            ClockError,
            TraceError,
            AgentError,
        ):
            assert issubclass(error_cls, ReproError)

    def test_cyclic_error_carries_cycle(self):
        error = CyclicDomainGraphError(["a", "b", "c"])
        assert error.cycle == ["a", "b", "c"]
        assert "a -> b -> c" in str(error)

    def test_violation_error_carries_witness(self):
        error = CausalityViolationError("m1 before m2")
        assert error.witness == "m1 before m2"
