"""The CausalCore plug-in boundary: registry, delegation, codecs, resize.

The simulation-level guarantee (factoring the protocol behind the core
changed no result) is pinned by the differential and bench tests; this
file covers the contract surface itself.
"""

import pickle

import pytest

from repro.baselines.causal_histories import HistoryClock
from repro.baselines.local_fifo import FifoClock
from repro.clocks.matrix import MatrixClock
from repro.errors import ConfigurationError, ProtocolError
from repro.mom import BusConfig
from repro.mom import config as mom_config
from repro.protocol import (
    AdHocCore,
    CausalCore,
    core_names,
    get_core,
    has_core,
    register_core,
    registered_cores,
)
from repro.protocol.cores import MatrixCore
from repro.topology import single_domain

ALL_CORE_NAMES = ["matrix", "updates", "histories", "fifo"]


class TestRegistry:
    def test_builtin_cores_are_registered(self):
        assert core_names() == sorted(ALL_CORE_NAMES)
        for name in ALL_CORE_NAMES:
            assert has_core(name)
            assert get_core(name).name == name

    def test_registered_cores_in_name_order(self):
        cores = registered_cores()
        assert [c.name for c in cores] == sorted(ALL_CORE_NAMES)
        assert all(isinstance(c, CausalCore) for c in cores)

    def test_unknown_name_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="no causal core"):
            get_core("nosuch")

    def test_reregistering_same_class_is_idempotent(self):
        before = get_core("matrix")
        register_core(MatrixCore())
        assert type(get_core("matrix")) is type(before)

    def test_conflicting_class_for_taken_name_raises(self):
        class Impostor(MatrixCore):
            name = "matrix"

        with pytest.raises(ProtocolError, match="already registered"):
            register_core(Impostor())

    def test_only_fifo_is_non_causal(self):
        assert not get_core("fifo").causal
        for name in ("matrix", "updates", "histories"):
            assert get_core(name).causal


class TestDelegation:
    """DelegatingCore routes every decision to the clock unchanged."""

    @pytest.mark.parametrize("name", ALL_CORE_NAMES)
    def test_create_clock_builds_the_declared_class(self, name):
        core = get_core(name)
        clock = core.create_clock(3, 1)
        assert isinstance(clock, core.clock_cls)
        assert clock.size == 3
        assert clock.owner == 1

    @pytest.mark.parametrize("name", ALL_CORE_NAMES)
    def test_decisions_match_direct_clock_calls(self, name):
        core = get_core(name)
        sender = core.create_clock(2, 0)
        shadow = core.create_clock(2, 0)
        receiver = core.create_clock(2, 1)
        mirror = core.create_clock(2, 1)

        stamp = core.stamp(sender, 1)
        direct = shadow.prepare_send(1)
        assert isinstance(stamp, core.stamp_cls)

        assert core.deliverable(receiver, stamp) == mirror.can_deliver(direct)
        assert core.duplicate(receiver, stamp) == mirror.is_duplicate(direct)
        core.merge(receiver, stamp)
        mirror.deliver(direct)
        assert core.duplicate(receiver, stamp)
        assert mirror.is_duplicate(direct)

    def test_fifo_ordering_through_the_core(self):
        core = get_core("matrix")
        sender = core.create_clock(2, 0)
        receiver = core.create_clock(2, 1)
        first = core.stamp(sender, 1)
        second = core.stamp(sender, 1)
        assert core.deliverable(receiver, first)
        assert not core.deliverable(receiver, second)
        core.merge(receiver, first)
        assert core.deliverable(receiver, second)

    def test_holdback_key_and_next_expected_defaults(self):
        core = get_core("matrix")
        sender = core.create_clock(2, 0)
        receiver = core.create_clock(2, 1)
        stamp = core.stamp(sender, 1)
        assert core.holdback_key(stamp) == (0, 1)
        assert core.next_expected(receiver, 0) == 1
        core.merge(receiver, stamp)
        assert core.next_expected(receiver, 0) == 2


class TestWireCodec:
    @pytest.mark.parametrize("name", ALL_CORE_NAMES)
    def test_round_trip_preserves_protocol_decisions(self, name):
        core = get_core(name)
        sender = core.create_clock(3, 0)
        stamps = [core.stamp(sender, 1) for _ in range(2)]
        original = core.create_clock(3, 1)
        decoded_side = core.create_clock(3, 1)
        for stamp in stamps:
            payload = core.encode_stamp(stamp)
            # The wire form must be a plain picklable tuple.
            assert isinstance(payload, tuple)
            assert pickle.loads(pickle.dumps(payload)) == payload
            decoded = core.decode_stamp(payload)
            assert isinstance(decoded, core.stamp_cls)
            assert decoded.sender == stamp.sender
            assert decoded.dest == stamp.dest
            assert core.deliverable(original, stamp) == core.deliverable(
                decoded_side, decoded
            )
            if core.deliverable(original, stamp):
                core.merge(original, stamp)
                core.merge(decoded_side, decoded)
            assert core.duplicate(original, stamp) == core.duplicate(
                decoded_side, decoded
            )

    def test_re_encoding_a_decoded_stamp_is_stable(self):
        for name in ALL_CORE_NAMES:
            core = get_core(name)
            sender = core.create_clock(2, 0)
            payload = core.encode_stamp(core.stamp(sender, 1))
            assert core.encode_stamp(core.decode_stamp(payload)) == payload

    def test_matrix_codec_rejects_truncated_payload(self):
        core = get_core("matrix")
        sender = core.create_clock(2, 0)
        sender_s, dest, size, cells = core.encode_stamp(core.stamp(sender, 1))
        with pytest.raises(ProtocolError, match="cells"):
            core.decode_stamp((sender_s, dest, size, cells[:-1]))

    def test_codec_rejects_foreign_stamp(self):
        matrix = get_core("matrix")
        fifo_stamp = get_core("fifo").create_clock(2, 0).prepare_send(1)
        with pytest.raises(ProtocolError, match="expected MatrixStamp"):
            matrix.encode_stamp(fifo_stamp)


class TestResize:
    def test_matrix_core_grows_preserving_knowledge(self):
        core = get_core("matrix")
        clock = core.create_clock(2, 0)
        core.merge(core.create_clock(2, 1), core.stamp(clock, 1))
        grown = core.resize(clock, 4)
        assert isinstance(grown, MatrixClock)
        assert grown.size == 4
        assert grown.owner == 0
        assert grown.cell(0, 1) == clock.cell(0, 1)
        assert grown.cell(3, 3) == 0

    def test_matrix_core_resize_rejects_foreign_clock(self):
        with pytest.raises(ProtocolError, match="MatrixClock"):
            get_core("matrix").resize(FifoClock(2, 0), 4)

    @pytest.mark.parametrize("name", ["updates", "histories", "fifo"])
    def test_cores_without_a_growth_story_raise(self, name):
        core = get_core(name)
        clock = core.create_clock(2, 0)
        with pytest.raises(ProtocolError, match="does not support"):
            core.resize(clock, 4)


class TestAdHocCore:
    def test_delegates_to_the_wrapped_clock(self):
        core = AdHocCore("history-adhoc", HistoryClock)
        sender = core.create_clock(2, 0)
        receiver = core.create_clock(2, 1)
        stamp = core.stamp(sender, 1)
        assert core.deliverable(receiver, stamp)
        core.merge(receiver, stamp)
        assert core.duplicate(receiver, stamp)

    def test_has_no_wire_codec(self):
        core = AdHocCore("history-adhoc", HistoryClock)
        stamp = core.stamp(core.create_clock(2, 0), 1)
        with pytest.raises(ProtocolError, match="no wire codec"):
            core.encode_stamp(stamp)
        with pytest.raises(ProtocolError, match="no wire codec"):
            core.decode_stamp((0, 1, 1))


class TestBusConfigResolution:
    def test_registered_core_is_used_directly(self):
        config = BusConfig(topology=single_domain(2))
        assert config.core is get_core("matrix")
        assert config.clock_cls is MatrixClock

    def test_core_only_algorithms_resolve_without_clocks_entry(self):
        config = BusConfig(
            topology=single_domain(2), clock_algorithm="histories"
        )
        assert "histories" not in mom_config._CLOCKS
        assert config.core is get_core("histories")

    def test_unknown_algorithm_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown clock"):
            BusConfig(topology=single_domain(2), clock_algorithm="nosuch")

    def test_clocks_table_override_wraps_in_adhoc_core(self):
        mom_config._CLOCKS["override-demo"] = HistoryClock
        try:
            config = BusConfig(
                topology=single_domain(2), clock_algorithm="override-demo"
            )
            core = config.core
            assert isinstance(core, AdHocCore)
            assert core.clock_cls is HistoryClock
        finally:
            del mom_config._CLOCKS["override-demo"]

    def test_matching_clocks_entry_prefers_the_registered_core(self):
        # "matrix" sits in _CLOCKS *and* the registry with the same clock
        # class: the first-class core must win over the ad-hoc wrapper.
        config = BusConfig(topology=single_domain(2))
        assert not isinstance(config.core, AdHocCore)
