"""Unit tests for the whole-program analysis engine: CFG construction
(try/finally, loop back-edges, dominators, exception-path queries),
the dataflow framework (reaching definitions, non-None must-facts),
and the call graph (resolution, SCCs, effect summaries)."""

from __future__ import annotations

import ast

from repro.analysis.callgraph import ModuleInfo, Project
from repro.analysis.cfg import ENTRY, EXC, EXIT, RAISE, build_cfg
from repro.analysis.dataflow import (
    expr_chain,
    non_none_facts,
    reaching_definitions,
)
from repro.analysis.effects import EffectEngine


def cfg_of(source: str):
    tree = ast.parse(source)
    func = tree.body[0]
    return build_cfg(func)


def node_for(graph, needle: str):
    """The CFG node whose statement's source line contains ``needle``."""
    for index, stmt in graph.statements():
        if needle in ast.unparse(stmt).splitlines()[0]:
            return index
    raise AssertionError(f"no statement matching {needle!r}")


class TestCfgShapes:
    def test_straight_line(self):
        graph = cfg_of("def f():\n    a = 1\n    b = 2\n")
        a, b = node_for(graph, "a = 1"), node_for(graph, "b = 2")
        assert (b, "normal") in graph.succs[a]
        assert (EXIT, "normal") in graph.succs[b]
        assert graph.back_edges == set()

    def test_branch_edges_are_labelled(self):
        graph = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
        )
        test = node_for(graph, "if x")
        labels = {label for _, label in graph.succs[test]}
        assert {"true", "false"} <= labels

    def test_while_loop_has_a_back_edge(self):
        graph = cfg_of("def f(n):\n    while n:\n        n -= 1\n")
        header = node_for(graph, "while n")
        body = node_for(graph, "n -= 1")
        assert (body, header) in graph.back_edges
        assert (EXIT, "false") in graph.succs[header]

    def test_for_loop_back_edge_and_continue(self):
        graph = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            continue\n"
            "        use(x)\n"
        )
        header = node_for(graph, "for x in xs")
        cont = node_for(graph, "continue")
        assert (cont, header) in graph.back_edges

    def test_break_exits_the_loop(self):
        graph = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        break\n"
            "    done()\n"
        )
        brk = node_for(graph, "break")
        done = node_for(graph, "done()")
        assert (done, "normal") in graph.succs[brk]

    def test_calls_get_exception_edges(self):
        graph = cfg_of("def f():\n    g()\n")
        call = node_for(graph, "g()")
        assert (RAISE, EXC) in graph.succs[call]

    def test_except_handler_receives_exc_edge(self):
        graph = cfg_of(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        h()\n"
        )
        call = node_for(graph, "g()")
        handler_targets = {
            target for target, label in graph.succs[call] if label == EXC
        }
        handler = node_for(graph, "except ValueError")
        assert handler in handler_targets
        assert (RAISE, EXC) in graph.succs[call]  # the type may not match

    def test_finally_runs_on_normal_and_exception_paths(self):
        graph = cfg_of(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        call = node_for(graph, "g()")
        cleanup = node_for(graph, "cleanup()")
        # the exception edge from g() lands on the finally block...
        exc_targets = {t for t, label in graph.succs[call] if label == EXC}
        finally_entry = next(
            node.index for node in graph.nodes if node.kind == "finally"
        )
        assert finally_entry in exc_targets
        # ...and the finally body continues to both EXIT and RAISE
        assert (EXIT, "normal") in graph.succs[cleanup]
        assert (RAISE, "normal") in graph.succs[cleanup]

    def test_return_through_finally(self):
        graph = cfg_of(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        ret = node_for(graph, "return 1")
        cleanup = node_for(graph, "cleanup()")
        finally_entry = next(
            node.index for node in graph.nodes if node.kind == "finally"
        )
        assert (finally_entry, "normal") in graph.succs[ret]
        assert (EXIT, "normal") in graph.succs[cleanup]

    def test_dominators(self):
        graph = cfg_of(
            "def f(x):\n"
            "    a = 1\n"
            "    if x:\n"
            "        b = 2\n"
            "    c = 3\n"
        )
        dom = graph.dominators()
        a = node_for(graph, "a = 1")
        b = node_for(graph, "b = 2")
        c = node_for(graph, "c = 3")
        assert a in dom[c] and a in dom[b]
        assert b not in dom[c]
        assert ENTRY in dom[c]

    def test_reaches_exit_without_blockers(self):
        graph = cfg_of(
            "def f(x):\n"
            "    begin()\n"
            "    if x:\n"
            "        end()\n"
        )
        begin = node_for(graph, "begin()")
        end = node_for(graph, "end()")
        assert graph.reaches_exit_without(begin, {end})
        graph2 = cfg_of("def f():\n    begin()\n    end()\n")
        begin2 = node_for(graph2, "begin()")
        end2 = node_for(graph2, "end()")
        assert not graph2.reaches_exit_without(begin2, {end2})

    def test_reaches_exit_requires_exception_edge(self):
        graph = cfg_of(
            "def f():\n"
            "    begin()\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        pass\n"
            "    done()\n"
        )
        begin = node_for(graph, "begin()")
        # normal path exists either way; the exception path goes through
        # the handler, so requiring an exc edge still succeeds...
        assert graph.reaches_exit_without(begin, set(), require_exc_edge=True)
        # ...but not when the handler is a blocker
        handler = node_for(graph, "except ValueError")
        blocked = {handler, node_for(graph, "pass")}
        assert not graph.reaches_exit_without(
            begin, blocked, require_exc_edge=True
        )


class TestDataflow:
    def test_expr_chain(self):
        expr = ast.parse("a.b.c", mode="eval").body
        assert expr_chain(expr) == "a.b.c"
        call = ast.parse("a.b()", mode="eval").body
        assert expr_chain(call) is None

    def test_reaching_definitions_join_at_merge(self):
        graph = cfg_of(
            "def f(x):\n"
            "    a = 1\n"
            "    if x:\n"
            "        a = 2\n"
            "    use(a)\n"
        )
        reaching = reaching_definitions(graph)
        use = node_for(graph, "use(a)")
        defs_of_a = {site for name, site in reaching[use] if name == "a"}
        assert defs_of_a == {
            node_for(graph, "a = 1"),
            node_for(graph, "a = 2"),
        }

    def test_loop_back_edge_feeds_reaching_defs(self):
        graph = cfg_of(
            "def f(n):\n"
            "    i = 0\n"
            "    while n:\n"
            "        i = i + 1\n"
            "    use(i)\n"
        )
        reaching = reaching_definitions(graph)
        header = node_for(graph, "while n")
        defs_of_i = {site for name, site in reaching[header] if name == "i"}
        assert defs_of_i == {
            node_for(graph, "i = 0"),
            node_for(graph, "i = i + 1"),
        }

    def test_non_none_facts_on_true_branch(self):
        graph = cfg_of(
            "def f(self):\n"
            "    if self.t is not None:\n"
            "        self.t.go()\n"
            "    self.t.stop()\n"
        )
        facts = non_none_facts(graph)
        assert "self.t" in facts[node_for(graph, "self.t.go()")]
        assert "self.t" not in facts[node_for(graph, "self.t.stop()")]

    def test_early_return_guard(self):
        graph = cfg_of(
            "def f(self):\n"
            "    if self.t is None:\n"
            "        return\n"
            "    self.t.go()\n"
        )
        facts = non_none_facts(graph)
        assert "self.t" in facts[node_for(graph, "self.t.go()")]

    def test_rebinding_kills_the_fact(self):
        graph = cfg_of(
            "def f(self):\n"
            "    if self.t is not None:\n"
            "        self.t = fresh()\n"
            "        self.t.go()\n"
        )
        facts = non_none_facts(graph)
        assert "self.t" not in facts[node_for(graph, "self.t.go()")]

    def test_merge_is_intersection(self):
        graph = cfg_of(
            "def f(self, fast):\n"
            "    if fast:\n"
            "        if self.t is None:\n"
            "            return\n"
            "    self.t.go()\n"
        )
        facts = non_none_facts(graph)
        assert "self.t" not in facts[node_for(graph, "self.t.go()")]


def project_of(**sources: str) -> Project:
    modules = []
    for dotted, source in sorted(sources.items()):
        module = dotted.replace("_", ".")
        modules.append(
            ModuleInfo(
                module=module,
                path=module.replace(".", "/") + ".py",
                tree=ast.parse(source),
                source=source,
            )
        )
    return Project(modules)


class TestCallGraph:
    def test_method_resolution_via_annotations(self):
        project = project_of(
            **{
                "repro_mom_a": (
                    "class Channel:\n"
                    "    def send(self):\n"
                    "        self.stamp()\n"
                    "    def stamp(self):\n"
                    "        pass\n"
                )
            }
        )
        edges = project.call_edges()
        assert edges["repro.mom.a.Channel.send"] == ["repro.mom.a.Channel.stamp"]

    def test_constructor_assignment_types_attributes(self):
        project = project_of(
            **{
                "repro_mom_a": (
                    "class Helper:\n"
                    "    def work(self):\n"
                    "        pass\n"
                    "class Owner:\n"
                    "    def __init__(self):\n"
                    "        self.helper = Helper()\n"
                    "    def run(self):\n"
                    "        self.helper.work()\n"
                )
            }
        )
        edges = project.call_edges()
        assert "repro.mom.a.Helper.work" in edges["repro.mom.a.Owner.run"]

    def test_builtin_method_names_do_not_wire_bare_fallback(self):
        project = project_of(
            **{
                "repro_mom_a": (
                    "class Store:\n"
                    "    def add(self, x):\n"
                    "        pass\n"
                    "def client(seen, x):\n"
                    "    seen.add(x)\n"
                )
            }
        )
        edges = project.call_edges()
        assert edges["repro.mom.a.client"] == []

    def test_sccs_are_callee_first(self):
        project = project_of(
            **{
                "repro_mom_a": (
                    "def leaf():\n"
                    "    pass\n"
                    "def mid():\n"
                    "    leaf()\n"
                    "def top():\n"
                    "    mid()\n"
                )
            }
        )
        order = [name for component in project.sccs() for name in component]
        assert order.index("repro.mom.a.leaf") < order.index("repro.mom.a.mid")
        assert order.index("repro.mom.a.mid") < order.index("repro.mom.a.top")

    def test_mutual_recursion_is_one_component(self):
        project = project_of(
            **{
                "repro_mom_a": (
                    "def ping(n):\n"
                    "    pong(n)\n"
                    "def pong(n):\n"
                    "    ping(n)\n"
                )
            }
        )
        components = [c for c in project.sccs() if len(c) == 2]
        assert components == [["repro.mom.a.ping", "repro.mom.a.pong"]]


class TestEffects:
    def test_taint_through_recursion_reaches_fixpoint(self):
        project = project_of(
            **{
                "repro_mom_a": (
                    "class D:\n"
                    "    def top(self):\n"
                    "        self.state = self.relay(0)\n"
                    "    def relay(self, n):\n"
                    "        if n:\n"
                    "            return self.relay(n - 1)\n"
                    "        return self.rng.stream('x').random()\n"
                )
            }
        )
        engine = EffectEngine(project)
        hits = engine.rng_sink_hits()
        assert [h.fn.qualname for h in hits] == ["repro.mom.a.D.top"]

    def test_param_to_state_summary(self):
        project = project_of(
            **{
                "repro_mom_a": (
                    "class D:\n"
                    "    def store(self, value):\n"
                    "        self.cell = value\n"
                )
            }
        )
        engine = EffectEngine(project)
        summary = engine.summary("repro.mom.a.D.store")
        assert summary.param_to_state == {0}

    def test_non_protocol_module_is_not_a_sink(self):
        project = project_of(
            **{
                "repro_bench_a": (
                    "class D:\n"
                    "    def top(self):\n"
                    "        self.state = self.rng.stream('x').random()\n"
                )
            }
        )
        engine = EffectEngine(project)
        assert engine.rng_sink_hits() == []
