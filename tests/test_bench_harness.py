"""Tests for the bench harness: runners, fits, figure generation."""

import math

import pytest

from repro.bench import (
    BroadcastDriver,
    PingPongDriver,
    farthest_plain_server,
    linear_fit,
    quadratic_fit,
    run_broadcast,
    run_local_unicast,
    run_remote_unicast,
)
from repro.bench.figures import (
    figure7,
    figure9,
    figure10,
    local_unicast_table,
    state_size_table,
    updates_ablation,
)
from repro.errors import ConfigurationError
from repro.topology import bus as bus_topology
from repro.topology import single_domain


class TestFits:
    def test_quadratic_recovers_exact_coefficients(self):
        xs = [10, 20, 30, 40, 50]
        ys = [0.05 * x * x + 2 * x + 7 for x in xs]
        fit = quadratic_fit(xs, ys)
        assert fit.coeffs[0] == pytest.approx(0.05)
        assert fit.coeffs[1] == pytest.approx(2.0)
        assert fit.coeffs[2] == pytest.approx(7.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear_fit(self):
        fit = linear_fit([1, 2, 3], [2, 4, 6])
        assert fit.coeffs[0] == pytest.approx(2.0)
        assert fit.predict(10) == pytest.approx(20.0)

    def test_underdetermined_rejected(self):
        with pytest.raises(ConfigurationError):
            quadratic_fit([1, 2], [1, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1, 2], [1])

    def test_describe_mentions_r2(self):
        fit = linear_fit([1, 2, 3], [2, 4, 6.1])
        assert "R²" in fit.describe()


class TestFarthestServer:
    def test_flat_picks_last(self):
        assert farthest_plain_server(single_domain(10)) == 9

    def test_bus_picks_remote_non_router(self):
        topo = bus_topology(20, 5)
        target = farthest_plain_server(topo)
        assert not topo.is_router(target)
        # must be outside server 0's own leaf
        assert topo.common_domains(0, target) == []

    def test_single_server_rejected(self):
        with pytest.raises(ConfigurationError):
            farthest_plain_server(single_domain(1))


class TestRunners:
    def test_remote_unicast_flat_matches_figure7_anchor(self):
        result = run_remote_unicast(10, topology="flat", rounds=5)
        assert result.mean_turnaround_ms == pytest.approx(61.2, abs=2.0)
        assert result.causal_ok
        assert result.topology == "flat"

    def test_remote_unicast_quadratic_growth(self):
        small = run_remote_unicast(10, rounds=5)
        large = run_remote_unicast(40, rounds=5)
        ratio = (large.mean_turnaround_ms - 56) / (small.mean_turnaround_ms - 56)
        assert ratio == pytest.approx(16.0, rel=0.15)

    def test_bus_topology_flattens_growth(self):
        small = run_remote_unicast(10, topology="bus", rounds=5)
        large = run_remote_unicast(90, topology="bus", rounds=5)
        assert large.mean_turnaround_ms < 1.25 * small.mean_turnaround_ms

    def test_local_unicast_constant(self):
        small = run_local_unicast(10, rounds=5)
        large = run_local_unicast(50, rounds=5)
        assert small.mean_turnaround_ms == pytest.approx(
            large.mean_turnaround_ms
        )
        assert small.wire_cells == 0

    def test_broadcast_counts_every_server(self):
        result = run_broadcast(10, rounds=2)
        # 10 targets, 2 rounds → 20 pings + 20 echoes... echo on server 0 is
        # local; remaining 9 cross the network both ways
        assert result.messages == 40
        assert result.causal_ok

    def test_updates_clock_shrinks_wire(self):
        full = run_remote_unicast(30, rounds=5, clock="matrix")
        delta = run_remote_unicast(30, rounds=5, clock="updates")
        assert delta.wire_cells < full.wire_cells / 100

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            run_remote_unicast(10, topology="hypercube")

    def test_result_row_is_flat(self):
        row = run_remote_unicast(10, rounds=2).row()
        assert row["n"] == 10
        assert isinstance(row["turnaround_ms"], float)


class TestFigures:
    def test_figure7_shape(self):
        result = figure7(ns=[10, 20, 30], rounds=3)
        assert len(result.rows) == 3
        fit = result.fits["ours (quadratic)"]
        assert fit.coeffs[0] > 0.03  # genuinely quadratic
        assert "Figure 7" in result.render()

    def test_figure10_is_flat_ish(self):
        result = figure10(ns=[10, 40, 90], rounds=3)
        fit = result.fits["ours (linear)"]
        assert 0 < fit.coeffs[0] < 1.0
        series = result.series("ours_ms")
        assert max(series) < 1.5 * min(series)

    def test_figure9_orders_organizations(self):
        # n=60 sits past the Figure-11 crossover (~50), so the bus must
        # beat the flat MOM; the daisy's long chain is always worst.
        result = figure9(n=60, rounds=3)
        by_org = {row["organization"]: row["ours_ms"] for row in result.rows}
        assert by_org["daisy"] > by_org["bus"]
        assert by_org["flat"] > by_org["bus"]

    def test_updates_ablation_columns(self):
        result = updates_ablation(ns=[10, 20, 30], rounds=3)
        for row in result.rows:
            assert row["updates_cells/hop"] < row["full_cells/hop"]
            assert row["updates_ms"] <= row["full_ms"]

    def test_local_table_constant(self):
        result = local_unicast_table(ns=[10, 30], rounds=3)
        values = result.series("ours_ms")
        assert values[0] == pytest.approx(values[-1])

    def test_state_table_ratio_grows(self):
        result = state_size_table(ns=[10, 50, 100])
        ratios = result.series("ratio")
        assert ratios == sorted(ratios)
        assert ratios[-1] > 10


class TestDeterminism:
    def test_same_seed_same_numbers(self):
        a = run_remote_unicast(20, rounds=4, seed=3)
        b = run_remote_unicast(20, rounds=4, seed=3)
        assert a.mean_turnaround_ms == b.mean_turnaround_ms
        assert a.wire_cells == b.wire_cells
