"""Shared fixtures and helpers for the test suite.

Set ``REPRO_SANITIZE=1`` to run the whole suite with the runtime
sanitizer installed (see :mod:`repro.analysis.sanitizer`): every
MessageBus is instrumented and any protocol-invariant violation raises
``SanitizerViolation`` — with zero false positives, the sanitized run is
expected to pass bit-identically.

Set ``REPRO_TRACE=1`` to run the whole suite with the observability
tracer attached (see :mod:`repro.obs`): every MessageBus records its
full event stream and latency histograms, and failures leave flight-
recorder dumps — again bit-identical, tracing is observation-only.
Both can be combined.
"""

from __future__ import annotations

import os

import pytest

from repro.mom.workloads import PingPongDriver
from repro.mom.agent import EchoAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.topology.builders import bus as bus_topology
from repro.topology.builders import from_domain_map, single_domain

if os.environ.get("REPRO_SANITIZE") == "1":
    from repro.analysis.sanitizer import install as _install_sanitizer

    _install_sanitizer()

if os.environ.get("REPRO_TRACE") == "1":
    from repro.obs import install as _install_tracer

    _install_tracer()


@pytest.fixture
def figure2_topology():
    """The paper's Figure 2: 8 servers, domains A{1,2,3} B{4,5} C{7,8}
    D{3,5,6,7} (0-indexed here)."""
    return from_domain_map(
        {
            "A": [0, 1, 2],
            "B": [3, 4],
            "C": [6, 7],
            "D": [2, 4, 5, 6],
        }
    )


def make_pingpong_bus(
    topology, rounds: int = 5, target_server: int = None, **config_kwargs
):
    """Build a bus with an EchoAgent on ``target_server`` (default: last
    server) and a bound PingPongDriver on server 0. Returns (bus, driver)."""
    if target_server is None:
        target_server = topology.server_count - 1
    config = BusConfig(topology=topology, **config_kwargs)
    mom = MessageBus(config)
    echo_id = mom.deploy(EchoAgent(), target_server)
    driver = PingPongDriver(rounds)
    driver.bind(echo_id)
    mom.deploy(driver, 0)
    return mom, driver
