"""Unit tests for the discrete-event kernel and the processor model."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Processor, Simulator


class TestSimulator:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run_until_idle()
        assert fired == ["early", "late"]
        assert sim.now == 5.0

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "first")
        sim.schedule(1.0, fired.append, "second")
        sim.run_until_idle()
        assert fired == ["first", "second"]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "no")
        handle.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_run_until_bound_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "at")
        sim.schedule(3.0, fired.append, "after")
        sim.run(until=2.0)
        assert fired == ["at"]
        assert sim.now == 2.0
        sim.run_until_idle()
        assert fired == ["at", "after"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run_until_idle()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run_until_idle()
        assert len(errors) == 1

    def test_run_until_idle_guards_against_storms(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)

    def test_max_events_run_returns_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.run() == 2


class TestProcessor:
    def test_work_serializes(self):
        sim = Simulator()
        cpu = Processor(sim)
        finished = []
        cpu.submit(10.0, lambda: finished.append(sim.now))
        cpu.submit(5.0, lambda: finished.append(sim.now))
        sim.run_until_idle()
        assert finished == [10.0, 15.0]

    def test_idle_gap_is_not_charged(self):
        sim = Simulator()
        cpu = Processor(sim)
        done = []
        cpu.submit(1.0, lambda: done.append(sim.now))
        sim.run_until_idle()
        sim.schedule(10.0, lambda: cpu.submit(1.0, lambda: done.append(sim.now)))
        sim.run_until_idle()
        assert done == [1.0, 12.0]
        assert cpu.busy_total == 2.0

    def test_halted_processor_rejects_work(self):
        sim = Simulator()
        cpu = Processor(sim)
        cpu.halt()
        with pytest.raises(SimulationError):
            cpu.submit(1.0, lambda: None)

    def test_resume_discards_old_occupancy(self):
        sim = Simulator()
        cpu = Processor(sim)
        cpu.submit(100.0, lambda: None)
        cpu.halt()
        cpu.resume()
        done = []
        cpu.submit(1.0, lambda: done.append(sim.now))
        sim.run(until=2.0)
        assert done == [1.0]

    def test_negative_duration_rejected(self):
        sim = Simulator()
        cpu = Processor(sim)
        with pytest.raises(SimulationError):
            cpu.submit(-1.0, lambda: None)
