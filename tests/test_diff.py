"""Causal run-diff: seeded divergences must be found, named, classified.

Acceptance criteria under test: for deliberately perturbed runs —
a delivery-order flip, a dropped message, a stamp corruption —
``python -m repro.obs diff`` (the ``main()`` entry point) names the exact
first-divergent nid, its sim-time, and the divergence classification.
"""

import json

import pytest

from repro.mom.agent import EchoAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.mom.parallel import ShardedBus, make_bus
from repro.mom.workloads import OpenLoopDriver, PingPongDriver, SinkAgent
from repro.obs import shardmon
from repro.obs.__main__ import main
from repro.obs.diff import (
    canonical_events,
    diff_dumps,
    explain,
    watch_explain,
)
from repro.obs.export import TraceDump, write_jsonl
from repro.obs.tracer import attach
from repro.topology import builders


@pytest.fixture(autouse=True)
def config_controls_parallel(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)


def _config(parallel="off"):
    return BusConfig(
        topology=builders.bus(12, 4), parallel=parallel, workers=2
    )


def _churn(bus):
    for src, dst in [(0, 9), (9, 0), (4, 11)]:
        sink_id = bus.deploy(SinkAgent(), dst)
        driver = OpenLoopDriver(period_ms=7.0, count=15)
        driver.bind(sink_id)
        bus.deploy(driver, src)
    return bus


@pytest.fixture(scope="module")
def churn_dump():
    bus = _churn(MessageBus(_config()))
    tracer = attach(bus)
    bus.start()
    bus.run_until_idle()
    return TraceDump.from_tracer(tracer)


def _rebuilt(dump, events):
    return TraceDump(dict(dump.meta), events, dump.cpu, dump.histograms)


def _write(tmp_path, name, dump):
    path = tmp_path / name
    with open(path, "w") as stream:
        write_jsonl(dump, stream)
    return str(path)


# ----------------------------------------------------------------------
# Seeded perturbations
# ----------------------------------------------------------------------


def _seed_order_flip(dump):
    """Swap the sim-times of two deliveries at one server: the canonical
    streams then show them enqueued in opposite order."""
    by_server = {}
    for event in canonical_events(dump):
        if event.kind == "enqueue_in":
            by_server.setdefault(event.server, []).append(event)
    server, pair = next(
        (s, ev) for s, ev in sorted(by_server.items())
        if len(ev) >= 2 and ev[0].t != ev[1].t and ev[0].nid != ev[1].nid
    )
    first, second = pair[0], pair[1]
    events = [
        e._replace(t=second.t) if e == first
        else e._replace(t=first.t) if e == second
        else e
        for e in dump.events
    ]
    return _rebuilt(dump, events), first, second


def _seed_dropped_message(dump):
    """Erase every event of one delivered message from the second run."""
    nid = sorted(
        {e.nid for e in dump.events if e.kind == "reaction_commit"
         and e.nid >= 0}
    )[-1]
    events = [e for e in dump.events if e.nid != nid]
    first = min(
        (e for e in canonical_events(dump) if e.nid == nid),
        key=lambda e: (e.t, e.server),
    )
    return _rebuilt(dump, events), nid, first


def _seed_stamp_corruption(dump):
    """Flip one commit's merged-cell count — a clock payload mismatch."""
    target = next(
        e for e in canonical_events(dump)
        if e.kind == "commit" and e.nid >= 0
    )
    events = [
        e._replace(value=e.value + 1.0) if e == target else e
        for e in dump.events
    ]
    return _rebuilt(dump, events), target


def test_delivery_order_flip_is_found_and_classified(churn_dump, tmp_path, capsys):
    perturbed, first, second = _seed_order_flip(churn_dump)
    report = diff_dumps(churn_dump, perturbed)
    assert report is not None
    assert report.classification == "delivery-order-flip"
    assert report.nid == first.nid
    assert report.t == first.t
    assert report.server == first.server
    assert report.extras["other_nid"] == second.nid

    code = main([
        "diff",
        _write(tmp_path, "a.jsonl", churn_dump),
        _write(tmp_path, "b.jsonl", perturbed),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "delivery-order-flip" in out
    assert f"nid {first.nid}" in out
    assert f"t={first.t:.3f}ms" in out


def test_dropped_message_is_found_and_classified(churn_dump, tmp_path, capsys):
    perturbed, nid, first = _seed_dropped_message(churn_dump)
    report = diff_dumps(churn_dump, perturbed)
    assert report is not None
    assert report.classification == "missing-message"
    assert report.nid == nid
    assert report.t == first.t

    code = main([
        "diff", "--json",
        _write(tmp_path, "a.jsonl", churn_dump),
        _write(tmp_path, "b.jsonl", perturbed),
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["classification"] == "missing-message"
    assert payload["nid"] == nid
    assert payload["t"] == first.t


def test_stamp_corruption_is_found_and_classified(churn_dump, tmp_path, capsys):
    perturbed, target = _seed_stamp_corruption(churn_dump)
    report = diff_dumps(churn_dump, perturbed)
    assert report is not None
    assert report.classification == "stamp-mismatch"
    assert report.nid == target.nid
    assert report.t == target.t
    assert report.server == target.server

    code = main([
        "diff",
        _write(tmp_path, "a.jsonl", churn_dump),
        _write(tmp_path, "b.jsonl", perturbed),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "stamp-mismatch" in out
    assert f"nid {target.nid}" in out
    assert f"t={target.t:.3f}ms" in out


# ----------------------------------------------------------------------
# Equivalence: identical runs, and sequential vs merged-parallel
# ----------------------------------------------------------------------


def test_identical_dumps_diff_clean(churn_dump, tmp_path, capsys):
    assert diff_dumps(churn_dump, churn_dump) is None
    assert watch_explain(churn_dump, churn_dump) is None
    path = _write(tmp_path, "same.jsonl", churn_dump)
    assert main(["diff", path, path]) == 0
    assert "causally identical" in capsys.readouterr().out


def test_sequential_vs_merged_parallel_diff_clean(monkeypatch):
    """The headline use: a sequential run and its REPRO_PARALLEL=2 twin
    canonicalize to the identical stream — diff reports no divergence
    even though the raw merged interleaving renumbers every seq."""
    from repro.obs import install, is_installed, uninstall

    seq_bus = _churn(MessageBus(_config()))
    seq_tracer = attach(seq_bus)
    seq_bus.start()
    seq_bus.run_until_idle()
    seq_dump = TraceDump.from_tracer(seq_tracer)

    monkeypatch.setenv("REPRO_PARALLEL", "2")
    installed_here = not is_installed()
    if installed_here:
        install()
    try:
        par_bus = _churn(make_bus(_config("auto")))
        assert isinstance(par_bus, ShardedBus)
        par_bus.start()
        par_bus.run_until_idle()
        par_dump = shardmon.merged_trace_dump(par_bus)
    finally:
        if installed_here:
            uninstall()

    assert diff_dumps(seq_dump, par_dump) is None


# ----------------------------------------------------------------------
# The explain chain (--watch mode)
# ----------------------------------------------------------------------


def test_explain_chains_into_why_and_critpath(churn_dump):
    perturbed, first, _second = _seed_order_flip(churn_dump)
    report = diff_dumps(churn_dump, perturbed)
    assert report is not None
    text = explain(report, churn_dump, perturbed)
    assert "first divergence" in text
    assert f"nid {report.nid}" in text
    assert "critpath of nid" in text or "never held back" in text
    assert "dig deeper" in text


def test_watch_explain_reports_on_divergence(churn_dump):
    perturbed, nid, _first = _seed_dropped_message(churn_dump)
    text = watch_explain(churn_dump, perturbed)
    assert text is not None
    assert "missing-message" in text
    assert f"nid {nid}" in text


def test_cli_explain_flag(churn_dump, tmp_path, capsys):
    perturbed, first, _second = _seed_order_flip(churn_dump)
    code = main([
        "diff", "--explain",
        _write(tmp_path, "a.jsonl", churn_dump),
        _write(tmp_path, "b.jsonl", perturbed),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "first divergence" in out
    assert "delivery-order-flip" in out
