"""Tests for the hierarchical Daisy baseline (§2, [17])."""

import random as pyrandom

import pytest

from repro.baselines import DaisyChain
from repro.causality import check_trace
from repro.errors import ConfigurationError
from repro.simulation.network import UniformLatency


class TestStructure:
    def test_node_layout(self):
        chain = DaisyChain(3, 4)
        assert chain.node_count == 10
        assert chain.groups == [[0, 1, 2, 3], [3, 4, 5, 6], [6, 7, 8, 9]]
        assert chain.is_gateway(3)
        assert chain.is_gateway(6)
        assert not chain.is_gateway(0)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            DaisyChain(0, 3)
        with pytest.raises(ConfigurationError):
            DaisyChain(3, 1)

    def test_self_send_rejected(self):
        chain = DaisyChain(2, 3)
        with pytest.raises(ConfigurationError):
            chain.send(1, 1, "x")


class TestDelivery:
    def test_intra_group(self):
        chain = DaisyChain(3, 4)
        chain.send(0, 2, "near")
        chain.run_until_idle()
        assert chain.deliveries(2) == [(0, "near")]

    def test_cross_group_via_gateways(self):
        chain = DaisyChain(3, 4)
        chain.send(0, 9, "far")
        chain.run_until_idle()
        assert chain.deliveries(9) == [(0, "far")]
        # nobody else delivered the payload
        for node in range(chain.node_count):
            if node != 9:
                assert chain.deliveries(node) == []

    def test_wire_flooding_cost(self):
        """A 0→9 unicast floods all three groups: (s-1) packets per group
        traversed — the §2 scalability complaint in numbers."""
        chain = DaisyChain(3, 4)
        chain.send(0, 9, "far")
        chain.run_until_idle()
        assert chain.packets_sent == 3 * 3

    def test_causal_chain_across_groups(self):
        """0 sends to 9; 9 reacts by sending to 5; 5's message must arrive
        after... the trace must respect causality globally."""
        chain = DaisyChain(3, 4, latency=UniformLatency(0.1, 15.0), seed=4)
        chain.set_handler(9, lambda origin, payload: chain.send(9, 5, "reaction"))
        chain.send(0, 9, "trigger")
        chain.send(0, 5, "direct")
        chain.run_until_idle()
        assert chain.deliveries(9) == [(0, "trigger")]
        assert (9, "reaction") in chain.deliveries(5)
        report = check_trace(chain.trace)
        assert report.respects_causality

    def test_pingpong_round_trips(self):
        chain = DaisyChain(3, 3)
        state = {"rounds": 0}

        def pong(origin, payload):
            chain.send(chain.node_count - 1, 0, payload)

        def ping(origin, payload):
            state["rounds"] += 1
            if state["rounds"] < 5:
                chain.send(0, chain.node_count - 1, state["rounds"])

        chain.set_handler(chain.node_count - 1, pong)
        chain.set_handler(0, ping)
        chain.send(0, chain.node_count - 1, 0)
        chain.run_until_idle()
        assert state["rounds"] == 5
        assert check_trace(chain.trace).respects_causality


class TestCausalityUnderStress:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_workload_respects_causality(self, seed):
        chain = DaisyChain(3, 4, latency=UniformLatency(0.1, 25.0), seed=seed)
        rng = pyrandom.Random(seed)

        def forwarder(node):
            def handler(origin, payload):
                if payload > 0:
                    target = rng.randrange(chain.node_count)
                    if target != node:
                        chain.send(node, target, payload - 1)
            return handler

        for node in range(chain.node_count):
            chain.set_handler(node, forwarder(node))
        for _ in range(6):
            a = rng.randrange(chain.node_count)
            b = rng.randrange(chain.node_count)
            if a != b:
                chain.send(a, b, 2)
        chain.run_until_idle()
        report = check_trace(chain.trace)
        assert report.respects_causality, report.summary()
