"""Tests for the explicit-causal-histories baseline ([10] family)."""

import pytest

from repro.baselines.causal_histories import HistoryClock, HistoryStamp
from repro.causality.exhaustive import Send, explore
from repro.clocks.matrix import MatrixClock
from repro.errors import ClockError


RELAY_SCENARIO = dict(
    size=3,
    initial_sends=[Send(0, 2, "n"), Send(0, 1, "m1")],
    react=lambda receiver, tag: (
        [Send(1, 2, "m2")] if (receiver, tag) == (1, "m1") else []
    ),
)


class TestUnit:
    def test_fifo_within_a_pair(self):
        a = HistoryClock(3, 0)
        b = HistoryClock(3, 1)
        first = a.prepare_send(1)
        second = a.prepare_send(1)
        assert second.deps  # the second message depends on the first
        assert not b.can_deliver(second)
        b.deliver(first)
        assert b.can_deliver(second)

    def test_transitive_dependency_enforced(self):
        a = HistoryClock(3, 0)
        b = HistoryClock(3, 1)
        c = HistoryClock(3, 2)
        to_c = a.prepare_send(2)
        to_b = a.prepare_send(1)
        b.deliver(to_b)
        from_b = c_stamp = b.prepare_send(2)
        assert not c.can_deliver(from_b), "must wait for a's message to c"
        c.deliver(to_c)
        assert c.can_deliver(from_b)

    def test_duplicate_detection(self):
        a = HistoryClock(2, 0)
        b = HistoryClock(2, 1)
        stamp = a.prepare_send(1)
        b.deliver(stamp)
        assert b.is_duplicate(stamp)

    def test_history_grows_without_feedback(self):
        """One-way traffic: every new message carries the whole past —
        the growth problem [10]'s separators exist to prune."""
        a = HistoryClock(2, 0)
        sizes = [a.prepare_send(1).wire_cells for _ in range(6)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_feedback_prunes_history(self):
        """Ping-pong: replies teach each side what the other has seen, so
        steady-state stamps stay small."""
        a = HistoryClock(2, 0)
        b = HistoryClock(2, 1)
        for _ in range(6):
            b.deliver(a.prepare_send(1))
            a.deliver(b.prepare_send(0))
        assert a.prepare_send(1).wire_cells <= 4

    def test_snapshot_roundtrip(self):
        a = HistoryClock(3, 0)
        b = HistoryClock(3, 1)
        stamp = a.prepare_send(1)
        b.deliver(stamp)
        fresh = HistoryClock(3, 1)
        fresh.restore(b.snapshot())
        assert fresh.is_duplicate(stamp)
        assert fresh.cell(0, 1) == 1

    def test_undeliverable_rejected(self):
        a = HistoryClock(2, 0)
        b = HistoryClock(2, 1)
        a.prepare_send(1)
        second = a.prepare_send(1)
        with pytest.raises(ClockError):
            b.deliver(second)

    def test_self_send_rejected(self):
        with pytest.raises(ClockError):
            HistoryClock(3, 1).prepare_send(1)


class TestExhaustiveCorrectness:
    def test_relay_scenario_always_causal(self):
        result = explore(clock_cls=HistoryClock, **RELAY_SCENARIO)
        assert result.all_causal

    def test_same_admissible_executions_as_matrix(self):
        """Explicit histories characterize causality exactly, like matrix
        clocks — the admissible interleavings coincide."""
        histories = explore(clock_cls=HistoryClock, **RELAY_SCENARIO)
        matrix = explore(clock_cls=MatrixClock, **RELAY_SCENARIO)
        assert histories.executions == matrix.executions

    def test_diamond_scenario(self):
        def react(receiver, tag):
            if tag == "fan" and receiver in (1, 2):
                return [Send(receiver, 3, f"relay{receiver}")]
            return []

        result = explore(
            clock_cls=HistoryClock,
            size=4,
            initial_sends=[
                Send(0, 3, "direct"),
                Send(0, 1, "fan"),
                Send(0, 2, "fan"),
            ],
            react=react,
        )
        assert result.all_causal


class TestInTheMom:
    def test_mom_runs_causally_on_history_clocks(self):
        """Plugged into the bus via the clock registry, the history clock
        passes the same end-to-end audit as the matrix clock — the
        CausalClock interface is a real plug point."""
        from repro.mom import BusConfig, FunctionAgent, MessageBus
        from repro.mom.config import _CLOCKS
        from repro.simulation.network import UniformLatency
        from repro.topology import single_domain

        _CLOCKS["histories"] = HistoryClock
        try:
            config3 = BusConfig(
                topology=single_domain(4),
                clock_algorithm="histories",
                seed=3,
                latency=UniformLatency(0.1, 20.0),
            )
            mom = MessageBus(config3)
            order = []
            sink = FunctionAgent(lambda ctx, s, p: order.append(p))
            sink_id = mom.deploy(sink, 3)
            sender = FunctionAgent(lambda ctx, s, p: None)

            def boot(ctx):
                for i in range(8):
                    ctx.send(sink_id, i)

            sender.on_boot = boot
            mom.deploy(sender, 0)
            mom.start()
            mom.run_until_idle()
            assert order == list(range(8))
            assert mom.check_app_causality().respects_causality
        finally:
            _CLOCKS.pop("histories", None)
