"""Unit tests for vector clocks and the causal-broadcast (BSS) baseline."""

import pytest

from repro.clocks import CausalBroadcastClock, VectorClock, VectorStamp
from repro.errors import ClockError


class TestVectorClock:
    def test_initial_state(self):
        clock = VectorClock(size=4, owner=2)
        assert clock.read().entries == (0, 0, 0, 0)

    def test_tick_touches_own_component_only(self):
        clock = VectorClock(3, 1)
        clock.tick()
        assert clock.read().entries == (0, 1, 0)

    def test_observe_merges_and_ticks(self):
        clock = VectorClock(3, 0)
        stamp = clock.observe(VectorStamp(1, (0, 4, 2)))
        assert stamp.entries == (1, 4, 2)

    def test_size_mismatch_rejected(self):
        clock = VectorClock(3, 0)
        with pytest.raises(ClockError):
            clock.observe(VectorStamp(1, (0, 1)))

    def test_owner_out_of_range(self):
        with pytest.raises(ClockError):
            VectorClock(3, 3)

    def test_zero_size_rejected(self):
        with pytest.raises(ClockError):
            VectorClock(0, 0)


class TestVectorStampRelations:
    def test_characterizes_causality_exactly(self):
        """a happened-before b iff V(a) < V(b) — the key vector property."""
        a = VectorClock(2, 0)
        b = VectorClock(2, 1)
        sa = a.stamp_send()
        rb = b.observe(sa)
        sb = b.stamp_send()
        assert sa.strictly_precedes(rb)
        assert sa.strictly_precedes(sb)

    def test_concurrency_detected(self):
        a = VectorClock(2, 0)
        b = VectorClock(2, 1)
        sa = a.stamp_send()
        sb = b.stamp_send()
        assert sa.concurrent_with(sb)
        assert sb.concurrent_with(sa)

    def test_dominates_is_reflexive_like(self):
        stamp = VectorStamp(0, (1, 2, 3))
        assert stamp.dominates(stamp)
        assert not stamp.strictly_precedes(stamp)

    def test_wire_cells_is_vector_length(self):
        assert VectorStamp(0, (1, 2, 3)).wire_cells == 3


class TestCausalBroadcast:
    def test_fifo_from_one_sender(self):
        sender = CausalBroadcastClock(3, 0)
        receiver = CausalBroadcastClock(3, 1)
        first = sender.stamp_broadcast()
        second = sender.stamp_broadcast()
        assert not receiver.can_deliver(second)
        assert receiver.can_deliver(first)
        receiver.deliver(first)
        assert receiver.can_deliver(second)

    def test_causal_dependency_across_senders(self):
        """B broadcasts after delivering A's broadcast; C must deliver A's
        before B's even if B's arrives first."""
        a = CausalBroadcastClock(3, 0)
        b = CausalBroadcastClock(3, 1)
        c = CausalBroadcastClock(3, 2)
        ma = a.stamp_broadcast()
        b.deliver(ma)
        mb = b.stamp_broadcast()
        assert not c.can_deliver(mb)
        c.deliver(ma)
        assert c.can_deliver(mb)
        c.deliver(mb)
        assert c.delivered_count(0) == 1
        assert c.delivered_count(1) == 1

    def test_deliver_rejects_undeliverable(self):
        a = CausalBroadcastClock(2, 0)
        b = CausalBroadcastClock(2, 1)
        a.stamp_broadcast()
        second = a.stamp_broadcast()
        with pytest.raises(ClockError):
            b.deliver(second)

    def test_sender_self_delivers_through_same_path(self):
        a = CausalBroadcastClock(2, 0)
        stamp = a.stamp_broadcast()
        assert a.can_deliver(stamp)
        a.deliver(stamp)
        assert a.delivered_count(0) == 1

    def test_concurrent_broadcasts_deliverable_any_order(self):
        a = CausalBroadcastClock(3, 0)
        b = CausalBroadcastClock(3, 1)
        c = CausalBroadcastClock(3, 2)
        ma = a.stamp_broadcast()
        mb = b.stamp_broadcast()
        assert c.can_deliver(mb)
        c.deliver(mb)
        assert c.can_deliver(ma)
        c.deliver(ma)
