"""Unit tests for the §6.2 analytic cost model and the CostModel
calibration."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.clocks import MatrixClock, UpdatesClock
from repro.simulation.costs import CostModel
from repro.topology import (
    bus,
    bus_unicast_cost,
    crossover_point,
    domain_message_cost,
    flat_unicast_cost,
    single_domain,
    topology_unicast_cost,
    tree_server_count,
    tree_unicast_cost,
)


class TestAnalyticModel:
    def test_domain_cost_is_s_squared(self):
        assert domain_message_cost(7) == 49
        assert domain_message_cost(7, unit=2.0) == 98

    def test_tree_server_count_formula(self):
        # 1 + (s-1)(k^(d+1)-1)/(k-1) with s=3, k=2, d=2: 1 + 2*7 = 15
        assert tree_server_count(3, 2, 2) == 15
        # depth 0: a single domain of s servers
        assert tree_server_count(5, 2, 0) == 5

    def test_bus_cost_linear_with_sqrt_domains(self):
        # s = √n exactly → 3·n
        assert bus_unicast_cost(100, 10) == pytest.approx(300)

    def test_flat_cost_quadratic(self):
        assert flat_unicast_cost(50) == 2500

    def test_tree_cost_logarithmic_shape(self):
        big = tree_unicast_cost(1024, 4, 2)
        small = tree_unicast_cost(64, 4, 2)
        # n grew 16x; log2 grew by 4 steps → cost grows additively, not
        # multiplicatively
        assert big - small == pytest.approx(2 * 4 * 16, rel=0.01)

    def test_crossover_matches_figure11_regime(self):
        """With the paper-calibrated constants, the bus overtakes the flat
        MOM somewhere in the tens of servers (Figure 11 shows ~40-50)."""
        point = crossover_point(unit=0.052, fixed_flat=56.0, fixed_bus=168.0)
        assert 30 <= point <= 60

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            domain_message_cost(0)
        with pytest.raises(ConfigurationError):
            tree_server_count(1, 2, 1)
        with pytest.raises(ConfigurationError):
            tree_unicast_cost(100, 5, 1)

    def test_topology_unicast_cost_counts_traversed_domains(self):
        topo = bus(16, 4)
        flat = single_domain(16)
        # crossing three domains of 4-5 servers is cheaper than one of 16
        assert topology_unicast_cost(topo, 0, 14) < topology_unicast_cost(
            flat, 0, 14
        )


class TestCostModel:
    def test_full_matrix_send_cost_scales_quadratically(self):
        model = CostModel()
        small = MatrixClock(10, 0)
        large = MatrixClock(50, 0)
        cheap = model.send_cost(small.prepare_send(1), 10, 1)
        dear = model.send_cost(large.prepare_send(1), 50, 1)
        assert dear > cheap
        # the variable part scales with s²
        variable_small = cheap - model.send_fixed_ms
        variable_large = dear - model.send_fixed_ms
        assert variable_large / variable_small == pytest.approx(25.0, rel=0.01)

    def test_updates_send_cost_nearly_flat(self):
        model = CostModel(persist_dirty_only=True)
        small = UpdatesClock(10, 0)
        large = UpdatesClock(50, 0)
        cheap = model.send_cost(small.prepare_send(1), 10, small.dirty_cells())
        dear = model.send_cost(large.prepare_send(1), 50, large.dirty_cells())
        assert dear == pytest.approx(cheap)

    def test_persist_full_vs_dirty(self):
        full = CostModel()
        journal = CostModel(persist_dirty_only=True)
        assert full.persist_cost(50, 1) == pytest.approx(0.007 * 2500)
        assert journal.persist_cost(50, 1) == pytest.approx(0.007)

    def test_scaled_preserves_structure(self):
        model = CostModel().scaled(2.0)
        assert model.send_fixed_ms == 26.0
        assert model.persist_dirty_only is False

    def test_calibration_figure7_anchor_points(self):
        """The documented calibration: a flat-MOM round trip is
        2·(latency + send + recv) ≈ 54 + 0.052·n² + reaction costs,
        hitting ~61 ms at n=10 and ~190 at n=50."""
        model = CostModel()
        def round_trip(n):
            clock = MatrixClock(n, 0)
            stamp = clock.prepare_send(1)
            one_way = (
                model.latency_ms
                + model.send_cost(stamp, n, 1)
                + model.recv_cost(stamp, n, 1)
            )
            return 2 * one_way + 2 * model.agent_reaction_ms
        assert round_trip(10) == pytest.approx(61.2, abs=2.0)
        assert round_trip(50) == pytest.approx(186.0, abs=8.0)
