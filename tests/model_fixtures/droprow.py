"""A seeded-bug candidate core for the model-checker tests.

``DropRowClock`` merges like :class:`~repro.clocks.matrix.MatrixClock`
except it *forgets row 0* of every incoming stamp — the classic
copy-paste off-by-one (``range(1, size)`` instead of ``range(size)``).
Row 0 holds what server 0 is known to have sent, so the receiver's view
of server 0's sequence numbers never advances: the second message from
server 0 fails the RST test forever and wedges in hold-back. The model
checker must reject this core with a hold-back-leak counterexample at a
scope as small as n=2 servers, m=2 messages.
"""

from typing import Tuple

from repro.clocks.base import Stamp
from repro.clocks.matrix import MatrixClock, MatrixStamp
from repro.errors import ClockError
from repro.protocol.core import DelegatingCore


class DropRowClock(MatrixClock):
    # R023 (when linted as part of a project): a test fixture, never
    # registered — the model checker loads it from its file path.
    protocol_exempt = "seeded-bug fixture for the model-checker tests"

    def deliver(self, stamp: Stamp) -> None:
        if not self.can_deliver(stamp):
            raise ClockError(f"stamp {stamp} not deliverable")
        size = self._size
        buf = self._own_buf()
        sbuf = stamp._buf
        for row in range(1, size):  # the seeded bug: row 0 is dropped
            for col in range(size):
                idx = row * size + col
                if sbuf[idx] > buf[idx]:
                    buf[idx] = sbuf[idx]


class DropRowCore(DelegatingCore):
    name = "droprow"
    clock_cls = DropRowClock
    stamp_cls = MatrixStamp

    def encode_stamp(self, stamp: Stamp) -> Tuple:
        return (stamp.sender, stamp.dest, stamp.size, tuple(stamp._buf))

    def decode_stamp(self, payload: Tuple) -> MatrixStamp:
        sender, dest, size, cells = payload
        from array import array

        return MatrixStamp(sender, dest, size, array("q", cells))


CORE = DropRowCore()
