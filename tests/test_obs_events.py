"""The typed event ring: bounded memory, global seq, wraparound."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import DEFAULT_CAPACITY, KINDS, EventRing, TraceEvent


def fill(ring, n, kind="post"):
    return [ring.record(float(i), kind, 0, i) for i in range(n)]


class TestRecord:
    def test_assigns_monotonic_seq(self):
        ring = EventRing(8)
        events = fill(ring, 5)
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert ring.next_seq == 5

    def test_event_fields_roundtrip(self):
        ring = EventRing(8)
        event = ring.record(
            1.5, "transmit", 3, 42, domain="D1", src=3, dst=7, hop_seq=9,
            value=2.0,
        )
        assert event == TraceEvent(
            0, 1.5, "transmit", 3, 42, "D1", 3, 7, 9, 2.0
        )

    def test_default_capacity(self):
        assert EventRing().capacity == DEFAULT_CAPACITY

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            EventRing(0)


class TestWraparound:
    def test_under_capacity_keeps_everything(self):
        ring = EventRing(10)
        fill(ring, 7)
        assert len(ring) == 7
        assert ring.dropped == 0
        assert [e.seq for e in ring.events()] == list(range(7))

    def test_exactly_at_capacity(self):
        ring = EventRing(10)
        fill(ring, 10)
        assert len(ring) == 10
        assert ring.dropped == 0
        assert [e.seq for e in ring.events()] == list(range(10))

    def test_overflow_drops_oldest_keeps_order(self):
        ring = EventRing(10)
        fill(ring, 25)
        assert len(ring) == 10
        assert ring.dropped == 15
        kept = ring.events()
        assert [e.seq for e in kept] == list(range(15, 25))
        # chronological: time mirrors seq in this fixture
        assert [e.t for e in kept] == sorted(e.t for e in kept)

    def test_seq_survives_wraparound(self):
        ring = EventRing(4)
        fill(ring, 9)
        assert ring.next_seq == 9
        assert ring.record(9.0, "post", 0, 9).seq == 9

    def test_iter_matches_events(self):
        ring = EventRing(4)
        fill(ring, 6)
        assert list(ring) == ring.events()

    def test_clear_resets_contents_not_seq(self):
        ring = EventRing(4)
        fill(ring, 6)
        ring.clear()
        assert len(ring) == 0
        assert ring.events() == []
        # seq keeps counting so post-clear events are still globally ordered
        assert ring.record(0.0, "post", 0, 0).seq == 6


class TestKinds:
    def test_taxonomy_is_complete(self):
        assert KINDS == {
            "post",
            "stamp",
            "transmit",
            "retransmit",
            "ack",
            "arrive",
            "holdback_enter",
            "holdback_release",
            "commit",
            "route_forward",
            "enqueue_in",
            "reaction_start",
            "reaction_commit",
            "crash",
            "recover",
        }


class TestMultiWrap:
    """Direct regression tests for ≥2 full wraparounds: the retained
    window, its ordering, and the JSONL export path must all agree."""

    def test_two_full_wraps_keep_exact_window(self):
        ring = EventRing(8)
        fill(ring, 8 * 3 + 5)  # 3 wraps + 5 into the fourth lap
        assert ring.next_seq == 29
        assert ring.dropped == 29 - 8
        assert len(ring) == 8
        kept = ring.events()
        assert [e.seq for e in kept] == list(range(21, 29))

    def test_wrap_landing_exactly_on_boundary(self):
        # next_seq a multiple of capacity: head == 0, no rotation needed
        ring = EventRing(8)
        fill(ring, 8 * 3)
        kept = ring.events()
        assert [e.seq for e in kept] == list(range(16, 24))

    def test_wrap_off_by_one_around_boundary(self):
        # one short of / one past a lap boundary: the windows must abut
        ring = EventRing(8)
        fill(ring, 8 * 2 - 1)
        assert [e.seq for e in ring.events()] == list(range(7, 15))
        ring.record(15.0, "post", 0, 15)
        assert [e.seq for e in ring.events()] == list(range(8, 16))
        ring.record(16.0, "post", 0, 16)
        assert [e.seq for e in ring.events()] == list(range(9, 17))

    def test_multiwrap_ordering_is_seq_and_time(self):
        ring = EventRing(16)
        fill(ring, 100)
        kept = ring.events()
        seqs = [e.seq for e in kept]
        assert seqs == sorted(seqs)
        assert [e.t for e in kept] == sorted(e.t for e in kept)
        assert len(kept) == 16

    def test_clear_then_multiwrap(self):
        ring = EventRing(4)
        fill(ring, 10)
        ring.clear()
        fill4 = [ring.record(float(i), "post", 0, i) for i in range(9)]
        assert [e.seq for e in ring.events()] == [
            e.seq for e in fill4[-4:]
        ]

    def test_export_roundtrip_preserves_multiwrap_order(self):
        from io import StringIO

        from repro.obs.export import TraceDump, read_jsonl, write_jsonl

        ring = EventRing(8)
        fill(ring, 30)  # > 3 wraps
        dump = TraceDump(
            meta={
                "now": 30.0,
                "capacity": ring.capacity,
                "next_seq": ring.next_seq,
                "dropped": ring.dropped,
                "server_ids": [0],
                "domains": {},
            },
            events=ring.events(),
            cpu=[],
            histograms={},
        )
        buffer = StringIO()
        write_jsonl(dump, buffer)
        buffer.seek(0)
        loaded = read_jsonl(buffer)
        assert [e.seq for e in loaded.events] == list(range(22, 30))
        assert loaded.events == ring.events()
        assert loaded.meta["dropped"] == 22
