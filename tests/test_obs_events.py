"""The typed event ring: bounded memory, global seq, wraparound."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import DEFAULT_CAPACITY, KINDS, EventRing, TraceEvent


def fill(ring, n, kind="post"):
    return [ring.record(float(i), kind, 0, i) for i in range(n)]


class TestRecord:
    def test_assigns_monotonic_seq(self):
        ring = EventRing(8)
        events = fill(ring, 5)
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert ring.next_seq == 5

    def test_event_fields_roundtrip(self):
        ring = EventRing(8)
        event = ring.record(
            1.5, "transmit", 3, 42, domain="D1", src=3, dst=7, hop_seq=9,
            value=2.0,
        )
        assert event == TraceEvent(
            0, 1.5, "transmit", 3, 42, "D1", 3, 7, 9, 2.0
        )

    def test_default_capacity(self):
        assert EventRing().capacity == DEFAULT_CAPACITY

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            EventRing(0)


class TestWraparound:
    def test_under_capacity_keeps_everything(self):
        ring = EventRing(10)
        fill(ring, 7)
        assert len(ring) == 7
        assert ring.dropped == 0
        assert [e.seq for e in ring.events()] == list(range(7))

    def test_exactly_at_capacity(self):
        ring = EventRing(10)
        fill(ring, 10)
        assert len(ring) == 10
        assert ring.dropped == 0
        assert [e.seq for e in ring.events()] == list(range(10))

    def test_overflow_drops_oldest_keeps_order(self):
        ring = EventRing(10)
        fill(ring, 25)
        assert len(ring) == 10
        assert ring.dropped == 15
        kept = ring.events()
        assert [e.seq for e in kept] == list(range(15, 25))
        # chronological: time mirrors seq in this fixture
        assert [e.t for e in kept] == sorted(e.t for e in kept)

    def test_seq_survives_wraparound(self):
        ring = EventRing(4)
        fill(ring, 9)
        assert ring.next_seq == 9
        assert ring.record(9.0, "post", 0, 9).seq == 9

    def test_iter_matches_events(self):
        ring = EventRing(4)
        fill(ring, 6)
        assert list(ring) == ring.events()

    def test_clear_resets_contents_not_seq(self):
        ring = EventRing(4)
        fill(ring, 6)
        ring.clear()
        assert len(ring) == 0
        assert ring.events() == []
        # seq keeps counting so post-clear events are still globally ordered
        assert ring.record(0.0, "post", 0, 0).seq == 6


class TestKinds:
    def test_taxonomy_is_complete(self):
        assert KINDS == {
            "post",
            "stamp",
            "transmit",
            "retransmit",
            "ack",
            "holdback_enter",
            "holdback_release",
            "commit",
            "route_forward",
            "enqueue_in",
            "reaction_start",
            "reaction_commit",
            "crash",
            "recover",
        }
