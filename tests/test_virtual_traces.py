"""Unit tests for virtual traces and the no-crossover condition
(§4.2, Figure 3)."""

import pytest

from repro.causality import (
    Chain,
    CausalOrder,
    Membership,
    Message,
    Trace,
    VirtualTrace,
    chains_cross_over,
)
from repro.causality.trace import EventKind
from repro.errors import TraceError


@pytest.fixture
def two_domain_membership():
    return Membership({"D1": {"p", "q"}, "D2": {"q", "r"}})


def relay_trace():
    """p → q → r relay plus an unrelated message q → r."""
    m1 = Message("m1", "p", "q")
    m2 = Message("m2", "q", "r")
    other = Message("other", "q", "r")
    trace = Trace()
    trace.record_send(m1)
    trace.record_receive(m1)
    trace.record_send(m2)
    trace.record_send(other)
    trace.record_receive(m2)
    trace.record_receive(other)
    return trace, m1, m2, other


class TestCrossOver:
    def test_no_crossover_when_relay_is_clean(self):
        trace, m1, m2, other = relay_trace()
        chain = Chain.of(m1, m2)
        other_chain = Chain.of(other)
        assert not chains_cross_over(chain, other_chain, trace)

    def test_crossover_detected(self):
        """Another chain's message sent by the relay *between* recv(m1) and
        send(m2) — Figure 3(a)."""
        m1 = Message("m1", "p", "q")
        mid = Message("mid", "q", "r")
        m2 = Message("m2", "q", "r")
        trace = Trace()
        trace.record_send(m1)
        trace.record_receive(m1)
        trace.record_send(mid)      # interloper, between recv(m1) and send(m2)
        trace.record_send(m2)
        trace.record_receive(mid)
        trace.record_receive(m2)
        chain = Chain.of(m1, m2)
        interloper = Chain.of(mid)
        assert chains_cross_over(chain, interloper, trace)


class TestVirtualTraceValidation:
    def test_accepts_clean_chains(self, two_domain_membership):
        trace, m1, m2, other = relay_trace()
        virtual = VirtualTrace(trace, [Chain.of(m1, m2)], two_domain_membership)
        assert len(virtual.chains) == 1

    def test_rejects_crossing_chains(self):
        m1 = Message("m1", "p", "q")
        mid = Message("mid", "q", "r")
        m2 = Message("m2", "q", "r")
        trace = Trace()
        trace.record_send(m1)
        trace.record_receive(m1)
        trace.record_send(mid)
        trace.record_send(m2)
        trace.record_receive(mid)
        trace.record_receive(m2)
        with pytest.raises(TraceError):
            VirtualTrace(trace, [Chain.of(m1, m2), Chain.of(mid)])

    def test_rejects_message_in_two_chains(self):
        trace, m1, m2, _ = relay_trace()
        with pytest.raises(TraceError):
            VirtualTrace(trace, [Chain.of(m1, m2), Chain.of(m2)])

    def test_rejects_chain_invalid_in_trace(self):
        m1 = Message("m1", "p", "q")
        m2 = Message("m2", "q", "r")
        trace = Trace()
        trace.record_send(m2)      # q sends before receiving m1
        trace.record_send(m1)
        trace.record_receive(m1)
        trace.record_receive(m2)
        with pytest.raises(TraceError):
            VirtualTrace(trace, [Chain.of(m1, m2)])

    def test_rejects_non_minimal_chain_when_membership_given(self):
        mem = Membership({"D": {"p", "q", "r"}})
        trace, m1, m2, _ = relay_trace()
        # chain p→q→r lingers: p and r share D, so path is not minimal
        with pytest.raises(TraceError):
            VirtualTrace(trace, [Chain.of(m1, m2)], mem)


class TestDerivation:
    def test_chain_collapses_to_virtual_message(self, two_domain_membership):
        trace, m1, m2, other = relay_trace()
        virtual = VirtualTrace(trace, [Chain.of(m1, m2)], two_domain_membership)
        derived = virtual.derive()
        mids = {m.mid for m in derived.messages}
        assert ("virtual", 0) in mids
        assert "m1" not in mids and "m2" not in mids
        assert "other" in mids
        vmsg = derived.message(("virtual", 0))
        assert vmsg.src == "p" and vmsg.dst == "r"

    def test_derived_trace_positions_preserve_local_order(self):
        """The virtual receive lands where the chain's last hop landed, so
        delivery order relative to other messages is preserved."""
        trace, m1, m2, other = relay_trace()
        virtual = VirtualTrace(trace, [Chain.of(m1, m2)])
        derived = virtual.derive()
        vmsg = derived.message(("virtual", 0))
        other_derived = derived.message("other")
        # at r: m2 (→ virtual) was received before other
        assert derived.locally_before("r", vmsg, other_derived)

    def test_identity_virtual_trace(self):
        """Taking every message as a length-1 chain reproduces the trace."""
        trace, m1, m2, other = relay_trace()
        chains = [Chain.of(m1), Chain.of(m2), Chain.of(other)]
        derived = VirtualTrace(trace, chains).derive()
        assert len(derived.messages) == 3
        order = CausalOrder(derived)
        assert order.is_correct()

    def test_derived_causality_matches_virtual_semantics(self):
        """A violation visible only at the virtual level is exposed by the
        derived trace: relay beats the direct message."""
        n = Message("n", "p", "r")
        m1 = Message("m1", "p", "q")
        m2 = Message("m2", "q", "r")
        trace = Trace.from_histories(
            {
                "p": [(EventKind.SEND, n), (EventKind.SEND, m1)],
                "q": [(EventKind.RECEIVE, m1), (EventKind.SEND, m2)],
                "r": [(EventKind.RECEIVE, m2), (EventKind.RECEIVE, n)],
            }
        )
        virtual = VirtualTrace(trace, [Chain.of(m1, m2)])
        derived = virtual.derive()
        order = CausalOrder(derived)
        assert not order.respects_causality()
