"""Tests for the two CLIs: repro.topology ops and repro.bench figures."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.topology.__main__ import main as topology_main


@pytest.fixture
def figure2_file(tmp_path, figure2_topology):
    mapping = {d.domain_id: list(d.servers) for d in figure2_topology.domains}
    path = tmp_path / "fig2.json"
    path.write_text(json.dumps(mapping))
    return str(path)


@pytest.fixture
def ring_file(tmp_path):
    path = tmp_path / "ring.json"
    path.write_text(json.dumps({"d0": [0, 1], "d1": [1, 2], "d2": [2, 0]}))
    return str(path)


class TestTopologyCli:
    def test_describe(self, figure2_file, capsys):
        assert topology_main(["describe", figure2_file]) == 0
        out = capsys.readouterr().out
        assert "8 servers" in out
        assert "S2*" in out

    def test_describe_warns_on_cycle(self, ring_file, capsys):
        assert topology_main(["describe", ring_file]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_validate_ok(self, figure2_file, capsys):
        assert topology_main(["validate", figure2_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_rejects_ring(self, ring_file, capsys):
        assert topology_main(["validate", ring_file]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_repair_ring_and_write(self, ring_file, tmp_path, capsys):
        target = str(tmp_path / "fixed.json")
        assert topology_main(["repair", ring_file, "--write", target]) == 0
        fixed = json.loads(open(target).read())
        assert topology_main(["validate", target]) == 0

    def test_cost_route(self, figure2_file, capsys):
        code = topology_main(
            ["cost", figure2_file, "--src", "0", "--dst", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "S0 -> S2 -> S6 -> S7" in out
        assert "3 hop(s)" in out

    def test_generate_roundtrips_through_validate(self, tmp_path, capsys):
        assert topology_main(["generate", "bus", "--servers", "20"]) == 0
        mapping = json.loads(capsys.readouterr().out)
        path = tmp_path / "generated.json"
        path.write_text(json.dumps(mapping))
        assert topology_main(["validate", str(path)]) == 0

    def test_errors_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"d": [0, 5]}))  # non-dense ids
        assert topology_main(["describe", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestBenchCli:
    def test_single_figure(self, capsys):
        assert bench_main(["local"]) == 0
        out = capsys.readouterr().out
        assert "Unicast on the local server" in out
        assert "regenerated in" in out

    def test_rounds_override(self, capsys):
        assert bench_main(["fig7", "--rounds", "2"]) == 0
        assert "Figure 7" in capsys.readouterr().out
