"""Unit tests for the network (latency, loss, partitions) and the reliable
transport (retransmission, dedup, crash/restart)."""

import random

import pytest

from repro.errors import SimulationError, TransportError
from repro.simulation import (
    ConstantLatency,
    ExponentialLatency,
    Network,
    ReliableTransport,
    Simulator,
    UniformLatency,
)


class TestLatencyModels:
    def test_constant(self):
        rng = random.Random(0)
        assert ConstantLatency(3.0).sample(rng) == 3.0

    def test_uniform_within_bounds(self):
        rng = random.Random(0)
        model = UniformLatency(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 2.0

    def test_exponential_above_floor(self):
        rng = random.Random(0)
        model = ExponentialLatency(mean=5.0, floor=0.5)
        for _ in range(100):
            assert model.sample(rng) >= 0.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            ConstantLatency(-1.0)
        with pytest.raises(SimulationError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(SimulationError):
            ExponentialLatency(0.0)


class TestNetwork:
    def make(self, **kwargs):
        sim = Simulator()
        net = Network(sim, **kwargs)
        return sim, net

    def test_packet_arrives_after_latency(self):
        sim, net = self.make(latency=ConstantLatency(4.0))
        got = []
        net.attach(1, lambda src, p: got.append((sim.now, src, p)))
        net.transmit(0, 1, "hello")
        sim.run_until_idle()
        assert got == [(4.0, 0, "hello")]

    def test_loopback_rejected(self):
        sim, net = self.make()
        with pytest.raises(SimulationError):
            net.transmit(0, 0, "x")

    def test_loss_drops_packets(self):
        sim, net = self.make(loss_rate=0.5, rng=random.Random(1))
        got = []
        net.attach(1, lambda src, p: got.append(p))
        for i in range(100):
            net.transmit(0, 1, i)
        sim.run_until_idle()
        assert 20 < len(got) < 80
        assert net.packets_dropped == 100 - len(got)

    def test_partition_blocks_both_directions(self):
        sim, net = self.make()
        got = []
        net.attach(0, lambda src, p: got.append(p))
        net.attach(1, lambda src, p: got.append(p))
        net.partition(0, 1)
        net.transmit(0, 1, "a")
        net.transmit(1, 0, "b")
        sim.run_until_idle()
        assert got == []
        net.heal(0, 1)
        net.transmit(0, 1, "c")
        sim.run_until_idle()
        assert got == ["c"]

    def test_detached_endpoint_drops_in_flight(self):
        sim, net = self.make(latency=ConstantLatency(5.0))
        got = []
        net.attach(1, lambda src, p: got.append(p))
        net.transmit(0, 1, "x")
        net.detach(1)
        sim.run_until_idle()
        assert got == []
        assert net.packets_dropped == 1

    def test_cells_accounting(self):
        sim, net = self.make()
        net.attach(1, lambda src, p: None)
        net.transmit(0, 1, "x", cells=25)
        net.transmit(0, 1, "y", cells=25)
        assert net.cells_transmitted == 50

    def test_double_attach_rejected(self):
        sim, net = self.make()
        net.attach(1, lambda s, p: None)
        with pytest.raises(SimulationError):
            net.attach(1, lambda s, p: None)


class TestReliableTransport:
    def make_pair(self, loss_rate=0.0, seed=0, latency=None):
        sim = Simulator()
        net = Network(
            sim,
            latency=latency or ConstantLatency(1.0),
            loss_rate=loss_rate,
            rng=random.Random(seed),
        )
        got_a, got_b = [], []
        a = ReliableTransport(sim, net, 0, lambda s, p: got_a.append((s, p)),
                              retransmit_ms=10.0)
        b = ReliableTransport(sim, net, 1, lambda s, p: got_b.append((s, p)),
                              retransmit_ms=10.0)
        return sim, net, a, b, got_a, got_b

    def test_lossless_delivery(self):
        sim, net, a, b, got_a, got_b = self.make_pair()
        a.send(1, "hello")
        sim.run_until_idle()
        assert got_b == [(0, "hello")]
        assert a.in_flight == 0

    def test_delivery_despite_heavy_loss(self):
        sim, net, a, b, got_a, got_b = self.make_pair(loss_rate=0.4, seed=3)
        for i in range(30):
            a.send(1, i)
        sim.run_until_idle()
        assert sorted(p for _, p in got_b) == list(range(30))
        assert a.retransmissions > 0

    def test_exactly_once_despite_duplicate_acks_lost(self):
        """Lost ACKs cause retransmission of already-delivered packets;
        the receiver must suppress them."""
        sim, net, a, b, got_a, got_b = self.make_pair(loss_rate=0.5, seed=9)
        for i in range(20):
            a.send(1, i)
        sim.run_until_idle()
        assert len(got_b) == 20
        assert b.duplicates_suppressed >= 0  # suppressed, not re-delivered

    def test_give_up_raises(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(1.0))
        a = ReliableTransport(sim, net, 0, lambda s, p: None,
                              retransmit_ms=1.0, max_attempts=3)
        net.partition(0, 1)
        a.send(1, "void")
        with pytest.raises(TransportError):
            sim.run_until_idle()

    def test_stop_cancels_outstanding(self):
        sim, net, a, b, got_a, got_b = self.make_pair()
        net.partition(0, 1)
        a.send(1, "x")
        a.stop()
        sim.run_until_idle()  # no retransmission storm, no error
        assert a.in_flight == 0

    def test_send_while_stopped_rejected(self):
        sim, net, a, b, *_ = self.make_pair()
        a.stop()
        with pytest.raises(TransportError):
            a.send(1, "x")

    def test_restart_delivers_to_new_handler(self):
        sim, net, a, b, got_a, got_b = self.make_pair()
        b.stop()
        after = []
        b.restart(lambda s, p: after.append(p))
        a.send(1, "fresh")
        sim.run_until_idle()
        assert after == ["fresh"]
        assert got_b == []

    def test_restart_without_stop_rejected(self):
        sim, net, a, b, *_ = self.make_pair()
        with pytest.raises(TransportError):
            a.restart()

    def test_receiver_outage_bridged_by_retransmission(self):
        sim, net, a, b, got_a, got_b = self.make_pair()
        b.stop()
        a.send(1, "patient")
        sim.run(until=25.0)
        assert got_b == []
        after = []
        b.restart(lambda s, p: after.append(p))
        sim.run_until_idle()
        assert after == ["patient"]

    def test_unordered_under_jitter(self):
        """The transport intentionally does NOT provide FIFO."""
        sim = Simulator()
        net = Network(sim, latency=UniformLatency(0.1, 20.0),
                      rng=random.Random(5))
        got = []
        ReliableTransport(sim, net, 1, lambda s, p: got.append(p))
        a = ReliableTransport(sim, net, 0, lambda s, p: None)
        for i in range(30):
            a.send(1, i)
        sim.run_until_idle()
        assert sorted(got) == list(range(30))
        assert got != sorted(got)  # with this seed, reordering does occur
