"""Unit tests for the causal-precedence relation ≺ and the delivery
predicates (§4.2)."""

import pytest

from repro.causality import CausalOrder, Message, Trace
from repro.causality.trace import EventKind


def msg(mid, src, dst):
    return Message(mid, src, dst)


class TestPrecedenceRules:
    def test_rule1_same_sender(self):
        trace = Trace()
        m1, m2 = msg(1, "p", "q"), msg(2, "p", "r")
        trace.record_send(m1)
        trace.record_send(m2)
        order = CausalOrder(trace)
        assert order.precedes(m1, m2)
        assert not order.precedes(m2, m1)

    def test_rule2_receive_then_send(self):
        trace = Trace()
        m1, m2 = msg(1, "p", "q"), msg(2, "q", "r")
        trace.record_send(m1)
        trace.record_receive(m1)
        trace.record_send(m2)
        order = CausalOrder(trace)
        assert order.precedes(m1, m2)

    def test_rule2_requires_receive_before_send(self):
        trace = Trace()
        m2 = msg(2, "q", "r")
        m1 = msg(1, "p", "q")
        trace.record_send(m2)      # q sends first...
        trace.record_send(m1)
        trace.record_receive(m1)   # ...then receives m1
        order = CausalOrder(trace)
        assert not order.precedes(m1, m2)

    def test_rule3_transitivity(self):
        trace = Trace()
        m1 = msg(1, "p", "q")
        m2 = msg(2, "q", "r")
        m3 = msg(3, "r", "s")
        trace.record_send(m1)
        trace.record_receive(m1)
        trace.record_send(m2)
        trace.record_receive(m2)
        trace.record_send(m3)
        order = CausalOrder(trace)
        assert order.precedes(m1, m3)

    def test_no_spurious_link_send_then_receive(self):
        """p sends m1 then receives m2: neither precedes the other through
        p (receives link forward only to later sends)."""
        trace = Trace()
        m1 = msg(1, "p", "q")
        m2 = msg(2, "r", "p")
        trace.record_send(m1)
        trace.record_send(m2)
        trace.record_receive(m2)
        order = CausalOrder(trace)
        assert order.concurrent(m1, m2)

    def test_irreflexive(self):
        trace = Trace()
        m = msg(1, "p", "q")
        trace.record_send(m)
        order = CausalOrder(trace)
        assert not order.precedes(m, m)

    def test_concurrent_symmetric(self):
        trace = Trace()
        ma = msg(1, "a", "c")
        mb = msg(2, "b", "c")
        trace.record_send(ma)
        trace.record_send(mb)
        order = CausalOrder(trace)
        assert order.concurrent(ma, mb)
        assert order.concurrent(mb, ma)


class TestCorrectness:
    def test_ordinary_trace_is_correct(self):
        trace = Trace()
        m = msg(1, "p", "q")
        trace.record_send(m)
        trace.record_receive(m)
        assert CausalOrder(trace).is_correct()

    def test_cyclic_precedence_detected(self):
        """Figure 12(a)-style break: build ≺-antisymmetry violation via
        from_histories (receives placed before sends locally)."""
        l = msg("l", "p", "q")
        m = msg("m", "q", "p")
        trace = Trace.from_histories(
            {
                # p receives m, then sends l  => m ≺ l
                "p": [(EventKind.RECEIVE, m), (EventKind.SEND, l)],
                # q receives l, then sends m  => l ≺ m
                "q": [(EventKind.RECEIVE, l), (EventKind.SEND, m)],
            }
        )
        assert not CausalOrder(trace).is_correct()


class TestDeliveryPredicate:
    def test_in_order_delivery_respects(self):
        trace = Trace()
        m1, m2 = msg(1, "p", "q"), msg(2, "p", "q")
        trace.record_send(m1)
        trace.record_send(m2)
        trace.record_receive(m1)
        trace.record_receive(m2)
        order = CausalOrder(trace)
        assert order.respects_causality()
        assert order.delivery_violations() == []

    def test_fifo_violation_detected(self):
        trace = Trace()
        m1, m2 = msg(1, "p", "q"), msg(2, "p", "q")
        trace.record_send(m1)
        trace.record_send(m2)
        trace.record_receive(m2)
        trace.record_receive(m1)
        order = CausalOrder(trace)
        violations = order.delivery_violations()
        assert len(violations) == 1
        process, earlier, later = violations[0]
        assert process == "q"
        assert earlier == m1
        assert later == m2

    def test_triangle_violation_detected(self):
        """p→q direct slower than p→r→q relay: classic causal anomaly."""
        n = msg("n", "p", "q")
        m1 = msg("m1", "p", "r")
        m2 = msg("m2", "r", "q")
        trace = Trace.from_histories(
            {
                "p": [(EventKind.SEND, n), (EventKind.SEND, m1)],
                "r": [(EventKind.RECEIVE, m1), (EventKind.SEND, m2)],
                "q": [(EventKind.RECEIVE, m2), (EventKind.RECEIVE, n)],
            }
        )
        order = CausalOrder(trace)
        assert order.is_correct()
        assert not order.respects_causality()

    def test_concurrent_any_order_is_fine(self):
        trace = Trace()
        ma = msg(1, "a", "c")
        mb = msg(2, "b", "c")
        trace.record_send(ma)
        trace.record_send(mb)
        trace.record_receive(mb)
        trace.record_receive(ma)
        assert CausalOrder(trace).respects_causality()
