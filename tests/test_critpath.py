"""The critical-path profiler: exact attribution, the run-level walk,
the CLI, and the Chrome-trace overlay.

The headline contract (gated in ``tools/bench_baseline.json`` too): for
every delivered message, the five categories {transit, hop_relay,
causal_holdback, queue, processing} sum to the measured end-to-end
sim-time latency *bit-identically* — no float slack, on routed and
held-back deliveries alike.
"""

import json
import os
from fractions import Fraction

import pytest

from repro.mom.agent import EchoAgent, FunctionAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.obs import attach
from repro.obs.critpath import (
    CATEGORIES,
    CriticalPathAnalyzer,
    critpath_spans,
)
from repro.obs.__main__ import main
from repro.simulation.network import UniformLatency
from repro.topology.builders import bus as bus_topology
from repro.topology.builders import single_domain


def _run_traced(topology, *, seed=7, jitter=True, loss=0.1, sends=10,
                target=None):
    """A traced fan-in run; jitter + loss exercises hold-back."""
    kwargs = {}
    if jitter:
        kwargs["latency"] = UniformLatency(0.1, 20.0)
        kwargs["loss_rate"] = loss
    mom = MessageBus(BusConfig(topology=topology, seed=seed, **kwargs))
    tracer = attach(mom)
    if target is None:
        target = topology.server_count - 1
    echo_id = mom.deploy(EchoAgent(), target)
    sender = FunctionAgent(lambda ctx, s, p: None)

    def boot(ctx):
        for i in range(sends):
            ctx.send(echo_id, i)

    sender.on_boot = boot
    mom.deploy(sender, 0)
    mom.start()
    mom.run_until_idle()
    return tracer.ring.events()


@pytest.fixture(scope="module")
def jittery_analyzer():
    """Routed + held-back + retransmitted: the hard case."""
    events = _run_traced(bus_topology(12, 4), target=9)
    assert any(e.kind == "holdback_enter" for e in events)
    assert any(e.kind == "retransmit" for e in events)
    return CriticalPathAnalyzer(events)


class TestExactAttribution:
    def test_every_delivery_decomposes_exactly(self, jittery_analyzer):
        nids = jittery_analyzer.delivered_nids()
        assert len(nids) >= 10
        for nid in nids:
            b = jittery_analyzer.breakdown(nid)
            assert b is not None
            assert b.is_exact(), f"nid {nid}: attribution not exact"
            # the exact identity, spelled out: sum of category Fractions
            # equals the exact timestamp difference
            assert sum(b.totals.values(), Fraction(0)) == (
                Fraction(b.delivered_at) - Fraction(b.sent_at)
            )
            # ... and its correctly-rounded float equals the recorded
            # end-to-end latency of the reaction_commit event
            if b.e2e_value > 0:
                assert b.e2e_ms == b.e2e_value

    def test_segments_tile_the_timeline(self, jittery_analyzer):
        for nid in jittery_analyzer.delivered_nids():
            b = jittery_analyzer.breakdown(nid)
            segs = b.segments
            assert segs[0].t0 == b.sent_at
            assert segs[-1].t1 == b.delivered_at
            for left, right in zip(segs, segs[1:]):
                assert left.t1 == right.t0, "segments must tile, no gaps"
                assert left.category != right.category, (
                    "maximal same-category runs must be merged"
                )
            for seg in segs:
                assert seg.category in CATEGORIES
                assert seg.ms >= 0

    def test_held_messages_show_causal_holdback(self, jittery_analyzer):
        held = {
            e.nid
            for e in jittery_analyzer._events
            if e.kind == "holdback_enter"
        }
        delivered_held = held & set(jittery_analyzer.delivered_nids())
        assert delivered_held, "fixture must deliver a held-back message"
        for nid in delivered_held:
            b = jittery_analyzer.breakdown(nid)
            assert b.totals["causal_holdback"] > 0

    def test_routed_delivery_has_hop_relay(self, jittery_analyzer):
        for nid in jittery_analyzer.delivered_nids():
            b = jittery_analyzer.breakdown(nid)
            if len(b.route) > 2:  # crossed at least one router
                assert b.totals["hop_relay"] > 0
                break
        else:
            pytest.fail("bus(12,4) traffic must cross routers")

    def test_single_domain_has_no_relay(self):
        events = _run_traced(single_domain(4), jitter=False, sends=3)
        analyzer = CriticalPathAnalyzer(events)
        nids = analyzer.delivered_nids()
        assert nids
        for nid in nids:
            b = analyzer.breakdown(nid)
            assert b.is_exact()
            assert len(b.route) == 2  # sender -> target, one hop
            # no routers to relay through — but in-domain hold-back is
            # still possible (a later send arriving before an earlier
            # one committed), so only hop_relay must vanish
            assert b.totals["hop_relay"] == 0
            assert b.totals["transit"] > 0
            assert b.totals["processing"] > 0

    def test_unknown_nid_is_none(self, jittery_analyzer):
        assert jittery_analyzer.breakdown(999999) is None

    def test_category_summary_aggregates_exactly(self, jittery_analyzer):
        summary = jittery_analyzer.category_summary()
        assert summary["exact"] is True
        assert summary["deliveries"] == len(
            jittery_analyzer.delivered_nids()
        )
        shares = sum(
            row["share"] for row in summary["categories"].values()
        )
        assert shares == pytest.approx(1.0)
        total = sum(row["ms"] for row in summary["categories"].values())
        assert total == pytest.approx(summary["e2e_ms_total"])


class TestRunCriticalPath:
    def test_path_ends_at_last_delivery(self, jittery_analyzer):
        steps = jittery_analyzer.run_critical_path()
        assert steps, "completed run must have a critical path"
        last = max(
            (
                e
                for e in jittery_analyzer._events
                if e.kind == "reaction_commit" and e.nid >= 0
            ),
            key=lambda e: (e.t, e.nid),
        )
        assert steps[-1].nid == last.nid  # root-cause-first ordering
        for step in steps:
            assert step.is_exact()

    def test_chain_links_through_releasing_commits(self, jittery_analyzer):
        steps = jittery_analyzer.run_critical_path()
        for earlier, later in zip(steps, steps[1:]):
            waits = jittery_analyzer.waits(later.nid)
            blockers = {
                w["blocker_nid"]
                for w in waits
                if w["blocker_nid"] is not None
            }
            assert earlier.nid in blockers

    def test_waits_blockers_precede_releases(self, jittery_analyzer):
        checked = 0
        for nid in jittery_analyzer.delivered_nids():
            for wait in jittery_analyzer.waits(nid):
                if wait["released_at"] is None:
                    continue
                assert wait["entered_at"] <= wait["released_at"]
                if wait["blocker_nid"] is not None:
                    assert wait["blocker_nid"] != nid
                    checked += 1
        assert checked > 0


class TestChromeOverlay:
    def test_spans_are_balanced_async_pairs(self, jittery_analyzer):
        spans = critpath_spans(jittery_analyzer._events)
        assert spans and len(spans) % 2 == 0
        assert {s["cat"] for s in spans} == {"critpath"}
        begins = [s for s in spans if s["ph"] == "b"]
        ends = [s for s in spans if s["ph"] == "e"]
        assert len(begins) == len(ends)
        assert {s["id"] for s in begins} == {s["id"] for s in ends}
        for span in spans:
            assert span["args"]["category"] in CATEGORIES


@pytest.fixture(scope="module")
def demo_dump(tmp_path_factory):
    root = tmp_path_factory.mktemp("critpath-cli")
    assert main(
        ["record", "--servers", "10", "--domain-size", "4",
         "--rounds", "5", "--seed", "0", "-o", str(root)]
    ) == 0
    (artifact,) = os.listdir(root)
    return str(root / artifact)


def _delivered_nid(dump_dir):
    with open(os.path.join(dump_dir, "events.jsonl")) as stream:
        for line in stream:
            row = json.loads(line)
            if (
                row.get("record") == "event"
                and row["kind"] == "reaction_commit"
                and row["nid"] >= 0
            ):
                return row["nid"]
    raise AssertionError("demo run delivered nothing")


class TestCli:
    def test_critpath_one_delivery(self, demo_dump, capsys):
        nid = _delivered_nid(demo_dump)
        assert main(["critpath", str(nid), demo_dump]) == 0
        out = capsys.readouterr().out
        assert f"message {nid}" in out
        for name in CATEGORIES:
            assert name in out
        assert "[exact: categories sum to the measured latency]" in out

    def test_critpath_run_summary(self, demo_dump, capsys):
        assert main(["critpath", "--run", demo_dump]) == 0
        out = capsys.readouterr().out
        assert "run critical path:" in out
        assert "run summary:" in out
        assert "INEXACT" not in out

    def test_critpath_needs_nid_or_run(self, demo_dump, capsys):
        assert main(["critpath", demo_dump]) == 2

    def test_critpath_unknown_nid(self, demo_dump, capsys):
        assert main(["critpath", "999999", demo_dump]) == 1

    def test_export_overlays_critical_path(self, demo_dump, tmp_path,
                                           capsys):
        out_path = str(tmp_path / "with.json")
        assert main(
            ["export", demo_dump, "--chrome", "-o", out_path]
        ) == 0
        with open(out_path) as stream:
            doc = json.load(stream)
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "critpath" in cats

        bare_path = str(tmp_path / "without.json")
        assert main(
            ["export", demo_dump, "--chrome", "--no-critpath",
             "-o", bare_path]
        ) == 0
        with open(bare_path) as stream:
            bare = json.load(stream)
        assert "critpath" not in {
            e.get("cat") for e in bare["traceEvents"]
        }
