"""The flight recorder: post-mortem dumps on failure paths.

On a :class:`SanitizerViolation` (or an unhandled exception during a
traced run) every live tracer dumps its ring, Chrome trace and per-server
state to an artifact directory, and the violation message points at it.
"""

import json
import os

import pytest

from repro.analysis.sanitizer import SanitizerViolation
from repro.mom.agent import EchoAgent
from repro.mom.bus import MessageBus
from repro.mom.config import BusConfig
from repro.mom.workloads import PingPongDriver
from repro.obs import flight_recorder
from repro.obs.export import read_jsonl
from repro.obs.tracer import attach
from repro.topology.builders import bus as bus_topology
from repro.topology.builders import single_domain


def traced_pingpong(topology=None, rounds=3):
    mom = MessageBus(BusConfig(topology=topology or single_domain(4)))
    tracer = attach(mom)
    echo_id = mom.deploy(EchoAgent(), mom.config.topology.server_count - 1)
    driver = PingPongDriver(rounds)
    driver.bind(echo_id)
    mom.deploy(driver, 0)
    mom.start()
    mom.run_until_idle()
    return mom, tracer


class TestDumpArtifact:
    def test_dump_writes_all_three_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        _, tracer = traced_pingpong()
        path = flight_recorder.dump(tracer, reason="unit test!")
        assert os.path.dirname(path) == str(tmp_path)
        assert "unit-test" in os.path.basename(path)
        files = sorted(os.listdir(path))
        assert files == ["events.jsonl", "state.json", "trace.json"]

    def test_events_artifact_reloads_as_dump(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        _, tracer = traced_pingpong()
        path = flight_recorder.dump(tracer)
        with open(os.path.join(path, "events.jsonl")) as stream:
            dump = read_jsonl(stream)
        assert dump.meta["next_seq"] == tracer.ring.next_seq
        assert dump.events == tracer.events()

    def test_state_artifact_describes_every_server(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        mom, tracer = traced_pingpong(topology=bus_topology(8, 4))
        path = flight_recorder.dump(tracer, reason="state-check")
        with open(os.path.join(path, "state.json")) as stream:
            state = json.load(stream)
        assert state["reason"] == "state-check"
        assert state["sim_now_ms"] == mom.sim.now
        servers = state["servers"]
        assert sorted(int(k) for k in servers) == list(
            mom.config.topology.servers
        )
        for entry in servers.values():
            assert entry["crashed"] is False
            assert "clocks" in entry


class TestAutodump:
    def test_capped_per_tracer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        _, tracer = traced_pingpong()
        paths = [
            flight_recorder.autodump(tracer, "cap-check") for _ in range(5)
        ]
        assert all(p is not None for p in paths[: flight_recorder.MAX_AUTODUMPS])
        assert all(p is None for p in paths[flight_recorder.MAX_AUTODUMPS :])

    def test_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_OBS_AUTODUMP", "0")
        _, tracer = traced_pingpong()
        assert flight_recorder.autodump(tracer, "disabled") is None
        assert os.listdir(tmp_path) == []


class TestSanitizerIntegration:
    def test_violation_message_points_at_flight_record(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        _, tracer = traced_pingpong()
        error = SanitizerViolation("unit-kind", "something broke")
        assert error.artifact is not None
        assert f"[flight record: {error.artifact}]" in str(error)
        assert "violation-unit-kind" in os.path.basename(error.artifact)
        assert os.path.exists(os.path.join(error.artifact, "events.jsonl"))
        assert tracer.ring.next_seq > 0

    def test_violation_without_tracing_has_no_artifact(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        import gc

        gc.collect()  # tracer<->bus cycles from earlier tests
        if flight_recorder._live_tracers():
            pytest.skip("another live tracer in this process would dump")
        error = SanitizerViolation("unit-kind", "something broke")
        assert error.artifact is None
        assert "[flight record:" not in str(error)


class TestCrashEvents:
    def test_crash_and_recover_recorded(self):
        mom, tracer = traced_pingpong(topology=single_domain(4), rounds=8)
        # run again with a mid-stream crash of the echo server
        mom = MessageBus(BusConfig(topology=single_domain(4)))
        tracer = attach(mom)
        echo_id = mom.deploy(EchoAgent(), 3)
        driver = PingPongDriver(8)
        driver.bind(echo_id)
        mom.deploy(driver, 0)
        mom.sim.schedule_at(5.0, lambda: mom.server(3).crash())
        mom.sim.schedule_at(250.0, lambda: mom.server(3).recover())
        mom.start()
        mom.run_until_idle()
        kinds = [
            (e.kind, e.server)
            for e in tracer.events()
            if e.kind in ("crash", "recover")
        ]
        assert kinds == [("crash", 3), ("recover", 3)]
        crash, recover = (
            e for e in tracer.events() if e.kind in ("crash", "recover")
        )
        assert crash.t == 5.0
        assert recover.t == 250.0
        assert crash.nid == -1
