"""Property-based end-to-end tests: random topologies × random workloads ×
adversarial networks ⇒ causal delivery always holds (the P2 ⇒ P1 direction
of the theorem, hammered statistically)."""

import random as pyrandom

from hypothesis import given, settings, strategies as st

from repro.causality import CausalOrder, Message, Trace
from repro.mom import BusConfig, MessageBus
from repro.mom.agent import Agent
from repro.simulation.network import UniformLatency
from repro.topology.builders import bus, daisy, single_domain, tree
from repro.topology.graph import validate_topology


class ScriptedAgent(Agent):
    """Plays a fixed script: on boot sends its initial batch; every receipt
    of a forward-counter > 0 forwards to a scripted next target."""

    def __init__(self):
        super().__init__()
        self.initial = []      # list of (target AgentId, hops)
        self.forward_to = {}   # hops -> target AgentId
        self.received = []

    def on_boot(self, ctx):
        for target, hops in self.initial:
            ctx.send(target, hops)

    def react(self, ctx, sender, payload):
        self.received.append((sender, payload))
        if payload > 0:
            target = self.forward_to.get(payload)
            if target is not None and target != ctx.my_id:
                ctx.send(target, payload - 1)


topology_params = st.sampled_from(
    [
        ("flat", 6, 0),
        ("flat", 10, 0),
        ("bus", 9, 3),
        ("bus", 12, 4),
        ("daisy", 10, 4),
        ("tree", 10, 3),
    ]
)


def build_topology(kind, n, size):
    if kind == "flat":
        return single_domain(n)
    if kind == "bus":
        return bus(n, size)
    if kind == "daisy":
        return daisy(n, size)
    return tree(n, fanout=2, domain_size=size)


@given(
    params=topology_params,
    seed=st.integers(min_value=0, max_value=10_000),
    messages=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=25, deadline=None)
def test_random_workload_is_always_causal(params, seed, messages):
    kind, n, size = params
    topology = build_topology(kind, n, size)
    validate_topology(topology)
    config = BusConfig(
        topology=topology,
        seed=seed,
        latency=UniformLatency(0.1, 30.0),
        clock_algorithm="updates" if seed % 2 else "matrix",
    )
    mom = MessageBus(config)
    agents = [ScriptedAgent() for _ in topology.servers]
    ids = [mom.deploy(agent, server) for agent, server in zip(agents, topology.servers)]

    rng = pyrandom.Random(seed)
    for agent in agents:
        for _ in range(rng.randint(0, max(1, messages // len(agents)))):
            target = rng.choice(ids)
            if target != agent.agent_id:
                agent.initial.append((target, rng.randint(0, 3)))
        for hops in range(1, 4):
            agent.forward_to[hops] = rng.choice(ids)

    mom.start()
    mom.run_until_idle()
    report = mom.check_app_causality()
    assert report.respects_causality, report.summary()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_crash_during_random_workload_keeps_causality(seed):
    topology = bus(9, 3)
    config = BusConfig(
        topology=topology,
        seed=seed,
        latency=UniformLatency(0.1, 10.0),
    )
    mom = MessageBus(config)
    agents = [ScriptedAgent() for _ in topology.servers]
    ids = [mom.deploy(a, s) for a, s in zip(agents, topology.servers)]
    rng = pyrandom.Random(seed)
    for agent in agents:
        target = rng.choice(ids)
        if target != agent.agent_id:
            agent.initial.append((target, 2))
        for hops in range(1, 3):
            agent.forward_to[hops] = rng.choice(ids)

    victim = rng.choice(list(topology.servers))
    crash_at = rng.uniform(5.0, 60.0)
    mom.sim.schedule_at(crash_at, lambda: mom.server(victim).crash())
    mom.sim.schedule_at(
        crash_at + rng.uniform(50.0, 200.0),
        lambda: mom.server(victim).recover(),
    )
    mom.start()
    mom.run_until_idle()
    report = mom.check_app_causality()
    assert report.respects_causality, report.summary()
    # exactly-once: nothing received twice
    for agent in agents:
        nids = [p for _, p in agent.received]
        # payload values repeat; use the app trace instead for uniqueness
    trace = mom.app_trace
    mids = [m.mid for m in trace.messages]
    assert len(mids) == len(set(mids))


random_trace_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # src
        st.integers(min_value=0, max_value=3),  # dst
    ).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=20,
)


@given(ops=random_trace_ops, seed=st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_trace_checker_accepts_any_fifo_delivery(ops, seed):
    """Sanity of the oracle itself: a trace whose receives happen in global
    send order (a causal total order) always respects causality."""
    trace = Trace()
    messages = []
    for index, (src, dst) in enumerate(ops):
        m = Message(index, src, dst)
        trace.record_send(m)
        messages.append(m)
        trace.record_receive(m)
    order = CausalOrder(trace)
    assert order.is_correct()
    assert order.respects_causality()


@given(ops=random_trace_ops)
@settings(max_examples=60, deadline=None)
def test_precedence_is_a_strict_partial_order(ops):
    """Irreflexive + transitive + antisymmetric on correct traces."""
    trace = Trace()
    messages = []
    for index, (src, dst) in enumerate(ops):
        m = Message(index, src, dst)
        trace.record_send(m)
        trace.record_receive(m)
        messages.append(m)
    order = CausalOrder(trace)
    for a in messages:
        assert not order.precedes(a, a)
        for b in messages:
            if order.precedes(a, b):
                assert not order.precedes(b, a)
                for c in messages:
                    if order.precedes(b, c):
                        assert order.precedes(a, c)
