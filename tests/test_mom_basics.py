"""MOM integration tests: deployment, local bus, remote delivery, routing
transparency, engine atomicity basics."""

import pytest

from repro.errors import AgentError, ConfigurationError, RoutingError
from repro.mom import (
    AgentId,
    BusConfig,
    EchoAgent,
    FunctionAgent,
    MessageBus,
)
from repro.mom.agent import Agent
from repro.topology import bus as bus_topology
from repro.topology import from_domain_map, single_domain


class Recorder(Agent):
    """Keeps every (sender, payload) it receives, in order."""

    def __init__(self):
        super().__init__()
        self.log = []

    def react(self, ctx, sender, payload):
        self.log.append((sender, payload))


class TestDeployment:
    def test_agent_ids_are_per_server_sequential(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        first = mom.deploy(EchoAgent(), 0)
        second = mom.deploy(EchoAgent(), 0)
        other = mom.deploy(EchoAgent(), 1)
        assert first == AgentId(0, 0)
        assert second == AgentId(0, 1)
        assert other == AgentId(1, 0)

    def test_deploy_after_start_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        mom.start()
        with pytest.raises(ConfigurationError):
            mom.deploy(EchoAgent(), 0)

    def test_double_start_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        mom.start()
        with pytest.raises(ConfigurationError):
            mom.start()

    def test_unknown_server_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        with pytest.raises(ConfigurationError):
            mom.deploy(EchoAgent(), 5)

    def test_agent_cannot_be_deployed_twice(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        agent = EchoAgent()
        mom.deploy(agent, 0)
        with pytest.raises(AgentError):
            mom.deploy(agent, 1)


class TestLocalBus:
    def test_same_server_messaging_without_network(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        sink = Recorder()
        sink_id = mom.deploy(sink, 0)
        pinger = FunctionAgent(lambda ctx, s, p: None)
        pinger.on_boot = lambda ctx: ctx.send(sink_id, "local")
        mom.deploy(pinger, 0)
        mom.start()
        mom.run_until_idle()
        assert [p for _, p in sink.log] == ["local"]
        assert mom.network.packets_sent == 0

    def test_local_fifo_order(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        sink = Recorder()
        sink_id = mom.deploy(sink, 0)
        pinger = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            for i in range(5):
                ctx.send(sink_id, i)

        pinger.on_boot = boot
        mom.deploy(pinger, 0)
        mom.start()
        mom.run_until_idle()
        assert [p for _, p in sink.log] == [0, 1, 2, 3, 4]

    def test_agent_may_send_to_itself(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))

        class SelfTalker(Agent):
            def __init__(self):
                super().__init__()
                self.count = 0

            def on_boot(self, ctx):
                ctx.send(ctx.my_id, 3)

            def react(self, ctx, sender, payload):
                self.count += 1
                if payload > 1:
                    ctx.send(ctx.my_id, payload - 1)

        talker = SelfTalker()
        mom.deploy(talker, 0)
        mom.start()
        mom.run_until_idle()
        assert talker.count == 3
        # self-sends never enter the app trace (src == dst)
        assert mom.app_trace.messages == []


class TestRemoteDelivery:
    def test_single_domain_round_trip(self):
        mom = MessageBus(BusConfig(topology=single_domain(3)))
        echo = EchoAgent()
        echo_id = mom.deploy(echo, 2)
        sink = Recorder()
        mom.deploy(sink, 0)
        pinger = FunctionAgent(lambda ctx, s, p: sink.log.append((s, p)))
        pinger.on_boot = lambda ctx: ctx.send(echo_id, "ping")
        mom.deploy(pinger, 0)
        mom.start()
        mom.run_until_idle()
        assert echo.echoed == 1
        assert [p for _, p in sink.log] == ["ping"]

    def test_multi_hop_routing_is_transparent(self, figure2_topology):
        """S1's agent addresses S8's agent directly; the 3-hop route is
        the system's business (§4.1)."""
        mom = MessageBus(BusConfig(topology=figure2_topology))
        sink = Recorder()
        sink_id = mom.deploy(sink, 7)
        sender = FunctionAgent(lambda ctx, s, p: None)
        sender.on_boot = lambda ctx: ctx.send(sink_id, "across")
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        assert [p for _, p in sink.log] == ["across"]
        # 3 hops means 3 channel sends for 1 notification
        assert mom.metrics.counter("channel.hops_sent").value == 3
        assert mom.metrics.counter("channel.forwarded").value == 2

    def test_cross_domain_fifo(self):
        topo = bus_topology(12, 4)
        mom = MessageBus(BusConfig(topology=topo))
        sink = Recorder()
        sink_id = mom.deploy(sink, 9)
        sender = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            for i in range(10):
                ctx.send(sink_id, i)

        sender.on_boot = boot
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        assert [p for _, p in sink.log] == list(range(10))

    def test_notification_latency_metric_collected(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        sink = Recorder()
        sink_id = mom.deploy(sink, 1)
        sender = FunctionAgent(lambda ctx, s, p: None)
        sender.on_boot = lambda ctx: ctx.send(sink_id, "x")
        mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        samples = mom.metrics.samples("bus.delivery_ms")
        assert samples.count == 1
        assert samples.mean > 0


class TestReactionAtomicity:
    def test_reaction_sends_committed_together(self):
        """All sends of one reaction appear; a reaction that raises would
        commit nothing (exercised via the crash tests)."""
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        sink = Recorder()
        sink_id = mom.deploy(sink, 1)
        fanout = FunctionAgent(lambda ctx, s, p: None)

        def boot(ctx):
            ctx.send(sink_id, "a")
            ctx.send(sink_id, "b")
            ctx.send(sink_id, "c")

        fanout.on_boot = boot
        mom.deploy(fanout, 0)
        mom.start()
        mom.run_until_idle()
        assert [p for _, p in sink.log] == ["a", "b", "c"]

    def test_sender_identity_passed_to_reaction(self):
        mom = MessageBus(BusConfig(topology=single_domain(2)))
        seen = []
        sink = FunctionAgent(lambda ctx, s, p: seen.append(s))
        sink_id = mom.deploy(sink, 1)
        sender = FunctionAgent(lambda ctx, s, p: None)
        sender.on_boot = lambda ctx: ctx.send(sink_id, "x")
        sender_id = mom.deploy(sender, 0)
        mom.start()
        mom.run_until_idle()
        assert seen == [sender_id]

    def test_non_agent_send_target_rejected(self):
        mom = MessageBus(BusConfig(topology=single_domain(1)))
        bad = FunctionAgent(lambda ctx, s, p: None)
        bad.on_boot = lambda ctx: ctx.send("not-an-id", "x")
        mom.deploy(bad, 0)
        mom.start()
        with pytest.raises(AgentError):
            mom.run_until_idle()
