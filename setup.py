"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file only exists so that
``pip install -e . --no-use-pep517`` works in environments without the
``wheel`` package (e.g. offline boxes).
"""

from setuptools import setup

setup()
